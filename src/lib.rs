//! Umbrella crate for the KRATT reproduction suite.
//!
//! Re-exports the individual crates under friendly names so that examples and
//! integration tests can write `kratt_suite::netlist::Circuit` etc.

pub use kratt as attack;
pub use kratt_attacks as attacks;
pub use kratt_benchmarks as benchmarks;
pub use kratt_locking as locking;
pub use kratt_netlist as netlist;
pub use kratt_qbf as qbf;
pub use kratt_sat as sat;
pub use kratt_synth as synth;
