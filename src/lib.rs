//! Umbrella crate for the KRATT reproduction suite.
//!
//! Re-exports the individual crates under friendly names so that examples and
//! integration tests can write `kratt_suite::netlist::Circuit` etc. The core
//! attack crate is available both under its own name (`kratt_suite::kratt`,
//! matching the `use kratt::` imports the tests and examples use directly)
//! and under the role-based alias `kratt_suite::attack`.
//!
//! ```
//! use kratt_suite::locking::{LockingTechnique, SarLock, SecretKey};
//! use kratt_suite::netlist::{Circuit, GateType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let y = c.add_gate(GateType::And, "y", &[a, b])?;
//! c.mark_output(y);
//!
//! let secret = SecretKey::from_u64(0b10, 2);
//! let locked = SarLock::new(2).lock(&c, &secret)?;
//!
//! let report = kratt_suite::attack::KrattAttack::new().attack_oracle_less(&locked.circuit)?;
//! assert_eq!(report.outcome.exact_key().map(|k| k.to_u64()), Some(0b10));
//! # Ok(())
//! # }
//! ```

pub use kratt;
pub use kratt as attack;
pub use kratt_attacks as attacks;
pub use kratt_benchmarks as benchmarks;
pub use kratt_dataflow as dataflow;
pub use kratt_lint as lint;
pub use kratt_locking as locking;
pub use kratt_netlist as netlist;
pub use kratt_qbf as qbf;
pub use kratt_sat as sat;
pub use kratt_synth as synth;
