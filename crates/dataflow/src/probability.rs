//! The signal-probability domain: the probability each node evaluates to 1
//! under uniformly random, independently drawn inputs.
//!
//! The AND transfer multiplies under an independence assumption, so the
//! values are a heuristic in general — reconvergent fanout correlates
//! signals. Two properties are preserved exactly, and they are what the
//! consumers rely on:
//!
//! * `0.0` and `1.0` are reached only by true structural constants: the
//!   arithmetic is clamped so that a product of non-constant probabilities
//!   never underflows to `0.0` and a complement never rounds up to `1.0`.
//! * A deep AND tree over independent comparisons collapses geometrically —
//!   the point-function fingerprint of comparator-based locking (a `w`-bit
//!   comparator activates with probability `2^-w`).
//!
//! This is not a lattice: `join` blends to the midpoint and `top` is the
//! maximum-entropy value `0.5`. The one-pass DAG engine never joins in a
//! forward run, so the blend only matters to iterative extensions.

use crate::domain::{edge_value, forward, Domain, ForwardDomain};
use kratt_netlist::{Aig, AigLit};

/// The largest `f64` strictly below `1.0`, used to keep complements of
/// non-constants away from the exact constant.
const BELOW_ONE: f64 = 1.0 - f64::EPSILON / 2.0;

/// The signal-probability domain.
pub struct ProbabilityDomain;

impl Domain for ProbabilityDomain {
    type Value = f64;

    fn bottom(&self) -> f64 {
        0.5
    }

    fn top(&self) -> f64 {
        0.5
    }

    fn join(&self, a: &f64, b: &f64) -> f64 {
        (a + b) / 2.0
    }
}

impl ForwardDomain for ProbabilityDomain {
    fn constant(&self, value: bool) -> f64 {
        if value {
            1.0
        } else {
            0.0
        }
    }

    fn input(&self, _node: u32, _index: usize) -> f64 {
        0.5
    }

    fn and(&self, a: &f64, b: &f64) -> f64 {
        if *a == 0.0 || *b == 0.0 {
            0.0
        } else {
            // Clamp so deep trees of non-constants never underflow to the
            // exact constant 0.0.
            (a * b).max(f64::MIN_POSITIVE)
        }
    }

    fn complement(&self, value: &f64) -> f64 {
        if *value == 0.0 {
            1.0
        } else {
            // Clamp so complements of tiny non-zero probabilities never
            // round up to the exact constant 1.0.
            (1.0 - value).clamp(0.0, BELOW_ONE)
        }
    }
}

/// Per-node signal probabilities, computed in one forward pass.
pub struct ProbabilityAnalysis {
    values: Vec<f64>,
}

impl ProbabilityAnalysis {
    /// Computes the probability of every node under uniform inputs.
    pub fn compute(aig: &Aig) -> Self {
        ProbabilityAnalysis {
            values: forward(aig, &ProbabilityDomain),
        }
    }

    /// The probability of a node (plain phase).
    pub fn of_node(&self, node: u32) -> f64 {
        self.values[node as usize]
    }

    /// The probability of an edge.
    pub fn of_lit(&self, lit: AigLit) -> f64 {
        edge_value(&ProbabilityDomain, &self.values, lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_tree_collapses_geometrically() {
        let mut aig = Aig::new("cmp");
        let terms: Vec<AigLit> = (0..8)
            .map(|i| {
                let x = aig.add_input(format!("x{i}"));
                let k = aig.add_input(format!("keyinput{i}"));
                aig.xor(x, k).complement()
            })
            .collect();
        let all = aig.and_many(&terms);
        aig.add_output("match", all);
        let p = ProbabilityAnalysis::compute(&aig);
        // Under the independence assumption one XNOR shape lands at
        // 1 - (3/4)^2 complemented = 7/16 (not the true 1/2 — its two AND
        // terms are correlated), and the 8-wide tree multiplies those: the
        // geometric collapse the comparator detector keys on.
        let got = p.of_lit(all);
        let expected = (7.0f64 / 16.0).powi(8);
        assert!((got - expected).abs() < 1e-12, "got {got}");
        assert!(
            got < 2f64.powi(-4),
            "collapse must cross the detector range"
        );
    }

    #[test]
    fn exact_constants_are_reserved_for_structural_constants() {
        let mut aig = Aig::new("clamp");
        let mut lit = aig.add_input("a");
        // A 4096-deep AND chain of fresh inputs: the product underflows any
        // fixed threshold but must never hit the exact 0.0.
        for i in 0..4096 {
            let b = aig.add_input(format!("b{i}"));
            lit = aig.and(lit, b);
        }
        aig.add_output("o", lit);
        let p = ProbabilityAnalysis::compute(&aig);
        assert!(p.of_lit(lit) > 0.0);
        assert!(p.of_lit(lit.complement()) < 1.0);
        // The structural constants stay exact.
        assert_eq!(p.of_lit(AigLit::FALSE), 0.0);
        assert_eq!(p.of_lit(AigLit::TRUE), 1.0);
    }
}
