//! The observability domain: a backward pass computing which nodes can
//! still influence a primary output under a ternary restriction — the
//! complement of the observability don't-care set.
//!
//! A fanin of an AND node is observable through that node only where the
//! sibling edge is not constant zero (a zero sibling masks the AND
//! completely). With nothing pinned a structurally hashed AIG has no
//! constant siblings — strashing folds them at build time — so the
//! interesting runs pin a restriction first (for example one key bit, per
//! polarity): whatever key logic goes dark under *both* polarities of some
//! other bit is removal-attack material.

use crate::domain::{backward, BackwardDomain, Domain};
use crate::ternary::{lit_value, propagate, Ternary};
use kratt_netlist::{Aig, AigLit};

/// The observability domain over a fixed forward ternary context: `true`
/// means "some output can still see this node".
pub struct ObservabilityDomain {
    /// Forward ternary values (per node) the backward pass reads sibling
    /// masks from.
    pub ternary: Vec<Ternary>,
}

impl Domain for ObservabilityDomain {
    type Value = bool;

    fn bottom(&self) -> bool {
        false
    }

    fn top(&self) -> bool {
        true
    }

    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
}

impl BackwardDomain for ObservabilityDomain {
    fn to_fanin(&self, _node: u32, value: &bool, _fanin: AigLit, sibling: AigLit) -> bool {
        *value && lit_value(&self.ternary, sibling) != Ternary::Zero
    }
}

/// Per-node observability under a ternary restriction: one forward ternary
/// pass for the masking context, one backward pass for the reach.
pub struct ObservabilityAnalysis {
    /// Whether each node is observable at some primary output.
    pub observable: Vec<bool>,
    /// The forward ternary context the pass ran under.
    pub ternary: Vec<Ternary>,
}

impl ObservabilityAnalysis {
    /// Computes observability with the inputs in `assignment` pinned (all
    /// other inputs `X`). Every primary output is seeded observable.
    pub fn compute(aig: &Aig, assignment: &[(u32, bool)]) -> Self {
        let ternary = propagate(aig, assignment);
        let domain = ObservabilityDomain { ternary };
        let seeds: Vec<(AigLit, bool)> = aig.outputs().iter().map(|&o| (o, true)).collect();
        let observable = backward(aig, &domain, &seeds);
        ObservabilityAnalysis {
            observable,
            ternary: domain.ternary,
        }
    }

    /// Whether `node` can influence any primary output under the
    /// restriction.
    pub fn is_observable(&self, node: u32) -> bool {
        self.observable[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// out = (x0 AND x1) OR (k0 AND (x1 XOR k1)): pinning k0 = 0 masks the
    /// whole k1 branch.
    fn gated() -> (Aig, AigLit, AigLit, AigLit) {
        let mut aig = Aig::new("gated");
        let x0 = aig.add_input("x0");
        let x1 = aig.add_input("x1");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let inner = aig.xor(x1, k1);
        let gatedterm = aig.and(k0, inner);
        let func = aig.and(x0, x1);
        let out = aig.or(func, gatedterm);
        aig.add_output("out", out);
        (aig, k0, k1, inner)
    }

    #[test]
    fn unpinned_everything_in_cone_is_observable() {
        let (aig, k0, k1, inner) = gated();
        let analysis = ObservabilityAnalysis::compute(&aig, &[]);
        for lit in [k0, k1, inner] {
            assert!(analysis.is_observable(lit.node()));
        }
    }

    #[test]
    fn zero_sibling_masks_the_branch() {
        let (aig, k0, k1, inner) = gated();
        let analysis = ObservabilityAnalysis::compute(&aig, &[(k0.node(), false)]);
        assert!(!analysis.is_observable(inner.node()));
        assert!(!analysis.is_observable(k1.node()));
        // The opposite polarity re-arms the branch.
        let analysis = ObservabilityAnalysis::compute(&aig, &[(k0.node(), true)]);
        assert!(analysis.is_observable(inner.node()));
        assert!(analysis.is_observable(k1.node()));
    }
}
