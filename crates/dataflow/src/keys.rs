//! Shared key-input recognition: maps primary-input positions to key-bit
//! indices by the `keyinput*` naming convention.

use kratt_netlist::{Aig, KEY_INPUT_PREFIX};

/// The key inputs of an AIG, in declaration order.
pub(crate) struct KeyMap {
    /// Key index of each primary input position, `None` for data inputs.
    pub key_of_input: Vec<Option<usize>>,
    /// AIG input node of each key bit, in key declaration order.
    pub key_nodes: Vec<u32>,
    /// Name of each key bit, parallel to `key_nodes`.
    pub key_names: Vec<String>,
}

impl KeyMap {
    pub fn from_aig(aig: &Aig) -> Self {
        let mut key_of_input = Vec::with_capacity(aig.num_inputs());
        let mut key_nodes = Vec::new();
        let mut key_names = Vec::new();
        for (&node, name) in aig.input_nodes().iter().zip(aig.input_names()) {
            if name.starts_with(KEY_INPUT_PREFIX) {
                key_of_input.push(Some(key_nodes.len()));
                key_nodes.push(node);
                key_names.push(name.clone());
            } else {
                key_of_input.push(None);
            }
        }
        KeyMap {
            key_of_input,
            key_nodes,
            key_names,
        }
    }

    /// Bitset word count needed for one bit per key.
    pub fn words(&self) -> usize {
        self.key_nodes.len().div_ceil(64)
    }
}
