//! A thin gate-level adapter: runs any [`ForwardDomain`] directly over a
//! [`Circuit`], lowering each gate onto the domain's two primitives (AND
//! transfer and complement) on the fly — no AIG construction, no
//! structural hashing. The results therefore carry exactly *gate-level*
//! precision: what a per-gate constant propagation sees, nothing more.
//! That is a feature where the consumer models a gate-level tool — the
//! AIG-side SCOPE rewrite replays the legacy resynthesis engine's
//! decisions off these values.

use crate::domain::ForwardDomain;
use kratt_netlist::analysis::topological_order;
use kratt_netlist::{Circuit, GateId, GateType, NetId, NetlistError};

/// A reusable forward-analysis plan over one circuit: the topological
/// order is computed once and shared across runs (a cofactor sweep over
/// `k` key bits runs `2k` analyses over the same order).
pub struct CircuitAnalysis {
    order: Vec<GateId>,
}

impl CircuitAnalysis {
    /// Prepares the analysis plan (one topological sort).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Result<Self, NetlistError> {
        Ok(CircuitAnalysis {
            order: topological_order(circuit)?,
        })
    }

    /// The precomputed topological gate order.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Runs a forward domain over the circuit with some primary inputs
    /// pinned. Returns one value per net (indexed by [`NetId::index`]);
    /// undriven nets evaluate to `top`.
    pub fn run<D: ForwardDomain>(
        &self,
        circuit: &Circuit,
        domain: &D,
        pins: &[(NetId, D::Value)],
    ) -> Vec<D::Value> {
        let mut values = vec![domain.top(); circuit.num_nets()];
        for (index, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = domain.input(pi.index() as u32, index);
        }
        for (net, value) in pins {
            values[net.index()] = value.clone();
        }
        let mut scratch: Vec<D::Value> = Vec::new();
        for &gid in &self.order {
            let gate = circuit.gate(gid);
            scratch.clear();
            scratch.extend(gate.inputs.iter().map(|n| values[n.index()].clone()));
            values[gate.output.index()] = gate_transfer(domain, gate.ty, &scratch);
        }
        values
    }

    /// Convenience: a ternary run with boolean pins.
    pub fn ternary(
        &self,
        circuit: &Circuit,
        pins: &[(NetId, bool)],
    ) -> Vec<crate::ternary::Ternary> {
        let domain = crate::ternary::TernaryDomain;
        let pins: Vec<(NetId, crate::ternary::Ternary)> = pins
            .iter()
            .map(|&(net, value)| (net, domain.constant(value)))
            .collect();
        self.run(circuit, &domain, &pins)
    }
}

/// The transfer of one gate, expressed through the domain's AND and
/// complement primitives (the same lowering an AIG construction performs,
/// minus the structural hashing):
///
/// * `AND` folds the conjunction; `NAND` complements it.
/// * `OR`/`NOR` go through De Morgan.
/// * `XOR` folds pairwise as `!( !(a·!b) · !(!a·b) )`; `XNOR` complements.
/// * `NOT`/`BUF` are a complement / the identity, constants seed.
pub fn gate_transfer<D: ForwardDomain>(domain: &D, ty: GateType, inputs: &[D::Value]) -> D::Value {
    match ty {
        GateType::Const0 => domain.constant(false),
        GateType::Const1 => domain.constant(true),
        GateType::Buf => inputs[0].clone(),
        GateType::Not => domain.complement(&inputs[0]),
        GateType::And => fold_and(domain, inputs.iter()),
        GateType::Nand => domain.complement(&fold_and(domain, inputs.iter())),
        GateType::Or => {
            let complements: Vec<D::Value> = inputs.iter().map(|v| domain.complement(v)).collect();
            domain.complement(&fold_and(domain, complements.iter()))
        }
        GateType::Nor => {
            let complements: Vec<D::Value> = inputs.iter().map(|v| domain.complement(v)).collect();
            fold_and(domain, complements.iter())
        }
        GateType::Xor | GateType::Xnor => {
            let mut acc = inputs[0].clone();
            for value in &inputs[1..] {
                acc = xor2(domain, &acc, value);
            }
            if ty == GateType::Xnor {
                acc = domain.complement(&acc);
            }
            acc
        }
    }
}

fn fold_and<'a, D: ForwardDomain>(
    domain: &D,
    mut inputs: impl Iterator<Item = &'a D::Value>,
) -> D::Value
where
    D::Value: 'a,
{
    let first = inputs
        .next()
        .cloned()
        .unwrap_or_else(|| domain.constant(true));
    inputs.fold(first, |acc, v| domain.and(&acc, v))
}

fn xor2<D: ForwardDomain>(domain: &D, a: &D::Value, b: &D::Value) -> D::Value {
    let not_a = domain.complement(a);
    let not_b = domain.complement(b);
    let a_only = domain.and(a, &not_b);
    let b_only = domain.and(&not_a, b);
    let neither = domain.and(&domain.complement(&a_only), &domain.complement(&b_only));
    domain.complement(&neither)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary::Ternary;

    fn toy() -> Circuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k]).unwrap();
        let n = c.add_gate(GateType::Nand, "n", &[x, b]).unwrap();
        let o = c.add_gate(GateType::Or, "o", &[n, a]).unwrap();
        c.mark_output(o);
        c
    }

    #[test]
    fn ternary_over_gates_matches_gate_semantics() {
        let c = toy();
        let plan = CircuitAnalysis::new(&c).unwrap();
        let k = c.find_net("keyinput0").unwrap();
        let a = c.find_net("a").unwrap();
        // Nothing pinned: all X past the inputs.
        let values = plan.ternary(&c, &[]);
        assert_eq!(values[c.find_net("o").unwrap().index()], Ternary::X);
        // NAND with a constant-zero input is constant one, OR saturates.
        let values = plan.ternary(&c, &[(k, false), (a, false)]);
        assert_eq!(values[c.find_net("x").unwrap().index()], Ternary::Zero);
        assert_eq!(values[c.find_net("n").unwrap().index()], Ternary::One);
        assert_eq!(values[c.find_net("o").unwrap().index()], Ternary::One);
    }

    #[test]
    fn gate_transfer_covers_the_library() {
        use Ternary::*;
        let d = crate::ternary::TernaryDomain;
        let cases: Vec<(GateType, Vec<Ternary>, Ternary)> = vec![
            (GateType::And, vec![One, X], X),
            (GateType::And, vec![Zero, X], Zero),
            (GateType::Nand, vec![Zero, X], One),
            (GateType::Or, vec![One, X], One),
            (GateType::Or, vec![Zero, X], X),
            (GateType::Nor, vec![Zero, Zero], One),
            (GateType::Xor, vec![One, One, X], X),
            (GateType::Xor, vec![One, One, One], One),
            (GateType::Xnor, vec![One, Zero], Zero),
            (GateType::Not, vec![Zero], One),
            (GateType::Buf, vec![X], X),
            (GateType::Const0, vec![], Zero),
            (GateType::Const1, vec![], One),
        ];
        for (ty, inputs, expected) in cases {
            assert_eq!(
                gate_transfer(&d, ty, &inputs),
                expected,
                "{ty:?} {inputs:?}"
            );
        }
    }

    #[test]
    fn single_input_wide_gates_collapse() {
        use Ternary::*;
        let d = crate::ternary::TernaryDomain;
        assert_eq!(gate_transfer(&d, GateType::And, &[X]), X);
        assert_eq!(gate_transfer(&d, GateType::Nand, &[One]), Zero);
        assert_eq!(gate_transfer(&d, GateType::Xor, &[One]), One);
    }
}
