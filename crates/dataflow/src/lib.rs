//! Abstract interpretation over the AIG (and, through a thin adapter, over
//! gate-level circuits): one reusable analysis substrate for the static
//! questions every KRATT consumer keeps re-deriving — "which outputs can
//! this key bit reach, with what polarity, under what constants?".
//!
//! The crate is organised around the [`Domain`] trait family:
//!
//! * [`Domain`] — the lattice core: a value type with `bottom`/`top`,
//!   `join` and a widening hook.
//! * [`ForwardDomain`] — the transfer functions of a forward analysis over
//!   the AIG's two primitives: AND nodes and complemented edges.
//! * [`BackwardDomain`] — the transfer function of a backward analysis,
//!   distributing a node's value to its fanins.
//!
//! The engines are one-pass: AIG nodes are topologically ordered by
//! construction, so [`forward`] (and [`backward`] in reverse) reach the
//! fixed point of a combinational netlist in a single sweep. The `widen`
//! hook exists for future sequential/unrolled analyses.
//!
//! Five domains ship with the crate:
//!
//! * [`ternary`] — 0/1/X constant propagation, cofactor-aware: analyse
//!   under each `key[i] = 0/1` restriction via [`ternary::propagate`] and
//!   [`ternary::cofactors`]. Powers the `key-forced-bit` lint and the
//!   AIG-side SCOPE signatures.
//! * [`support`] — per-node key-input support bitsets plus data-dependence
//!   tracking ([`support::KeySupport`]).
//! * [`unateness`] — per key input, the structural polarity (positive /
//!   negative / binate) a node depends on it with.
//! * [`probability`] — signal-probability lanes under the independence
//!   heuristic; exact at 0.0/1.0, a comparator-tree detector in between.
//! * [`observability`] — a backward pass computing which nodes can still
//!   influence an output under a ternary restriction (observability
//!   don't-cares).
//!
//! To add a domain: pick a `Value`, implement [`Domain`] plus
//! [`ForwardDomain`] (or [`BackwardDomain`]), and run it with [`forward`] /
//! [`backward`] — or over a gate-level netlist with
//! [`circuit::CircuitAnalysis`], which lowers each gate onto the same two
//! primitives on the fly.

pub mod circuit;
pub mod domain;
pub(crate) mod keys;
pub mod observability;
pub mod probability;
pub mod support;
pub mod ternary;
pub mod unateness;

pub use circuit::CircuitAnalysis;
pub use domain::{
    backward, edge_value, forward, forward_pinned, BackwardDomain, Domain, ForwardDomain,
};
pub use observability::ObservabilityAnalysis;
pub use probability::{ProbabilityAnalysis, ProbabilityDomain};
pub use support::{KeySupport, SupportDomain};
pub use ternary::{lit_value, propagate, Ternary, TernaryDomain};
pub use unateness::{Unateness, UnatenessAnalysis, UnatenessDomain};
