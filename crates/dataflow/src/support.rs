//! The key-support domain: which key bits each node transitively depends
//! on (a bitset per node) and whether it also depends on any data input. A
//! node with key support but no data dependence is a *key-only* node — the
//! shape a hardwired key guard takes.

use crate::domain::{forward, Domain, ForwardDomain};
use crate::keys::KeyMap;
use kratt_netlist::Aig;

/// The support of one node: the key bits it depends on and whether any
/// data input reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deps {
    /// Key-bit bitset, one bit per key input in declaration order.
    pub keys: Vec<u64>,
    /// Whether any non-key primary input reaches the node.
    pub data: bool,
}

/// The key-support domain. Support only ever grows through AND nodes and
/// is invariant under complement, so `join` and `and` coincide (union).
pub struct SupportDomain {
    words: usize,
    key_of_input: Vec<Option<usize>>,
}

impl SupportDomain {
    /// A domain recognising the key inputs of `aig` by name.
    pub fn for_aig(aig: &Aig) -> Self {
        let map = KeyMap::from_aig(aig);
        SupportDomain {
            words: map.words(),
            key_of_input: map.key_of_input,
        }
    }

    fn union(&self, a: &Deps, b: &Deps) -> Deps {
        Deps {
            keys: a.keys.iter().zip(&b.keys).map(|(x, y)| x | y).collect(),
            data: a.data || b.data,
        }
    }
}

impl Domain for SupportDomain {
    type Value = Deps;

    fn bottom(&self) -> Deps {
        Deps {
            keys: vec![0; self.words],
            data: false,
        }
    }

    fn top(&self) -> Deps {
        Deps {
            keys: vec![!0u64; self.words],
            data: true,
        }
    }

    fn join(&self, a: &Deps, b: &Deps) -> Deps {
        self.union(a, b)
    }
}

impl ForwardDomain for SupportDomain {
    fn constant(&self, _value: bool) -> Deps {
        self.bottom()
    }

    fn input(&self, _node: u32, index: usize) -> Deps {
        let mut deps = self.bottom();
        match self.key_of_input[index] {
            Some(k) => deps.keys[k / 64] |= 1 << (k % 64),
            None => deps.data = true,
        }
        deps
    }

    fn and(&self, a: &Deps, b: &Deps) -> Deps {
        self.union(a, b)
    }

    fn complement(&self, value: &Deps) -> Deps {
        value.clone()
    }
}

/// Per-node key-input support, computed in one forward pass. Key inputs are
/// recognised by the `keyinput*` naming convention.
pub struct KeySupport {
    key_nodes: Vec<u32>,
    key_names: Vec<String>,
    values: Vec<Deps>,
}

impl KeySupport {
    /// Computes the support of every node in one topological pass.
    pub fn compute(aig: &Aig) -> Self {
        let map = KeyMap::from_aig(aig);
        let domain = SupportDomain {
            words: map.words(),
            key_of_input: map.key_of_input,
        };
        KeySupport {
            key_nodes: map.key_nodes,
            key_names: map.key_names,
            values: forward(aig, &domain),
        }
    }

    /// Number of key inputs found.
    pub fn num_keys(&self) -> usize {
        self.key_nodes.len()
    }

    /// `(input node, name)` of each key bit, in key declaration order.
    pub fn keys(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.key_nodes
            .iter()
            .copied()
            .zip(self.key_names.iter().map(String::as_str))
    }

    /// Whether `node` transitively depends on key bit `key`.
    pub fn depends_on(&self, node: u32, key: usize) -> bool {
        self.values[node as usize].keys[key / 64] >> (key % 64) & 1 != 0
    }

    /// How many distinct key bits `node` depends on.
    pub fn key_count(&self, node: u32) -> u32 {
        self.values[node as usize]
            .keys
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Whether `node` depends on at least one key bit and on no data input —
    /// the signature of a key-only guard.
    pub fn is_key_only(&self, node: u32) -> bool {
        let deps = &self.values[node as usize];
        !deps.data && deps.keys.iter().any(|&w| w != 0)
    }

    /// The full support record of one node.
    pub fn deps(&self, node: u32) -> &Deps {
        &self.values[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// o = (a AND k0) XOR k1 with one data input and two key inputs.
    fn sample() -> (
        Aig,
        kratt_netlist::AigLit,
        kratt_netlist::AigLit,
        kratt_netlist::AigLit,
    ) {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let guard = aig.and(a, k0);
        let o = aig.xor(guard, k1);
        aig.add_output("o", o);
        (aig, a, k0, k1)
    }

    #[test]
    fn support_separates_key_and_data_dependence() {
        let (aig, a, k0, k1) = sample();
        let support = KeySupport::compute(&aig);
        assert_eq!(support.num_keys(), 2);
        let names: Vec<&str> = support.keys().map(|(_, name)| name).collect();
        assert_eq!(names, vec!["keyinput0", "keyinput1"]);
        // The data input depends on no key; the key inputs on exactly one.
        assert_eq!(support.key_count(a.node()), 0);
        assert!(!support.is_key_only(a.node()));
        assert!(support.is_key_only(k0.node()));
        assert!(support.depends_on(k0.node(), 0));
        assert!(!support.depends_on(k0.node(), 1));
        // The output cone root depends on both keys and on data.
        let root = aig.outputs()[0].node();
        assert_eq!(support.key_count(root), 2);
        assert!(support.depends_on(root, 1));
        assert!(!support.is_key_only(root));
        assert_eq!(support.key_count(k1.node()), 1);
    }

    #[test]
    fn domain_lattice_is_a_union() {
        let (aig, ..) = sample();
        let domain = SupportDomain::for_aig(&aig);
        let bottom = domain.bottom();
        let top = domain.top();
        assert_eq!(domain.join(&bottom, &top), top);
        let k0 = domain.input(0, 1);
        let k1 = domain.input(0, 2);
        let both = domain.join(&k0, &k1);
        assert_eq!(both.keys[0], 0b11);
        assert!(!both.data);
        assert_eq!(domain.and(&k0, &k1), both);
        assert_eq!(domain.complement(&k0), k0);
    }
}
