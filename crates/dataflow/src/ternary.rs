//! The ternary (0/1/X) constant-propagation domain, cofactor-aware: with
//! every key input set to the unknown value `X` and at most a few bits
//! pinned, whatever still evaluates to a constant is information an
//! attacker gets for free, without ever invoking a SAT solver.

use crate::domain::{forward_pinned, Domain, ForwardDomain};
use kratt_netlist::{Aig, AigLit};

/// A value in the three-valued lattice: definitely zero, definitely one, or
/// unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Constant zero under every completion of the unknowns.
    Zero,
    /// Constant one under every completion of the unknowns.
    One,
    /// Depends on at least one unknown input.
    X,
}

impl Ternary {
    /// Ternary conjunction: a single `Zero` dominates, `X` otherwise unless
    /// both sides are `One`.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }

    /// Whether the value is a definite constant (`Zero` or `One`).
    pub fn is_constant(self) -> bool {
        self != Ternary::X
    }

    /// The boolean value of a definite constant, `None` for `X`.
    pub fn constant(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }
}

/// Ternary negation (`X` stays `X`).
impl std::ops::Not for Ternary {
    type Output = Ternary;

    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

/// The ternary constant-propagation domain. The lattice is flat — `X` above
/// the two constants — so `bottom` is conflated with `top` (see
/// [`Domain::bottom`]); the forward engine never reads it.
pub struct TernaryDomain;

impl Domain for TernaryDomain {
    type Value = Ternary;

    fn bottom(&self) -> Ternary {
        Ternary::X
    }

    fn top(&self) -> Ternary {
        Ternary::X
    }

    fn join(&self, a: &Ternary, b: &Ternary) -> Ternary {
        if a == b {
            *a
        } else {
            Ternary::X
        }
    }
}

impl ForwardDomain for TernaryDomain {
    fn constant(&self, value: bool) -> Ternary {
        if value {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    fn input(&self, _node: u32, _index: usize) -> Ternary {
        Ternary::X
    }

    fn and(&self, a: &Ternary, b: &Ternary) -> Ternary {
        a.and(*b)
    }

    fn complement(&self, value: &Ternary) -> Ternary {
        !*value
    }
}

/// The ternary value of an AIG literal given per-node values.
pub fn lit_value(values: &[Ternary], lit: AigLit) -> Ternary {
    let v = values[lit.node() as usize];
    if lit.is_complemented() {
        !v
    } else {
        v
    }
}

/// Propagates ternary values through the whole AIG in one topological pass.
///
/// Inputs listed in `assignment` take their pinned value; every other input
/// is `X`. The returned vector is indexed by node id (node 0 is the constant
/// and evaluates to `Zero`; complemented edges are resolved by
/// [`lit_value`]).
pub fn propagate(aig: &Aig, assignment: &[(u32, bool)]) -> Vec<Ternary> {
    let domain = TernaryDomain;
    let pins: Vec<(u32, Ternary)> = assignment
        .iter()
        .map(|&(node, value)| (node, domain.constant(value)))
        .collect();
    forward_pinned(aig, &domain, &pins)
}

/// The two cofactor runs of one input: per-node ternary values under
/// `node = 0` and under `node = 1`. The per-key-bit restriction behind the
/// AIG-side SCOPE signatures and the cofactor lints.
pub fn cofactors(aig: &Aig, node: u32) -> (Vec<Ternary>, Vec<Ternary>) {
    (
        propagate(aig, &[(node, false)]),
        propagate(aig, &[(node, true)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_operations() {
        use Ternary::*;
        assert_eq!(!Zero, One);
        assert_eq!(!X, X);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(One), X);
        assert_eq!(One.and(One), One);
        assert!(Zero.is_constant());
        assert_eq!(One.constant(), Some(true));
        assert_eq!(X.constant(), None);
    }

    #[test]
    fn propagation_pins_inputs_and_spreads_constants() {
        let mut aig = Aig::new("prop");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let guard = aig.and(a, k0);
        aig.add_output("o", guard);
        // Nothing pinned: everything past the inputs is X.
        let values = propagate(&aig, &[]);
        assert_eq!(values[0], Ternary::Zero);
        assert_eq!(lit_value(&values, AigLit::TRUE), Ternary::One);
        assert_eq!(values[a.node() as usize], Ternary::X);
        assert_eq!(values[guard.node() as usize], Ternary::X);
        // a = 0 kills the AND guard even though k0 is unknown.
        let values = propagate(&aig, &[(a.node(), false)]);
        assert_eq!(values[guard.node() as usize], Ternary::Zero);
        // Both pinned to 1 raises the guard to a definite One.
        let values = propagate(&aig, &[(a.node(), true), (k0.node(), true)]);
        assert_eq!(values[guard.node() as usize], Ternary::One);
    }

    #[test]
    fn cofactors_run_both_polarities() {
        let mut aig = Aig::new("cof");
        let a = aig.add_input("a");
        let k = aig.add_input("keyinput0");
        let o = aig.and(a, k);
        aig.add_output("o", o);
        let (zero, one) = cofactors(&aig, k.node());
        assert_eq!(zero[o.node() as usize], Ternary::Zero);
        assert_eq!(one[o.node() as usize], Ternary::X);
    }
}
