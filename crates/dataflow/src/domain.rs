//! The `Domain` trait family and the forward/backward engines over the AIG.

use kratt_netlist::{Aig, AigLit};

/// The lattice core of an abstract domain: an ordered value space with a
/// least element, a greatest element, a least upper bound and a widening
/// hook.
///
/// `bottom` must be the identity of `join` (the engines use it to seed
/// accumulation); `top` is the "no information" element unpinned inputs
/// default to. Flat domains without a distinct least element (the ternary
/// lattice) may conflate `bottom` with `top` — over-approximation is always
/// sound, and the forward engine never reads `bottom`.
pub trait Domain {
    /// The abstract value attached to every AIG node (plain phase).
    type Value: Clone + PartialEq + std::fmt::Debug;

    /// The least element: the identity of [`Domain::join`].
    fn bottom(&self) -> Self::Value;

    /// The greatest element: no information.
    fn top(&self) -> Self::Value;

    /// Least upper bound of two values.
    fn join(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Widening: an upper bound of `old` and `new` that guarantees
    /// termination of ascending chains. Combinational AIGs are DAGs and
    /// converge in one pass, so the default simply joins; iterative
    /// analyses over unrolled or sequential structures override this.
    fn widen(&self, old: &Self::Value, new: &Self::Value) -> Self::Value {
        self.join(old, new)
    }
}

/// The transfer functions of a forward analysis. The AIG has exactly two
/// combinational primitives — AND nodes and complemented edges — so two
/// transfer functions (plus the input/constant seeds) define the whole
/// analysis.
pub trait ForwardDomain: Domain {
    /// The abstract value of the constant node (node 0 carries `false`;
    /// the engine asks for `constant(false)` and reads `TRUE` through
    /// [`ForwardDomain::complement`]).
    fn constant(&self, value: bool) -> Self::Value;

    /// The abstract value of primary input `index` (declaration order);
    /// `node` is the input's node id (AIG) or net index (circuit adapter).
    fn input(&self, node: u32, index: usize) -> Self::Value;

    /// Transfer over an AND node given the resolved fanin edge values.
    fn and(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Transfer over a complemented edge.
    fn complement(&self, value: &Self::Value) -> Self::Value;
}

/// The transfer function of a backward analysis: how much of a node's
/// value flows into one of its fanins, given the sibling edge for context
/// (a fanin of an AND is only relevant where its sibling does not mask
/// it).
pub trait BackwardDomain: Domain {
    /// The contribution an AND node `node` carrying `value` makes to its
    /// fanin edge `fanin`, with `sibling` being the other fanin edge.
    fn to_fanin(
        &self,
        node: u32,
        value: &Self::Value,
        fanin: AigLit,
        sibling: AigLit,
    ) -> Self::Value;
}

/// The abstract value of an edge: the node's value, pushed through
/// [`ForwardDomain::complement`] when the edge is complemented.
pub fn edge_value<D: ForwardDomain>(domain: &D, values: &[D::Value], lit: AigLit) -> D::Value {
    let value = &values[lit.node() as usize];
    if lit.is_complemented() {
        domain.complement(value)
    } else {
        value.clone()
    }
}

/// Runs a forward analysis over the whole AIG in one topological pass and
/// returns the per-node values (plain phase; resolve edges with
/// [`edge_value`]).
pub fn forward<D: ForwardDomain>(aig: &Aig, domain: &D) -> Vec<D::Value> {
    forward_pinned(aig, domain, &[])
}

/// [`forward`] with some nodes pinned to given values before propagation —
/// the restriction mechanism behind cofactor analyses (`key[i] = 0/1`).
pub fn forward_pinned<D: ForwardDomain>(
    aig: &Aig,
    domain: &D,
    pins: &[(u32, D::Value)],
) -> Vec<D::Value> {
    let mut values = vec![domain.top(); aig.num_nodes()];
    values[0] = domain.constant(false);
    for (index, &node) in aig.input_nodes().iter().enumerate() {
        values[node as usize] = domain.input(node, index);
    }
    for (node, value) in pins {
        values[*node as usize] = value.clone();
    }
    for node in 1..aig.num_nodes() as u32 {
        if aig.is_and(node) {
            let (l0, l1) = aig.fanins(node);
            let a = edge_value(domain, &values, l0);
            let b = edge_value(domain, &values, l1);
            values[node as usize] = domain.and(&a, &b);
        }
    }
    values
}

/// Runs a backward analysis: seeds are joined into their root nodes, then
/// every AND node distributes its value to its fanins in one reverse
/// topological pass. Returns the per-node accumulated values.
pub fn backward<D: BackwardDomain>(
    aig: &Aig,
    domain: &D,
    seeds: &[(AigLit, D::Value)],
) -> Vec<D::Value> {
    let mut values = vec![domain.bottom(); aig.num_nodes()];
    for (lit, value) in seeds {
        let node = lit.node() as usize;
        values[node] = domain.join(&values[node], value);
    }
    let bottom = domain.bottom();
    for node in (1..aig.num_nodes() as u32).rev() {
        if !aig.is_and(node) {
            continue;
        }
        let value = values[node as usize].clone();
        if value == bottom {
            continue;
        }
        let (l0, l1) = aig.fanins(node);
        for (fanin, sibling) in [(l0, l1), (l1, l0)] {
            let contribution = domain.to_fanin(node, &value, fanin, sibling);
            let target = fanin.node() as usize;
            values[target] = domain.join(&values[target], &contribution);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary::{Ternary, TernaryDomain};

    #[test]
    fn forward_reaches_every_node_in_one_pass() {
        let mut aig = Aig::new("chain");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let ab = aig.and(a, b);
        let o = aig.and(ab, a.complement());
        aig.add_output("o", o);
        let values = forward(&aig, &TernaryDomain);
        assert_eq!(values[0], Ternary::Zero);
        assert_eq!(values[ab.node() as usize], Ternary::X);
        // Pinning a = 0 kills both ANDs through different mechanisms.
        let values = forward_pinned(&aig, &TernaryDomain, &[(a.node(), Ternary::Zero)]);
        assert_eq!(values[ab.node() as usize], Ternary::Zero);
        // o = and(ab, !a) with a = 0: !a = 1, ab = 0, so o = 0.
        assert_eq!(values[o.node() as usize], Ternary::Zero);
    }

    #[test]
    fn widen_defaults_to_join() {
        let d = TernaryDomain;
        assert_eq!(d.widen(&Ternary::Zero, &Ternary::Zero), Ternary::Zero);
        assert_eq!(d.widen(&Ternary::Zero, &Ternary::One), Ternary::X);
    }

    #[test]
    fn edge_value_resolves_complements() {
        let d = TernaryDomain;
        let values = vec![Ternary::Zero, Ternary::One];
        assert_eq!(edge_value(&d, &values, AigLit::new(1, false)), Ternary::One);
        assert_eq!(edge_value(&d, &values, AigLit::new(1, true)), Ternary::Zero);
        assert_eq!(edge_value(&d, &values, AigLit::TRUE), Ternary::One);
    }
}
