//! The unateness domain: for every key input, the structural polarity with
//! which a node depends on it — positive (only even-inversion paths),
//! negative (only odd), binate (both) or independent (none).
//!
//! Structural unateness implies functional unateness: in an AND/inverter
//! graph where every path from key `k` to node `n` has even inversion
//! parity, `n` is monotone non-decreasing in `k` (and symmetrically for
//! odd parity). The converse does not hold, so `Binate` is an
//! over-approximation — exactly the sound direction for a security lint: a
//! `Positive`/`Negative` verdict is always a true fact about the function.

use crate::domain::{forward, Domain, ForwardDomain};
use crate::keys::KeyMap;
use kratt_netlist::{Aig, AigLit};

/// The polarity bitsets of one node: `pos` bit `k` set means an
/// even-parity path from key `k` reaches the node, `neg` an odd-parity
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polarity {
    /// Keys reaching the node through an even number of inversions.
    pub pos: Vec<u64>,
    /// Keys reaching the node through an odd number of inversions.
    pub neg: Vec<u64>,
}

/// How a node depends on one key input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unateness {
    /// No structural path from the key to the node.
    Independent,
    /// Only even-parity paths: the node is positive unate in the key.
    Positive,
    /// Only odd-parity paths: the node is negative unate in the key.
    Negative,
    /// Paths of both parities: no structural polarity claim.
    Binate,
}

impl Unateness {
    /// Whether the dependence is unate (a definite polarity either way).
    pub fn is_unate(self) -> bool {
        matches!(self, Unateness::Positive | Unateness::Negative)
    }

    /// The unateness of the complement: polarities swap.
    pub fn complement(self) -> Unateness {
        match self {
            Unateness::Positive => Unateness::Negative,
            Unateness::Negative => Unateness::Positive,
            other => other,
        }
    }
}

/// The unateness domain: AND unions both parities, complement swaps them.
pub struct UnatenessDomain {
    words: usize,
    key_of_input: Vec<Option<usize>>,
}

impl UnatenessDomain {
    /// A domain recognising the key inputs of `aig` by name.
    pub fn for_aig(aig: &Aig) -> Self {
        let map = KeyMap::from_aig(aig);
        UnatenessDomain {
            words: map.words(),
            key_of_input: map.key_of_input,
        }
    }
}

impl Domain for UnatenessDomain {
    type Value = Polarity;

    fn bottom(&self) -> Polarity {
        Polarity {
            pos: vec![0; self.words],
            neg: vec![0; self.words],
        }
    }

    fn top(&self) -> Polarity {
        Polarity {
            pos: vec![!0u64; self.words],
            neg: vec![!0u64; self.words],
        }
    }

    fn join(&self, a: &Polarity, b: &Polarity) -> Polarity {
        Polarity {
            pos: a.pos.iter().zip(&b.pos).map(|(x, y)| x | y).collect(),
            neg: a.neg.iter().zip(&b.neg).map(|(x, y)| x | y).collect(),
        }
    }
}

impl ForwardDomain for UnatenessDomain {
    fn constant(&self, _value: bool) -> Polarity {
        self.bottom()
    }

    fn input(&self, _node: u32, index: usize) -> Polarity {
        let mut polarity = self.bottom();
        if let Some(k) = self.key_of_input[index] {
            polarity.pos[k / 64] |= 1 << (k % 64);
        }
        polarity
    }

    fn and(&self, a: &Polarity, b: &Polarity) -> Polarity {
        self.join(a, b)
    }

    fn complement(&self, value: &Polarity) -> Polarity {
        Polarity {
            pos: value.neg.clone(),
            neg: value.pos.clone(),
        }
    }
}

/// Per-node unateness in every key input, computed in one forward pass.
pub struct UnatenessAnalysis {
    key_nodes: Vec<u32>,
    key_names: Vec<String>,
    values: Vec<Polarity>,
}

impl UnatenessAnalysis {
    /// Computes the polarity bitsets of every node.
    pub fn compute(aig: &Aig) -> Self {
        let map = KeyMap::from_aig(aig);
        let domain = UnatenessDomain {
            words: map.words(),
            key_of_input: map.key_of_input,
        };
        UnatenessAnalysis {
            key_nodes: map.key_nodes,
            key_names: map.key_names,
            values: forward(aig, &domain),
        }
    }

    /// Number of key inputs found.
    pub fn num_keys(&self) -> usize {
        self.key_nodes.len()
    }

    /// `(input node, name)` of each key bit, in key declaration order.
    pub fn keys(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.key_nodes
            .iter()
            .copied()
            .zip(self.key_names.iter().map(String::as_str))
    }

    /// The unateness of `node` (plain phase) in key bit `key`.
    pub fn of_node(&self, node: u32, key: usize) -> Unateness {
        let polarity = &self.values[node as usize];
        let pos = polarity.pos[key / 64] >> (key % 64) & 1 != 0;
        let neg = polarity.neg[key / 64] >> (key % 64) & 1 != 0;
        match (pos, neg) {
            (false, false) => Unateness::Independent,
            (true, false) => Unateness::Positive,
            (false, true) => Unateness::Negative,
            (true, true) => Unateness::Binate,
        }
    }

    /// The unateness of an edge in key bit `key`: complemented edges swap
    /// the polarity.
    pub fn of_lit(&self, lit: AigLit, key: usize) -> Unateness {
        let u = self.of_node(lit.node(), key);
        if lit.is_complemented() {
            u.complement()
        } else {
            u
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarities_track_inversion_parity() {
        let mut aig = Aig::new("unate");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let pos = aig.and(a, k0); // k0 positive
        let neg = aig.and(a, k1.complement()); // k1 negative
        let both = aig.xor(pos, k0); // k0 through an XOR: binate
        aig.add_output("pos", pos);
        aig.add_output("neg", neg);
        aig.add_output("both", both);
        let analysis = UnatenessAnalysis::compute(&aig);
        assert_eq!(analysis.num_keys(), 2);
        assert_eq!(analysis.of_lit(pos, 0), Unateness::Positive);
        assert_eq!(analysis.of_lit(pos, 1), Unateness::Independent);
        assert_eq!(analysis.of_lit(neg, 1), Unateness::Negative);
        assert_eq!(analysis.of_lit(neg.complement(), 1), Unateness::Positive);
        assert_eq!(analysis.of_lit(both, 0), Unateness::Binate);
        assert_eq!(analysis.of_lit(both.complement(), 0), Unateness::Binate);
    }

    #[test]
    fn unateness_queries() {
        assert!(Unateness::Positive.is_unate());
        assert!(Unateness::Negative.is_unate());
        assert!(!Unateness::Binate.is_unate());
        assert!(!Unateness::Independent.is_unate());
        assert_eq!(Unateness::Positive.complement(), Unateness::Negative);
        assert_eq!(Unateness::Binate.complement(), Unateness::Binate);
    }
}
