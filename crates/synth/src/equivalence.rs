//! Combinational equivalence checking through a fraig-style pipeline.
//!
//! Both circuits are lowered into **one** shared [`Aig`] (inputs matched by
//! name), so logic common to the two halves hashes to a single node before
//! any solver exists — outputs that become literally identical edges are
//! proven equivalent for free. What hashing cannot close is handled in three
//! escalating stages:
//!
//! 1. **Packed simulation** — seeded 64-lane random sweeps over every AIG
//!    node partition the nodes into candidate equivalence classes (signature
//!    equal up to complementation).
//! 2. **Incremental SAT sweeping (fraig)** — one solver holds the AIG's CNF
//!    image ([`kratt_sat::Encoder::encode_aig`]); each candidate is checked
//!    against its class representative under an assumption. Proven pairs are
//!    asserted as equalities (strengthening every later query); SAT answers
//!    yield counterexample patterns that re-simulate and refute other
//!    candidates for free.
//! 3. **Output miters** — each output pair gets its own assumption query
//!    over the now heavily-merged instance; only queries the budget leaves
//!    undecided fall back to one monolithic full-miter solve.
//!
//! The legacy per-gate encoding path is kept as
//! [`check_equivalence_gate_level`]: it is the baseline the bench suite's
//! `cnf_miter`/`fraig_eqv` kernels compare against.

use crate::SynthError;
use kratt_netlist::aig::{Aig, AigLit};
use kratt_netlist::Circuit;
use kratt_sat::{AigEncoding, Encoder, Lit, SatResult, Solver, SolverConfig, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Outcome of an equivalence check between two circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The circuits compute the same function on every shared input pattern.
    Equivalent,
    /// The circuits differ; the counterexample assigns every primary input by
    /// name.
    NotEquivalent(Vec<(String, bool)>),
    /// The solver budget was exhausted before a verdict was reached.
    Unknown,
}

impl EquivalenceResult {
    /// `true` if the result is [`EquivalenceResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent)
    }
}

/// Work counters of one fraig-style equivalence check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FraigStats {
    /// AND nodes of the shared miter AIG.
    pub aig_nodes: usize,
    /// Candidate equivalence classes with at least two members.
    pub candidate_classes: usize,
    /// Node pairs the SAT sweep proved equal and merged.
    pub proved_merges: usize,
    /// Candidate pairs refuted by a counterexample pattern before any SAT
    /// call was spent on them.
    pub simulation_refutations: usize,
    /// Total SAT queries (merge attempts plus output miters).
    pub sat_calls: usize,
    /// Whether the monolithic full-miter fallback ran.
    pub fell_back_to_miter: bool,
    /// Wall-clock time of the fraig sweep stage alone (class partitioning
    /// through the last merge/refutation, excluding the output miters) —
    /// what the bench suite's `fraig_par` kernel compares across worker
    /// counts.
    pub sweep_time: Duration,
}

/// Conflict cap of each *merge* query — applied whether or not the caller
/// gave a budget (a larger caller budget is clamped down to this for the
/// sweep). An inconclusive merge is simply skipped (sound — merging is an
/// optimisation), so individual internal pairs may not stall the sweep.
/// Output queries run under the caller's unclamped budget and stay complete.
const MERGE_CONFLICT_CAP: u64 = 20_000;

/// Conflict budget of one *merge* query: the caller's per-query limit
/// clamped down to [`MERGE_CONFLICT_CAP`] (and the cap itself when the
/// caller gave none). Merges are an optimisation, so an inconclusive query
/// is skipped rather than allowed to stall the sweep.
fn merge_query_cap(conflict_limit: Option<u64>) -> u64 {
    conflict_limit
        .unwrap_or(MERGE_CONFLICT_CAP)
        .min(MERGE_CONFLICT_CAP)
}

/// Conflict budget of one *output-miter* query: exactly the caller's
/// per-query limit, deliberately **not** clamped by [`MERGE_CONFLICT_CAP`]
/// — output queries decide the verdict, so an unbudgeted caller gets a
/// complete (unbounded) solve even though its merge queries were capped.
fn output_query_budget(conflict_limit: Option<u64>) -> Option<u64> {
    conflict_limit
}

/// Environment variable selecting the fraig sweep's worker-thread count
/// (default 1: the sequential sweep).
pub const FRAIG_WORKERS_ENV: &str = "KRATT_FRAIG_WORKERS";

/// The sweep worker count selected by [`FRAIG_WORKERS_ENV`], default 1.
pub fn fraig_workers_from_env() -> usize {
    std::env::var(FRAIG_WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Random 64-lane sweeps used to build the candidate signatures.
const SIGNATURE_SWEEPS: usize = 8;

/// Checks whether two circuits with the same interface compute the same
/// outputs for every input pattern, with no resource budget.
///
/// Inputs are matched *by name* (order does not matter); outputs are matched
/// by position. Inputs present in only one of the circuits are allowed — they
/// are treated as unconstrained, which is the behaviour needed when comparing
/// a locked circuit (with key inputs pinned) against the original.
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence(a: &Circuit, b: &Circuit) -> Result<EquivalenceResult, SynthError> {
    check_equivalence_with_budget(a, b, None, None)
}

/// [`check_equivalence`] with optional conflict and wall-clock budgets.
///
/// `time_limit` bounds the *whole* pipeline (one absolute deadline shared by
/// every SAT query). `conflict_limit` is a **per-query** cap, not a total:
/// the fraig pipeline issues one query per candidate merge and per output
/// pair, so total conflicts can reach `conflict_limit × queries` — pass a
/// `time_limit` when the overall budget matters. (The legacy single-solve
/// semantics live on in [`check_equivalence_gate_level`].)
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence_with_budget(
    a: &Circuit,
    b: &Circuit,
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> Result<EquivalenceResult, SynthError> {
    check_equivalence_with_stats(a, b, conflict_limit, time_limit).map(|(result, _)| result)
}

/// [`check_equivalence_with_budget`], additionally reporting how the fraig
/// pipeline earned its verdict. The sweep runs on the worker count selected
/// by [`FRAIG_WORKERS_ENV`] (default 1, the sequential sweep).
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence_with_stats(
    a: &Circuit,
    b: &Circuit,
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> Result<(EquivalenceResult, FraigStats), SynthError> {
    check_equivalence_with_stats_workers(a, b, conflict_limit, time_limit, fraig_workers_from_env())
}

/// [`check_equivalence_with_stats`] with an explicit sweep worker count.
///
/// With `workers > 1` the candidate equivalence classes are dealt
/// round-robin across `min(workers, classes)` threads. Every worker owns an
/// incremental [`Solver`] holding the same CNF image of the shared AIG
/// (`encode_aig` numbers variables deterministically, so literals are
/// interchangeable across workers), proves or refutes its share of the
/// candidates, and broadcasts every counterexample pattern it finds over a
/// channel — each pattern re-simulates in every worker and refutes later
/// candidates there before any SAT effort is spent on them. Proven
/// equalities are asserted into the owning worker's solver as it sweeps and
/// reconciled onto one solver afterwards, so the output-miter stage runs on
/// a single, heavily-merged instance exactly as in the sequential sweep.
///
/// The verdict and the number of proved merges are independent of the
/// worker count (merges are implied equalities — asserting one can never
/// flip another query's answer); only the split between SAT refutations
/// and simulation refutations varies with broadcast timing.
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence_with_stats_workers(
    a: &Circuit,
    b: &Circuit,
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
    workers: usize,
) -> Result<(EquivalenceResult, FraigStats), SynthError> {
    check_interfaces(a, b)?;
    let mut stats = FraigStats::default();

    // --- One shared AIG: common logic hashes together. ---------------------
    let mut aig = Aig::new(format!("{}_eq_{}", a.name(), b.name()));
    let outs_a = aig.add_circuit(a)?;
    let outs_b = aig.add_circuit(b)?;
    stats.aig_nodes = aig.num_ands();
    if outs_a == outs_b {
        return Ok((EquivalenceResult::Equivalent, stats));
    }

    // --- Pre-encode optimisation: cut rewriting shrinks the shared image ---
    // (and can converge the two halves structurally, which the re-derived
    // output check below catches for free). Output registration order is
    // `a`'s outputs then `b`'s, so the halves split at `a.num_outputs()`.
    let aig = aig.rewrite();
    let outs_a: Vec<AigLit> = aig.outputs()[..a.num_outputs()].to_vec();
    let outs_b: Vec<AigLit> = aig.outputs()[a.num_outputs()..].to_vec();
    stats.aig_nodes = aig.num_ands();
    if outs_a == outs_b {
        return Ok((EquivalenceResult::Equivalent, stats));
    }

    let deadline = time_limit.map(|limit| Instant::now() + limit);
    let mut solver = Solver::with_config(SolverConfig {
        conflict_limit: Some(merge_query_cap(conflict_limit)),
        deadline,
        ..Default::default()
    });
    let encoder = Encoder::new();
    let encoding = encoder.encode_aig(&mut solver, &aig, &HashMap::new());

    // --- Candidate classes from packed random simulation. ------------------
    let mut rng = StdRng::seed_from_u64(0xF4A1_6EED);
    let mut signatures: Vec<Vec<u64>> = vec![Vec::with_capacity(SIGNATURE_SWEEPS); aig.num_nodes()];
    for _ in 0..SIGNATURE_SWEEPS {
        let words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
        let values = aig.eval_words(&words);
        for (signature, value) in signatures.iter_mut().zip(&values) {
            signature.push(*value);
        }
    }
    // Group nodes by phase-normalised signature; only nodes the encoding
    // materialised can be merged.
    let cone = aig.cone(aig.outputs());
    let mut classes: HashMap<Vec<u64>, Vec<(u32, bool)>> = HashMap::new();
    for node in 1..aig.num_nodes() as u32 {
        if !cone[node as usize] || encoding.lit_of(AigLit::new(node, false)).is_none() {
            continue;
        }
        let signature = &signatures[node as usize];
        let phase = signature[0] & 1 != 0;
        let canonical: Vec<u64> = if phase {
            signature.iter().map(|w| !w).collect()
        } else {
            signature.clone()
        };
        classes.entry(canonical).or_default().push((node, phase));
    }
    let mut ordered: Vec<Vec<(u32, bool)>> = classes
        .into_values()
        .filter(|members| members.len() > 1)
        .collect();
    for members in &mut ordered {
        members.sort_unstable();
    }
    ordered.sort_unstable_by_key(|members| members[0]);
    stats.candidate_classes = ordered.len();

    // --- Fraig sweep: prove or refute each candidate against its rep. ------
    // Counterexample patterns accumulate and refute later candidates by
    // simulation before any SAT effort is spent on them. With more than one
    // worker, the classes are dealt round-robin across threads and every
    // counterexample is broadcast so each worker's refutation signatures
    // profit from all the others' SAT answers.
    let sweep_start = Instant::now();
    let worker_count = workers.clamp(1, ordered.len().max(1));
    let budget_hit = if worker_count <= 1 {
        let shares: Vec<&Vec<(u32, bool)>> = ordered.iter().collect();
        let outcome = sweep_classes(&aig, &mut solver, &encoding, &shares, deadline, &[], None);
        stats.proved_merges = outcome.proved_merges;
        stats.simulation_refutations = outcome.simulation_refutations;
        stats.sat_calls += outcome.sat_calls;
        outcome.budget_hit
    } else {
        let mut shares: Vec<Vec<&Vec<(u32, bool)>>> = vec![Vec::new(); worker_count];
        for (index, members) in ordered.iter().enumerate() {
            shares[index % worker_count].push(members);
        }
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..worker_count)
            .map(|_| mpsc::channel::<Vec<bool>>())
            .unzip();
        let aig_ref = &aig;
        let outcomes: Vec<SweepOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = shares
                .iter()
                .zip(rxs)
                .enumerate()
                .map(|(index, (share, inbox))| {
                    let peers: Vec<mpsc::Sender<Vec<bool>>> = txs
                        .iter()
                        .enumerate()
                        .filter(|&(peer, _)| peer != index)
                        .map(|(_, tx)| tx.clone())
                        .collect();
                    scope.spawn(move || {
                        // Every worker encodes the same AIG into a fresh
                        // solver: `encode_aig` numbers variables
                        // deterministically, so literals (and proven
                        // equalities) are interchangeable across workers.
                        let mut worker_solver = Solver::with_config(SolverConfig {
                            conflict_limit: Some(merge_query_cap(conflict_limit)),
                            deadline,
                            ..Default::default()
                        });
                        let worker_encoding =
                            Encoder::new().encode_aig(&mut worker_solver, aig_ref, &HashMap::new());
                        sweep_classes(
                            aig_ref,
                            &mut worker_solver,
                            &worker_encoding,
                            share,
                            deadline,
                            &peers,
                            Some(&inbox),
                        )
                    })
                })
                .collect();
            drop(txs);
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fraig sweep worker panicked"))
                .collect()
        });
        let mut hit = false;
        for outcome in &outcomes {
            stats.proved_merges += outcome.proved_merges;
            stats.simulation_refutations += outcome.simulation_refutations;
            stats.sat_calls += outcome.sat_calls;
            hit |= outcome.budget_hit;
            // Reconcile: every worker's equalities are asserted onto the one
            // solver the output-miter stage runs on, so it is as heavily
            // merged as a sequential sweep would have left it.
            for &(lit_r, lit_n) in &outcome.equalities {
                solver.add_clause([!lit_r, lit_n]);
                solver.add_clause([lit_r, !lit_n]);
            }
        }
        hit
    };
    stats.sweep_time = sweep_start.elapsed();

    // --- Output miters over the merged instance. ---------------------------
    solver.set_budget(output_query_budget(conflict_limit), None);
    let mut survivors: Vec<(Lit, Lit)> = Vec::new();
    for (&la, &lb) in outs_a.iter().zip(&outs_b) {
        if la == lb {
            continue;
        }
        let lit_a = encoding.lit_of(la).expect("outputs are materialised");
        let lit_b = encoding.lit_of(lb).expect("outputs are materialised");
        if budget_hit {
            survivors.push((lit_a, lit_b));
            continue;
        }
        stats.sat_calls += 1;
        let diff = assume_difference(&mut solver, lit_a, lit_b);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Unsat => {}
            SatResult::Sat(model) => {
                return Ok((
                    EquivalenceResult::NotEquivalent(counterexample(&encoding, &model)),
                    stats,
                ));
            }
            SatResult::Unknown => survivors.push((lit_a, lit_b)),
        }
    }
    if survivors.is_empty() {
        return Ok((EquivalenceResult::Equivalent, stats));
    }

    // --- Fallback: one monolithic miter over the surviving pairs. ----------
    stats.fell_back_to_miter = true;
    stats.sat_calls += 1;
    let diffs: Vec<Lit> = survivors
        .iter()
        .map(|&(lit_a, lit_b)| assume_difference(&mut solver, lit_a, lit_b))
        .collect();
    let any = solver.new_var();
    let mut clause: Vec<Lit> = diffs.clone();
    clause.push(Lit::negative(any));
    solver.add_clause(clause);
    for diff in diffs {
        solver.add_clause([Lit::positive(any), !diff]);
    }
    match solver.solve_with_assumptions(&[Lit::positive(any)]) {
        SatResult::Unsat => Ok((EquivalenceResult::Equivalent, stats)),
        SatResult::Sat(model) => Ok((
            EquivalenceResult::NotEquivalent(counterexample(&encoding, &model)),
            stats,
        )),
        SatResult::Unknown => Ok((EquivalenceResult::Unknown, stats)),
    }
}

/// The legacy monolithic check over the per-gate Tseitin encoding: both
/// circuits encoded gate by gate, one miter, one solve. Kept as the baseline
/// that the fraig pipeline and the bench-regression CNF kernels are measured
/// against.
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence_gate_level(
    a: &Circuit,
    b: &Circuit,
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> Result<EquivalenceResult, SynthError> {
    check_interfaces(a, b)?;
    let mut solver = Solver::with_config(SolverConfig {
        conflict_limit,
        time_limit,
        ..Default::default()
    });
    let encoder = Encoder::new();
    let enc_a = encoder.encode(&mut solver, a, &HashMap::new());
    let shared: HashMap<String, Var> = enc_a.inputs().iter().cloned().collect();
    let enc_b = encoder.encode(&mut solver, b, &shared);
    let miter = encoder.miter(&mut solver, &enc_a, &enc_b);
    solver.add_clause([Lit::positive(miter)]);
    match solver.solve() {
        SatResult::Unsat => Ok(EquivalenceResult::Equivalent),
        SatResult::Unknown => Ok(EquivalenceResult::Unknown),
        SatResult::Sat(model) => {
            // Collect a counterexample over the union of both input sets.
            let mut names: BTreeSet<String> = BTreeSet::new();
            let value_of = |name: &str| -> Option<bool> {
                enc_a
                    .input_var(name)
                    .or_else(|| enc_b.input_var(name))
                    .map(|var| model.value(var))
            };
            for &pi in a.inputs() {
                names.insert(a.net_name(pi).to_string());
            }
            for &pi in b.inputs() {
                names.insert(b.net_name(pi).to_string());
            }
            let counterexample = names
                .into_iter()
                .filter_map(|name| value_of(&name).map(|v| (name, v)))
                .collect();
            Ok(EquivalenceResult::NotEquivalent(counterexample))
        }
    }
}

fn check_interfaces(a: &Circuit, b: &Circuit) -> Result<(), SynthError> {
    if a.num_outputs() != b.num_outputs() {
        return Err(SynthError::InterfaceMismatch(format!(
            "`{}` has {} outputs, `{}` has {}",
            a.name(),
            a.num_outputs(),
            b.name(),
            b.num_outputs()
        )));
    }
    Ok(())
}

/// Result of one worker's share of the fraig sweep.
struct SweepOutcome {
    /// Literal pairs proven equal, already asserted into the worker's own
    /// solver; the caller re-asserts them onto the reconciliation solver
    /// the output-miter stage runs on.
    equalities: Vec<(Lit, Lit)>,
    /// Node pairs proved equal and merged.
    proved_merges: usize,
    /// Candidate pairs refuted by a counterexample pattern (the worker's
    /// own or a broadcast one) before any SAT call was spent on them.
    simulation_refutations: usize,
    /// SAT merge queries issued.
    sat_calls: usize,
    /// Whether the wall-clock deadline ended the sweep early.
    budget_hit: bool,
}

/// Sweeps one share of the candidate classes on one solver: each candidate
/// is refuted by simulation where a counterexample pattern already
/// distinguishes it from its class representative, and otherwise settled by
/// a conflict-capped SAT merge query. Counterexamples found here are pushed
/// to every `peers` channel; patterns arriving on `inbox` are folded into
/// this worker's refutation signatures before each candidate.
fn sweep_classes(
    aig: &Aig,
    solver: &mut Solver,
    encoding: &AigEncoding,
    classes: &[&Vec<(u32, bool)>],
    deadline: Option<Instant>,
    peers: &[mpsc::Sender<Vec<bool>>],
    inbox: Option<&mpsc::Receiver<Vec<bool>>>,
) -> SweepOutcome {
    let mut outcome = SweepOutcome {
        equalities: Vec::new(),
        proved_merges: 0,
        simulation_refutations: 0,
        sat_calls: 0,
        budget_hit: false,
    };
    let mut extra_signatures: Vec<Vec<u64>> = vec![Vec::new(); aig.num_nodes()];
    let mut pending_cex: Vec<Vec<bool>> = Vec::new();
    'sweep: for members in classes {
        let (rep, rep_phase) = members[0];
        for &(node, phase) in &members[1..] {
            if let Some(inbox) = inbox {
                while let Ok(pattern) = inbox.try_recv() {
                    pending_cex.push(pattern);
                }
            }
            flush_counterexamples(aig, &mut pending_cex, &mut extra_signatures);
            let same = rep_phase == phase;
            let refuted = extra_signatures[rep as usize]
                .iter()
                .zip(&extra_signatures[node as usize])
                .any(|(&wr, &wn)| if same { wr != wn } else { wr != !wn });
            if refuted {
                outcome.simulation_refutations += 1;
                continue;
            }
            let lit_r = encoding
                .lit_of(AigLit::new(rep, false))
                .expect("class members are materialised");
            let lit_n = encoding
                .lit_of(AigLit::new(node, !same))
                .expect("class members are materialised");
            outcome.sat_calls += 1;
            let diff = assume_difference(solver, lit_r, lit_n);
            match solver.solve_with_assumptions(&[diff]) {
                SatResult::Unsat => {
                    solver.add_clause([!lit_r, lit_n]);
                    solver.add_clause([lit_r, !lit_n]);
                    outcome.equalities.push((lit_r, lit_n));
                    outcome.proved_merges += 1;
                }
                SatResult::Sat(model) => {
                    let pattern: Vec<bool> = encoding
                        .inputs()
                        .iter()
                        .map(|&(_, var)| model.value(var))
                        .collect();
                    for peer in peers {
                        // A finished peer has dropped its inbox; its loss.
                        let _ = peer.send(pattern.clone());
                    }
                    pending_cex.push(pattern);
                }
                SatResult::Unknown => {
                    if deadline.map(|d| Instant::now() >= d).unwrap_or(false) {
                        outcome.budget_hit = true;
                        break 'sweep;
                    }
                    // Conflict-capped merge query: skip this pair, keep going.
                }
            }
        }
    }
    outcome
}

/// Fresh variable constrained to `lit_a ⊕ lit_b`, returned as a positive
/// assumption literal.
fn assume_difference(solver: &mut Solver, lit_a: Lit, lit_b: Lit) -> Lit {
    let diff = solver.new_var();
    solver.add_clause([Lit::negative(diff), lit_a, lit_b]);
    solver.add_clause([Lit::negative(diff), !lit_a, !lit_b]);
    solver.add_clause([Lit::positive(diff), !lit_a, lit_b]);
    solver.add_clause([Lit::positive(diff), lit_a, !lit_b]);
    Lit::positive(diff)
}

/// Runs the accumulated counterexample patterns through the AIG and appends
/// the resulting word to every node's refinement signature.
fn flush_counterexamples(aig: &Aig, pending: &mut Vec<Vec<bool>>, extra: &mut [Vec<u64>]) {
    if pending.is_empty() {
        return;
    }
    for chunk in pending.chunks(64) {
        let mut words = vec![0u64; aig.num_inputs()];
        for (lane, pattern) in chunk.iter().enumerate() {
            for (word, &bit) in words.iter_mut().zip(pattern) {
                *word |= u64::from(bit) << lane;
            }
        }
        // Unused lanes replay the all-zero pattern — a legitimate pattern,
        // so the refinement stays sound.
        let values = aig.eval_words(&words);
        for (signature, value) in extra.iter_mut().zip(&values) {
            signature.push(*value);
        }
    }
    pending.clear();
}

/// Decodes a model into a named counterexample over the AIG inputs (the
/// union of both circuits' inputs), sorted by name.
fn counterexample(
    encoding: &kratt_sat::AigEncoding,
    model: &kratt_sat::Model,
) -> Vec<(String, bool)> {
    let mut rows: Vec<(String, bool)> = encoding
        .inputs()
        .iter()
        .map(|(name, var)| (name.clone(), model.value(*var)))
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn xor_direct() -> Circuit {
        let mut c = Circuit::new("xor_direct");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        c.mark_output(o);
        c
    }

    fn xor_nand_only() -> Circuit {
        // a XOR b out of four NAND gates.
        let mut c = Circuit::new("xor_nand");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let n1 = c.add_gate(GateType::Nand, "n1", &[a, b]).unwrap();
        let n2 = c.add_gate(GateType::Nand, "n2", &[a, n1]).unwrap();
        let n3 = c.add_gate(GateType::Nand, "n3", &[b, n1]).unwrap();
        let o = c.add_gate(GateType::Nand, "o", &[n2, n3]).unwrap();
        c.mark_output(o);
        c
    }

    #[test]
    fn equivalent_circuits_are_recognised() {
        let result = check_equivalence(&xor_direct(), &xor_nand_only()).unwrap();
        assert!(result.is_equivalent());
    }

    #[test]
    fn structurally_identical_circuits_need_no_solver() {
        let c = xor_direct();
        let (result, stats) = check_equivalence_with_stats(&c, &c.clone(), None, None).unwrap();
        assert!(result.is_equivalent());
        assert_eq!(stats.sat_calls, 0, "hashing must close the identical case");
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let mut c = Circuit::new("and2");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::And, "o", &[a, b]).unwrap();
        c.mark_output(o);
        match check_equivalence(&xor_direct(), &c).unwrap() {
            EquivalenceResult::NotEquivalent(cex) => {
                // The counterexample must actually distinguish the circuits.
                let value = |name: &str| cex.iter().find(|(n, _)| n == name).unwrap().1;
                let a_val = value("a");
                let b_val = value("b");
                assert_ne!(a_val ^ b_val, a_val && b_val);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn extra_inputs_in_one_circuit_are_unconstrained() {
        // A locked XOR with its key input left free is NOT equivalent to the
        // original (the key can corrupt it), but with the key folded to the
        // correct constant it is.
        let mut locked = Circuit::new("locked");
        let a = locked.add_input("a").unwrap();
        let b = locked.add_input("b").unwrap();
        let k = locked.add_input("keyinput0").unwrap();
        let x = locked.add_gate(GateType::Xor, "x", &[a, b]).unwrap();
        let o = locked.add_gate(GateType::Xor, "o", &[x, k]).unwrap();
        locked.mark_output(o);
        let original = xor_direct();
        match check_equivalence(&original, &locked).unwrap() {
            EquivalenceResult::NotEquivalent(cex) => {
                assert!(cex.iter().any(|(n, v)| n == "keyinput0" && *v));
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
        let k_net = locked.find_net("keyinput0").unwrap();
        let unlocked =
            kratt_netlist::transform::set_inputs_constant(&locked, &[(k_net, false)]).unwrap();
        assert!(check_equivalence(&original, &unlocked)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn mismatched_outputs_are_an_interface_error() {
        let mut two_outputs = xor_direct();
        let a = two_outputs.find_net("a").unwrap();
        two_outputs.mark_output(a);
        assert!(matches!(
            check_equivalence(&xor_direct(), &two_outputs),
            Err(SynthError::InterfaceMismatch(_))
        ));
        assert!(matches!(
            check_equivalence_gate_level(&xor_direct(), &two_outputs, None, None),
            Err(SynthError::InterfaceMismatch(_))
        ));
    }

    #[test]
    fn budget_can_return_unknown() {
        // With a zero conflict budget the solver cannot finish on a
        // non-trivial instance; Unknown (or a fast verdict) is acceptable,
        // the call must simply not hang or panic.
        let result = check_equivalence_with_budget(
            &xor_direct(),
            &xor_nand_only(),
            Some(0),
            Some(Duration::from_millis(1)),
        )
        .unwrap();
        assert!(matches!(
            result,
            EquivalenceResult::Unknown | EquivalenceResult::Equivalent
        ));
    }

    #[test]
    fn gate_level_baseline_agrees_with_the_fraig_pipeline() {
        let result = check_equivalence_gate_level(&xor_direct(), &xor_nand_only(), None, None);
        assert!(result.unwrap().is_equivalent());
        let mut c = Circuit::new("and2");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::And, "o", &[a, b]).unwrap();
        c.mark_output(o);
        assert!(matches!(
            check_equivalence_gate_level(&xor_direct(), &c, None, None).unwrap(),
            EquivalenceResult::NotEquivalent(_)
        ));
    }

    #[test]
    fn fraig_proves_resynthesised_variants_with_merges() {
        // A multi-output circuit against its high-effort resynthesis: the
        // pipeline must prove equivalence, typically earning internal merges
        // along the way.
        let mut c = Circuit::new("host");
        let ins: Vec<_> = (0..6)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[5]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g4);
        let variant = crate::resynthesize(
            &c,
            &crate::ResynthesisOptions::with_seed(5).effort(crate::Effort::High),
        )
        .unwrap();
        let (result, stats) = check_equivalence_with_stats(&c, &variant, None, None).unwrap();
        assert!(result.is_equivalent());
        assert!(!stats.fell_back_to_miter);
        assert!(stats.aig_nodes > 0);
    }

    #[test]
    fn merge_queries_are_capped_but_output_queries_are_not() {
        // Merge queries are an optimisation: any caller budget is clamped
        // down to the sweep cap.
        assert_eq!(merge_query_cap(None), MERGE_CONFLICT_CAP);
        assert_eq!(merge_query_cap(Some(5)), 5);
        assert_eq!(
            merge_query_cap(Some(MERGE_CONFLICT_CAP * 10)),
            MERGE_CONFLICT_CAP
        );
        // Output-miter queries decide the verdict: the caller's budget
        // passes through unclamped, and no budget means a complete solve.
        assert_eq!(output_query_budget(None), None);
        assert_eq!(
            output_query_budget(Some(MERGE_CONFLICT_CAP * 10)),
            Some(MERGE_CONFLICT_CAP * 10)
        );
        // Regression: a conflict budget far above the merge cap must not be
        // clamped for the output stage — the check still completes.
        let result = check_equivalence_with_budget(
            &xor_direct(),
            &xor_nand_only(),
            Some(MERGE_CONFLICT_CAP * 100),
            None,
        )
        .unwrap();
        assert!(result.is_equivalent());
    }

    #[test]
    fn worker_env_knob_selects_the_sweep_width() {
        // Untouched environment: the sequential sweep.
        assert_eq!(fraig_workers_from_env(), 1);
        std::env::set_var(FRAIG_WORKERS_ENV, "4");
        assert_eq!(fraig_workers_from_env(), 4);
        std::env::set_var(FRAIG_WORKERS_ENV, "0");
        assert_eq!(fraig_workers_from_env(), 1, "zero workers is nonsense");
        std::env::set_var(FRAIG_WORKERS_ENV, "many");
        assert_eq!(fraig_workers_from_env(), 1);
        std::env::remove_var(FRAIG_WORKERS_ENV);
    }

    #[test]
    fn parallel_sweep_agrees_with_sequential_on_a_resynthesised_host() {
        let mut c = Circuit::new("host");
        let ins: Vec<_> = (0..6)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[5]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g4);
        let variant = crate::resynthesize(
            &c,
            &crate::ResynthesisOptions::with_seed(7).effort(crate::Effort::High),
        )
        .unwrap();
        let (seq, seq_stats) =
            check_equivalence_with_stats_workers(&c, &variant, None, None, 1).unwrap();
        let (par, par_stats) =
            check_equivalence_with_stats_workers(&c, &variant, None, None, 4).unwrap();
        assert!(seq.is_equivalent());
        assert!(par.is_equivalent());
        assert_eq!(seq_stats.proved_merges, par_stats.proved_merges);
        assert_eq!(seq_stats.candidate_classes, par_stats.candidate_classes);
    }

    proptest::proptest! {
        /// The parallel sweep's verdict and merge count match the
        /// sequential sweep on random gate soups, both for equivalent pairs
        /// (resynthesised variants) and inequivalent ones (a soup against a
        /// mutated copy). Merges are implied equalities, so the worker
        /// count may only shift which refutations come from simulation
        /// versus SAT — never the verdict or the merge count.
        #[test]
        fn prop_parallel_sweep_matches_sequential(seed in 0u64..16) {
            use kratt_netlist::NetId;
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131) + 7);
            let mut c = Circuit::new(format!("soup{seed}"));
            let mut nets: Vec<NetId> =
                (0..5).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
            ];
            for g in 0..16 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = match ty {
                    GateType::Not | GateType::Buf => 1,
                    _ => rng.gen_range(2..4usize),
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            let soup = c.clone();
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[8]);
            let other = if seed % 3 == 0 {
                // The same soup with its second output wired to a different
                // net — usually (not always) an inequivalent pair; either
                // way the two sweep modes must agree on the verdict.
                let mut rewired = soup;
                rewired.mark_output(*nets.last().unwrap());
                rewired.mark_output(nets[6]);
                rewired
            } else {
                crate::resynthesize(
                    &c,
                    &crate::ResynthesisOptions::with_seed(seed).effort(crate::Effort::High),
                )
                .unwrap()
            };
            let seq = check_equivalence_with_stats_workers(&c, &other, None, None, 1);
            let par = check_equivalence_with_stats_workers(&c, &other, None, None, 4);
            match (seq, par) {
                (Ok((seq_res, seq_stats)), Ok((par_res, par_stats))) => {
                    proptest::prop_assert_eq!(
                        seq_res.is_equivalent(),
                        par_res.is_equivalent()
                    );
                    proptest::prop_assert_eq!(
                        seq_stats.proved_merges,
                        par_stats.proved_merges
                    );
                    proptest::prop_assert_eq!(
                        seq_stats.candidate_classes,
                        par_stats.candidate_classes
                    );
                }
                (Err(e), _) | (_, Err(e)) => {
                    // Interface errors must at least agree between modes.
                    proptest::prop_assert!(
                        matches!(e, SynthError::InterfaceMismatch(_))
                    );
                }
            }
        }
    }
}
