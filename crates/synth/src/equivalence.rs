//! SAT-based combinational equivalence checking.

use crate::SynthError;
use kratt_netlist::Circuit;
use kratt_sat::{Encoder, Lit, SatResult, Solver, SolverConfig, Var};
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// Outcome of an equivalence check between two circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The circuits compute the same function on every shared input pattern.
    Equivalent,
    /// The circuits differ; the counterexample assigns every primary input by
    /// name.
    NotEquivalent(Vec<(String, bool)>),
    /// The solver budget was exhausted before a verdict was reached.
    Unknown,
}

impl EquivalenceResult {
    /// `true` if the result is [`EquivalenceResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent)
    }
}

/// Checks whether two circuits with the same interface compute the same
/// outputs for every input pattern, with no resource budget.
///
/// Inputs are matched *by name* (order does not matter); outputs are matched
/// by position. Inputs present in only one of the circuits are allowed — they
/// are treated as unconstrained, which is the behaviour needed when comparing
/// a locked circuit (with key inputs pinned) against the original.
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence(a: &Circuit, b: &Circuit) -> Result<EquivalenceResult, SynthError> {
    check_equivalence_with_budget(a, b, None, None)
}

/// [`check_equivalence`] with optional conflict and wall-clock budgets.
///
/// # Errors
///
/// Returns [`SynthError::InterfaceMismatch`] if the output counts differ.
pub fn check_equivalence_with_budget(
    a: &Circuit,
    b: &Circuit,
    conflict_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> Result<EquivalenceResult, SynthError> {
    if a.num_outputs() != b.num_outputs() {
        return Err(SynthError::InterfaceMismatch(format!(
            "`{}` has {} outputs, `{}` has {}",
            a.name(),
            a.num_outputs(),
            b.name(),
            b.num_outputs()
        )));
    }
    let mut solver = Solver::with_config(SolverConfig {
        conflict_limit,
        time_limit,
        ..Default::default()
    });
    let encoder = Encoder::new();
    let enc_a = encoder.encode(&mut solver, a, &HashMap::new());
    let shared: HashMap<String, Var> = enc_a.inputs().iter().cloned().collect();
    let enc_b = encoder.encode(&mut solver, b, &shared);
    let miter = encoder.miter(&mut solver, &enc_a, &enc_b);
    solver.add_clause([Lit::positive(miter)]);
    match solver.solve() {
        SatResult::Unsat => Ok(EquivalenceResult::Equivalent),
        SatResult::Unknown => Ok(EquivalenceResult::Unknown),
        SatResult::Sat(model) => {
            // Collect a counterexample over the union of both input sets.
            let mut names: BTreeSet<String> = BTreeSet::new();
            let value_of = |name: &str| -> Option<bool> {
                enc_a
                    .input_var(name)
                    .or_else(|| enc_b.input_var(name))
                    .map(|var| model.value(var))
            };
            for &pi in a.inputs() {
                names.insert(a.net_name(pi).to_string());
            }
            for &pi in b.inputs() {
                names.insert(b.net_name(pi).to_string());
            }
            let counterexample = names
                .into_iter()
                .filter_map(|name| value_of(&name).map(|v| (name, v)))
                .collect();
            Ok(EquivalenceResult::NotEquivalent(counterexample))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn xor_direct() -> Circuit {
        let mut c = Circuit::new("xor_direct");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        c.mark_output(o);
        c
    }

    fn xor_nand_only() -> Circuit {
        // a XOR b out of four NAND gates.
        let mut c = Circuit::new("xor_nand");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let n1 = c.add_gate(GateType::Nand, "n1", &[a, b]).unwrap();
        let n2 = c.add_gate(GateType::Nand, "n2", &[a, n1]).unwrap();
        let n3 = c.add_gate(GateType::Nand, "n3", &[b, n1]).unwrap();
        let o = c.add_gate(GateType::Nand, "o", &[n2, n3]).unwrap();
        c.mark_output(o);
        c
    }

    #[test]
    fn equivalent_circuits_are_recognised() {
        let result = check_equivalence(&xor_direct(), &xor_nand_only()).unwrap();
        assert!(result.is_equivalent());
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let mut c = Circuit::new("and2");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::And, "o", &[a, b]).unwrap();
        c.mark_output(o);
        match check_equivalence(&xor_direct(), &c).unwrap() {
            EquivalenceResult::NotEquivalent(cex) => {
                // The counterexample must actually distinguish the circuits.
                let value = |name: &str| cex.iter().find(|(n, _)| n == name).unwrap().1;
                let a_val = value("a");
                let b_val = value("b");
                assert_ne!(a_val ^ b_val, a_val && b_val);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn extra_inputs_in_one_circuit_are_unconstrained() {
        // A locked XOR with its key input left free is NOT equivalent to the
        // original (the key can corrupt it), but with the key folded to the
        // correct constant it is.
        let mut locked = Circuit::new("locked");
        let a = locked.add_input("a").unwrap();
        let b = locked.add_input("b").unwrap();
        let k = locked.add_input("keyinput0").unwrap();
        let x = locked.add_gate(GateType::Xor, "x", &[a, b]).unwrap();
        let o = locked.add_gate(GateType::Xor, "o", &[x, k]).unwrap();
        locked.mark_output(o);
        let original = xor_direct();
        match check_equivalence(&original, &locked).unwrap() {
            EquivalenceResult::NotEquivalent(cex) => {
                assert!(cex.iter().any(|(n, v)| n == "keyinput0" && *v));
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
        let k_net = locked.find_net("keyinput0").unwrap();
        let unlocked =
            kratt_netlist::transform::set_inputs_constant(&locked, &[(k_net, false)]).unwrap();
        assert!(check_equivalence(&original, &unlocked)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn mismatched_outputs_are_an_interface_error() {
        let mut two_outputs = xor_direct();
        let a = two_outputs.find_net("a").unwrap();
        two_outputs.mark_output(a);
        assert!(matches!(
            check_equivalence(&xor_direct(), &two_outputs),
            Err(SynthError::InterfaceMismatch(_))
        ));
    }

    #[test]
    fn budget_can_return_unknown() {
        // With a zero conflict budget the solver cannot finish on a
        // non-trivial instance; Unknown (or a fast verdict) is acceptable,
        // the call must simply not hang or panic.
        let result = check_equivalence_with_budget(
            &xor_direct(),
            &xor_nand_only(),
            Some(0),
            Some(Duration::from_millis(1)),
        )
        .unwrap();
        assert!(matches!(
            result,
            EquivalenceResult::Unknown | EquivalenceResult::Equivalent
        ));
    }
}
