//! Functionality-preserving randomized resynthesis.
//!
//! The pipeline applies local rewrites that keep the circuit function intact
//! while changing its structure, mimicking what a commercial synthesis tool
//! does to a locked netlist: the regular, textbook shape of the locking unit
//! disappears and repeated runs with different seeds/efforts produce the
//! structurally different variants needed for the paper's Fig. 6 study.
//!
//! Passes:
//!
//! 1. **Decomposition** — multi-input gates become trees of two-input gates
//!    (randomly balanced or chain-shaped, random operand order).
//! 2. **De Morgan rewriting** — a random subset of AND/OR/NAND/NOR gates is
//!    rewritten through its dual with inverters; XOR/XNOR gates may be
//!    expanded into AND/OR/NOT networks.
//! 3. **Buffer-pair insertion** — double inverters are sprinkled on random
//!    nets (later passes may re-absorb them).
//! 4. **Structural hashing** — structurally identical gates are merged and
//!    buffers are collapsed.
//! 5. **Cleanup** — constant propagation and dangling-logic removal.

use crate::SynthError;
use kratt_netlist::analysis::topological_order;
use kratt_netlist::transform::propagate_constants;
use kratt_netlist::{Circuit, GateType, NetId, NetlistError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Synthesis effort, mirroring the "design effort" knob of a commercial tool.
/// Higher effort applies more rewrite passes with higher rewrite probability,
/// producing variants that are structurally further from the input netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effort {
    /// One light rewrite pass.
    Low,
    /// Two passes with moderate rewrite probability.
    #[default]
    Medium,
    /// Three passes with aggressive rewriting.
    High,
}

impl Effort {
    fn passes(self) -> usize {
        match self {
            Effort::Low => 1,
            Effort::Medium => 2,
            Effort::High => 3,
        }
    }

    fn rewrite_probability(self) -> f64 {
        match self {
            Effort::Low => 0.15,
            Effort::Medium => 0.35,
            Effort::High => 0.6,
        }
    }

    fn buffer_probability(self) -> f64 {
        match self {
            Effort::Low => 0.02,
            Effort::Medium => 0.05,
            Effort::High => 0.10,
        }
    }
}

/// Options controlling one resynthesis run.
#[derive(Debug, Clone)]
pub struct ResynthesisOptions {
    /// RNG seed: different seeds give structurally different variants.
    pub seed: u64,
    /// Synthesis effort.
    pub effort: Effort,
    /// Emulates a delay constraint: `true` prefers balanced (fast) trees,
    /// `false` prefers chains (area-biased), mirroring the delay-constraint
    /// sweep used to generate the paper's 50 c6288 variants.
    pub balanced_trees: bool,
}

impl ResynthesisOptions {
    /// Medium-effort options with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        ResynthesisOptions {
            seed,
            effort: Effort::Medium,
            balanced_trees: true,
        }
    }

    /// Sets the effort level.
    pub fn effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the tree-shaping preference (see [`ResynthesisOptions::balanced_trees`]).
    pub fn balanced(mut self, balanced: bool) -> Self {
        self.balanced_trees = balanced;
        self
    }
}

impl Default for ResynthesisOptions {
    fn default() -> Self {
        ResynthesisOptions::with_seed(0)
    }
}

/// Produces a functionally equivalent, structurally different variant of
/// `circuit`. The primary interface (input/output names and order) is
/// preserved, so locked circuits stay locked with the same key.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn resynthesize(
    circuit: &Circuit,
    options: &ResynthesisOptions,
) -> Result<Circuit, SynthError> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut current = decompose(circuit, &mut rng, options.balanced_trees)?;
    for _ in 0..options.effort.passes() {
        current = local_rewrite(&current, &mut rng, options.effort.rewrite_probability())?;
        current = insert_buffer_pairs(&current, &mut rng, options.effort.buffer_probability())?;
        current = structural_hash(&current)?;
    }
    let cleaned = propagate_constants(&current)?;
    Ok(cleaned)
}

/// Rebuilds `circuit` by passing every gate through `rewrite`, which receives
/// the destination circuit, the gate type, the (already remapped) inputs and
/// the original output-net name, and returns the net now carrying that value.
pub(crate) fn rebuild<F>(circuit: &Circuit, mut rewrite: F) -> Result<Circuit, NetlistError>
where
    F: FnMut(&mut Circuit, GateType, &[NetId], &str) -> Result<NetId, NetlistError>,
{
    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    for gid in topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = rewrite(&mut result, gate.ty, &inputs, circuit.net_name(gate.output))?;
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        result.mark_output(map[&o]);
    }
    Ok(result)
}

/// Adds a gate reusing `name` when still free (to keep net names stable for
/// debugging), falling back to a derived fresh name.
pub(crate) fn add_preferring_name(
    circuit: &mut Circuit,
    ty: GateType,
    name: &str,
    inputs: &[NetId],
) -> Result<NetId, NetlistError> {
    if circuit.find_net(name).is_none() {
        circuit.add_gate(ty, name, inputs)
    } else {
        circuit.add_gate_auto(ty, name, inputs)
    }
}

/// Decomposes multi-input gates into two-input trees with randomised operand
/// order and shape.
fn decompose(
    circuit: &Circuit,
    rng: &mut StdRng,
    prefer_balanced: bool,
) -> Result<Circuit, SynthError> {
    let result = rebuild(circuit, |dest, ty, inputs, name| {
        if inputs.len() <= 2 {
            return add_preferring_name(dest, ty, name, inputs);
        }
        let mut operands = inputs.to_vec();
        operands.shuffle(rng);
        let (base, invert_root) = match ty {
            GateType::And | GateType::Or | GateType::Xor => (ty, false),
            GateType::Nand => (GateType::And, true),
            GateType::Nor => (GateType::Or, true),
            GateType::Xnor => (GateType::Xor, true),
            // Unary/constant gates never have more than one input.
            other => return add_preferring_name(dest, other, name, inputs),
        };
        let balanced = if prefer_balanced {
            !rng.gen_bool(0.2)
        } else {
            rng.gen_bool(0.2)
        };
        let root = if balanced {
            // Balanced tree: pairwise reduce.
            let mut level = operands;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(dest.add_gate_auto(base, "syn_t", pair)?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            level[0]
        } else {
            // Linear chain.
            let mut acc = operands[0];
            for &next in &operands[1..] {
                acc = dest.add_gate_auto(base, "syn_c", &[acc, next])?;
            }
            acc
        };
        if invert_root {
            add_preferring_name(dest, GateType::Not, name, &[root])
        } else {
            // Give the root the original name via a buffer only if needed; a
            // direct rename is not possible because the root may be shared.
            add_preferring_name(dest, GateType::Buf, name, &[root])
        }
    })?;
    Ok(result)
}

/// Randomly rewrites gates through their De Morgan duals and expands XOR
/// gates into AND/OR/NOT networks.
fn local_rewrite(
    circuit: &Circuit,
    rng: &mut StdRng,
    probability: f64,
) -> Result<Circuit, SynthError> {
    let result = rebuild(circuit, |dest, ty, inputs, name| {
        if inputs.len() != 2 || !rng.gen_bool(probability) {
            return add_preferring_name(dest, ty, name, inputs);
        }
        let (a, b) = (inputs[0], inputs[1]);
        match ty {
            GateType::And => {
                // a AND b = NOR(NOT a, NOT b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                add_preferring_name(dest, GateType::Nor, name, &[na, nb])
            }
            GateType::Or => {
                // a OR b = NAND(NOT a, NOT b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                add_preferring_name(dest, GateType::Nand, name, &[na, nb])
            }
            GateType::Nand => {
                // NAND(a, b) = OR(NOT a, NOT b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                add_preferring_name(dest, GateType::Or, name, &[na, nb])
            }
            GateType::Nor => {
                // NOR(a, b) = AND(NOT a, NOT b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                add_preferring_name(dest, GateType::And, name, &[na, nb])
            }
            GateType::Xor => {
                // a XOR b = (a AND NOT b) OR (NOT a AND b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                let t1 = dest.add_gate_auto(GateType::And, "dm_t", &[a, nb])?;
                let t2 = dest.add_gate_auto(GateType::And, "dm_t", &[na, b])?;
                add_preferring_name(dest, GateType::Or, name, &[t1, t2])
            }
            GateType::Xnor => {
                // a XNOR b = (a AND b) OR (NOT a AND NOT b)
                let na = dest.add_gate_auto(GateType::Not, "dm_n", &[a])?;
                let nb = dest.add_gate_auto(GateType::Not, "dm_n", &[b])?;
                let t1 = dest.add_gate_auto(GateType::And, "dm_t", &[a, b])?;
                let t2 = dest.add_gate_auto(GateType::And, "dm_t", &[na, nb])?;
                add_preferring_name(dest, GateType::Or, name, &[t1, t2])
            }
            other => add_preferring_name(dest, other, name, inputs),
        }
    })?;
    Ok(result)
}

/// Inserts double-inverter pairs on randomly chosen gate outputs.
fn insert_buffer_pairs(
    circuit: &Circuit,
    rng: &mut StdRng,
    probability: f64,
) -> Result<Circuit, SynthError> {
    let result = rebuild(circuit, |dest, ty, inputs, name| {
        let out = add_preferring_name(dest, ty, name, inputs)?;
        if rng.gen_bool(probability) {
            let n1 = dest.add_gate_auto(GateType::Not, "buf_p", &[out])?;
            dest.add_gate_auto(GateType::Not, "buf_p", &[n1])
        } else {
            Ok(out)
        }
    })?;
    Ok(result)
}

/// Merges structurally identical gates (same type, same input multiset) and
/// forwards buffers, i.e. classic structural hashing.
fn structural_hash(circuit: &Circuit) -> Result<Circuit, SynthError> {
    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    let mut cache: HashMap<(GateType, Vec<NetId>), NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    for gid in topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        // Buffers are forwarded rather than materialised.
        if gate.ty == GateType::Buf {
            map.insert(gate.output, inputs[0]);
            continue;
        }
        let mut key_inputs = inputs.clone();
        if commutative(gate.ty) {
            key_inputs.sort();
        }
        let key = (gate.ty, key_inputs);
        let out = match cache.get(&key) {
            Some(&existing) => existing,
            None => {
                let out = add_preferring_name(
                    &mut result,
                    gate.ty,
                    circuit.net_name(gate.output),
                    &inputs,
                )?;
                cache.insert(key, out);
                out
            }
        };
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        let mapped = map[&o];
        // A primary output must be a named driven net or input; if buffer
        // forwarding mapped it straight to another net that is fine.
        result.mark_output(mapped);
    }
    Ok(result)
}

fn commutative(ty: GateType) -> bool {
    matches!(
        ty,
        GateType::And
            | GateType::Nand
            | GateType::Or
            | GateType::Nor
            | GateType::Xor
            | GateType::Xnor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_equivalence;
    use kratt_netlist::sim::exhaustively_equivalent;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[0]]).unwrap();
        let g5 = c.add_gate(GateType::Xnor, "g5", &[g4, g2, ins[4]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g5);
        c
    }

    #[test]
    fn resynthesis_preserves_function() {
        let original = sample_circuit();
        for seed in 0..10 {
            let variant = resynthesize(&original, &ResynthesisOptions::with_seed(seed)).unwrap();
            assert!(
                exhaustively_equivalent(&original, &variant).unwrap(),
                "seed {seed} changed the function"
            );
        }
    }

    #[test]
    fn different_seeds_give_structurally_different_netlists() {
        let original = sample_circuit();
        let sizes: Vec<usize> = (0..8)
            .map(|seed| {
                resynthesize(
                    &original,
                    &ResynthesisOptions::with_seed(seed).effort(Effort::High),
                )
                .unwrap()
                .num_gates()
            })
            .collect();
        let distinct: std::collections::BTreeSet<usize> = sizes.iter().copied().collect();
        assert!(distinct.len() > 1, "expected size diversity, got {sizes:?}");
    }

    #[test]
    fn higher_effort_rewrites_more() {
        let original = sample_circuit();
        let low = resynthesize(
            &original,
            &ResynthesisOptions::with_seed(3).effort(Effort::Low),
        )
        .unwrap();
        let high = resynthesize(
            &original,
            &ResynthesisOptions::with_seed(3).effort(Effort::High),
        )
        .unwrap();
        assert!(exhaustively_equivalent(&original, &low).unwrap());
        assert!(exhaustively_equivalent(&original, &high).unwrap());
        assert!(
            high.num_gates() >= low.num_gates(),
            "high effort should not produce a smaller netlist than low here"
        );
    }

    #[test]
    fn interface_is_preserved() {
        let original = sample_circuit();
        let variant = resynthesize(&original, &ResynthesisOptions::with_seed(1)).unwrap();
        assert_eq!(original.num_inputs(), variant.num_inputs());
        assert_eq!(original.num_outputs(), variant.num_outputs());
        for (&a, &b) in original.inputs().iter().zip(variant.inputs()) {
            assert_eq!(original.net_name(a), variant.net_name(b));
        }
    }

    #[test]
    fn structural_hash_merges_duplicates_and_buffers() {
        let mut c = Circuit::new("dups");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x1 = c.add_gate(GateType::And, "x1", &[a, b]).unwrap();
        let x2 = c.add_gate(GateType::And, "x2", &[b, a]).unwrap();
        let buf = c.add_gate(GateType::Buf, "buf", &[x2]).unwrap();
        let y = c.add_gate(GateType::Or, "y", &[x1, buf]).unwrap();
        c.mark_output(y);
        let hashed = structural_hash(&c).unwrap();
        assert!(exhaustively_equivalent(&c, &hashed).unwrap());
        // The two ANDs merge and the buffer disappears: 2 gates remain.
        assert_eq!(hashed.num_gates(), 2);
    }

    #[test]
    fn resynthesis_of_a_locked_circuit_keeps_key_inputs() {
        let mut c = Circuit::new("locked");
        let a = c.add_input("a").unwrap();
        let k0 = c.add_input("keyinput0").unwrap();
        let k1 = c.add_input("keyinput1").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k0]).unwrap();
        let y = c.add_gate(GateType::Xnor, "y", &[x, k1]).unwrap();
        c.mark_output(y);
        let variant =
            resynthesize(&c, &ResynthesisOptions::with_seed(9).effort(Effort::High)).unwrap();
        assert_eq!(variant.key_inputs().len(), 2);
        assert!(check_equivalence(&c, &variant).unwrap().is_equivalent());
    }

    proptest::proptest! {
        /// Every seed/effort/shape combination preserves the function of a
        /// random circuit (checked exhaustively over its 6 inputs).
        #[test]
        fn prop_resynthesis_is_equivalence_preserving(
            seed in 0u64..40,
            effort_index in 0usize..3,
            balanced: bool,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
            let mut c = Circuit::new(format!("rand{seed}"));
            let mut nets: Vec<NetId> =
                (0..6).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not,
            ];
            for g in 0..12 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = match ty {
                    GateType::Not => 1,
                    _ => rng.gen_range(2..5usize),
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[8]);
            let effort = [Effort::Low, Effort::Medium, Effort::High][effort_index];
            let options = ResynthesisOptions { seed, effort, balanced_trees: balanced };
            let variant = resynthesize(&c, &options).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &variant).unwrap());
        }
    }
}
