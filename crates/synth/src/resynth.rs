//! Functionality-preserving randomized resynthesis over the AIG core IR.
//!
//! The pipeline keeps the circuit function intact while changing its
//! structure, mimicking what a commercial synthesis tool does to a locked
//! netlist: the regular, textbook shape of the locking unit disappears and
//! repeated runs with different seeds/efforts produce the structurally
//! different variants needed for the paper's Fig. 6 study.
//!
//! Passes (all routed through [`kratt_netlist::aig::Aig`]):
//!
//! 1. **Lowering** — the netlist becomes a structurally hashed AIG; constant
//!    folding and hashing canonicalise it, and only the output cone survives
//!    (the dangling-node sweep).
//! 2. **Scrambling** — at low/medium effort, shuffle-balance
//!    ([`crate::aig::shuffle_balance`]) re-associates every AND tree with
//!    seeded operand order and seeded shape (balanced vs chain, steered by
//!    the delay-constraint knob); at high effort, cut rewriting
//!    ([`kratt_netlist::Aig::rewrite`]) replaces whole 4-input cones with
//!    NPN-canonical optimal subgraphs, shrinking the netlist while erasing
//!    its original structure.
//! 3. **Styled raising** ([`crate::aig::raise_styled`]) — the AIG returns to
//!    gates with a seeded fraction of nodes expressed through two-level De
//!    Morgan duals instead of plain ANDs.
//! 4. **Buffer-pair insertion** — double inverters are sprinkled on random
//!    nets.
//! 5. **Cleanup** — constant propagation.

use crate::aig::{raise_styled, shuffle_balance, Aig};
use crate::SynthError;
use kratt_netlist::analysis::topological_order;
use kratt_netlist::transform::propagate_constants;
use kratt_netlist::{Circuit, GateType, NetId, NetlistError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Synthesis effort, mirroring the "design effort" knob of a commercial tool.
/// Higher effort raises the two-level rewrite and buffer-insertion
/// probabilities of the styled raising, producing variants that are
/// structurally further from the input netlist. High effort additionally
/// swaps the shuffle-balance scrambler for NPN cut rewriting
/// ([`kratt_netlist::Aig::rewrite`]), which optimises whole 4-input cones
/// instead of merely re-associating the existing trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effort {
    /// Light rewriting.
    Low,
    /// Moderate rewrite probability.
    #[default]
    Medium,
    /// Aggressive rewriting.
    High,
}

impl Effort {
    fn rewrite_probability(self) -> f64 {
        match self {
            Effort::Low => 0.10,
            Effort::Medium => 0.40,
            Effort::High => 0.80,
        }
    }

    fn buffer_probability(self) -> f64 {
        match self {
            Effort::Low => 0.02,
            Effort::Medium => 0.05,
            Effort::High => 0.10,
        }
    }
}

/// Options controlling one resynthesis run.
#[derive(Debug, Clone)]
pub struct ResynthesisOptions {
    /// RNG seed: different seeds give structurally different variants.
    pub seed: u64,
    /// Synthesis effort.
    pub effort: Effort,
    /// Emulates a delay constraint: `true` prefers balanced (fast) trees,
    /// `false` prefers chains (area-biased), mirroring the delay-constraint
    /// sweep used to generate the paper's 50 c6288 variants.
    pub balanced_trees: bool,
}

impl ResynthesisOptions {
    /// Medium-effort options with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        ResynthesisOptions {
            seed,
            effort: Effort::Medium,
            balanced_trees: true,
        }
    }

    /// Sets the effort level.
    pub fn effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the tree-shaping preference (see [`ResynthesisOptions::balanced_trees`]).
    pub fn balanced(mut self, balanced: bool) -> Self {
        self.balanced_trees = balanced;
        self
    }
}

impl Default for ResynthesisOptions {
    fn default() -> Self {
        ResynthesisOptions::with_seed(0)
    }
}

/// Whether resynthesis prints before/after AIG statistics to stderr
/// (`KRATT_RESYNTH_DEBUG=1`), so rewriting gains are observable without a
/// bench run.
fn resynth_debug() -> bool {
    std::env::var("KRATT_RESYNTH_DEBUG").is_ok_and(|v| v == "1")
}

/// Produces a functionally equivalent, structurally different variant of
/// `circuit`. The primary interface (input/output names and order) is
/// preserved, so locked circuits stay locked with the same key.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn resynthesize(
    circuit: &Circuit,
    options: &ResynthesisOptions,
) -> Result<Circuit, SynthError> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let aig = Aig::from_circuit(circuit)?;
    let before = aig.stats();
    // High effort swaps the shuffle-balance scrambler for cut rewriting:
    // NPN-canonical replacement of whole 4-input cones both shrinks the
    // netlist and erases the textbook shape of a locking unit far more
    // thoroughly than re-associating the existing AND trees.
    let aig = match options.effort {
        Effort::High => aig.rewrite(),
        Effort::Low | Effort::Medium => shuffle_balance(&aig, &mut rng, options.balanced_trees),
    };
    if resynth_debug() {
        let after = aig.stats();
        eprintln!(
            "resynthesize[{}] {}: ands {} -> {}, levels {} -> {}, max-fanout {} -> {}",
            match options.effort {
                Effort::High => "rewrite",
                _ => "shuffle-balance",
            },
            circuit.name(),
            before.ands,
            after.ands,
            before.levels,
            after.levels,
            before.max_fanout,
            after.max_fanout,
        );
    }
    // Debug builds verify the restructured AIG still honours the core IR's
    // structural invariants (fanin order, strash consistency) before it is
    // raised — the same contract the `kratt-lint` AIG rules check statically.
    debug_assert!(
        aig.check_invariants().is_empty(),
        "resynthesis produced a corrupt AIG for `{}`: {:?}",
        circuit.name(),
        aig.check_invariants()
    );
    let styled = raise_styled(&aig, &mut rng, options.effort.rewrite_probability())?;
    let buffered = insert_buffer_pairs(&styled, &mut rng, options.effort.buffer_probability())?;
    let cleaned = propagate_constants(&buffered)?;
    Ok(cleaned)
}

/// Rebuilds `circuit` by passing every gate through `rewrite`, which receives
/// the destination circuit, the gate type, the (already remapped) inputs and
/// the original output-net name, and returns the net now carrying that value.
pub(crate) fn rebuild<F>(circuit: &Circuit, mut rewrite: F) -> Result<Circuit, NetlistError>
where
    F: FnMut(&mut Circuit, GateType, &[NetId], &str) -> Result<NetId, NetlistError>,
{
    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    for gid in topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = rewrite(&mut result, gate.ty, &inputs, circuit.net_name(gate.output))?;
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        result.mark_output(map[&o]);
    }
    Ok(result)
}

/// Adds a gate reusing `name` when still free (to keep net names stable for
/// debugging), falling back to a derived fresh name.
pub(crate) fn add_preferring_name(
    circuit: &mut Circuit,
    ty: GateType,
    name: &str,
    inputs: &[NetId],
) -> Result<NetId, NetlistError> {
    if circuit.find_net(name).is_none() {
        circuit.add_gate(ty, name, inputs)
    } else {
        circuit.add_gate_auto(ty, name, inputs)
    }
}

/// Inserts double-inverter pairs on randomly chosen gate outputs.
fn insert_buffer_pairs(
    circuit: &Circuit,
    rng: &mut StdRng,
    probability: f64,
) -> Result<Circuit, SynthError> {
    let result = rebuild(circuit, |dest, ty, inputs, name| {
        if rng.gen_bool(probability) {
            // The final inverter keeps the original net name so the pair is
            // transparent to the interface (primary outputs stay named).
            let out = dest.add_gate_auto(ty, "buf_s", inputs)?;
            let n1 = dest.add_gate_auto(GateType::Not, "buf_p", &[out])?;
            add_preferring_name(dest, GateType::Not, name, &[n1])
        } else {
            add_preferring_name(dest, ty, name, inputs)
        }
    })?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_equivalence;
    use kratt_netlist::sim::exhaustively_equivalent;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[0]]).unwrap();
        let g5 = c.add_gate(GateType::Xnor, "g5", &[g4, g2, ins[4]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g5);
        c
    }

    #[test]
    fn resynthesis_preserves_function() {
        let original = sample_circuit();
        for seed in 0..10 {
            let variant = resynthesize(&original, &ResynthesisOptions::with_seed(seed)).unwrap();
            assert!(
                exhaustively_equivalent(&original, &variant).unwrap(),
                "seed {seed} changed the function"
            );
        }
    }

    #[test]
    fn different_seeds_give_structurally_different_netlists() {
        let original = sample_circuit();
        let sizes: Vec<usize> = (0..8)
            .map(|seed| {
                resynthesize(
                    &original,
                    &ResynthesisOptions::with_seed(seed).effort(Effort::High),
                )
                .unwrap()
                .num_gates()
            })
            .collect();
        let distinct: std::collections::BTreeSet<usize> = sizes.iter().copied().collect();
        assert!(distinct.len() > 1, "expected size diversity, got {sizes:?}");
    }

    #[test]
    fn high_effort_runs_cut_rewriting_and_shrinks_redundant_logic() {
        // A netlist with genuine redundancy: a mux whose branches agree
        // (m = a) feeding an XOR. Shuffle-balance keeps the redundant cone;
        // cut rewriting collapses it, so the relowered high-effort variant
        // must be strictly smaller AIG-side than the low-effort one.
        let mut c = Circuit::new("redundant");
        let s = c.add_input("s").unwrap();
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let ns = c.add_gate(GateType::Not, "ns", &[s]).unwrap();
        let t1 = c.add_gate(GateType::And, "t1", &[s, a]).unwrap();
        let t2 = c.add_gate(GateType::And, "t2", &[ns, a]).unwrap();
        let m = c.add_gate(GateType::Or, "m", &[t1, t2]).unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[m, b]).unwrap();
        c.mark_output(o);

        let low = resynthesize(&c, &ResynthesisOptions::with_seed(3).effort(Effort::Low)).unwrap();
        let high =
            resynthesize(&c, &ResynthesisOptions::with_seed(3).effort(Effort::High)).unwrap();
        assert!(exhaustively_equivalent(&c, &low).unwrap());
        assert!(exhaustively_equivalent(&c, &high).unwrap());
        let low_ands = Aig::from_circuit(&low).unwrap().stats().ands;
        let high_ands = Aig::from_circuit(&high).unwrap().stats().ands;
        assert!(
            high_ands < low_ands,
            "cut rewriting should shrink the redundant cone ({high_ands} vs {low_ands} ands)"
        );
    }

    #[test]
    fn interface_is_preserved() {
        let original = sample_circuit();
        let variant = resynthesize(&original, &ResynthesisOptions::with_seed(1)).unwrap();
        assert_eq!(original.num_inputs(), variant.num_inputs());
        assert_eq!(original.num_outputs(), variant.num_outputs());
        for (&a, &b) in original.inputs().iter().zip(variant.inputs()) {
            assert_eq!(original.net_name(a), variant.net_name(b));
        }
    }

    #[test]
    fn lowering_merges_duplicates_and_buffers() {
        // Structural hashing now happens inside the AIG: duplicated gates
        // (in either operand order) and buffers cost no nodes.
        let mut c = Circuit::new("dups");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x1 = c.add_gate(GateType::And, "x1", &[a, b]).unwrap();
        let x2 = c.add_gate(GateType::And, "x2", &[b, a]).unwrap();
        let buf = c.add_gate(GateType::Buf, "buf", &[x2]).unwrap();
        let y = c.add_gate(GateType::Or, "y", &[x1, buf]).unwrap();
        c.mark_output(y);
        let aig = Aig::from_circuit(&c).unwrap();
        // The two ANDs hash to one node, the buffer is a free edge, and the
        // OR of a node with itself folds away: one AND node remains.
        assert_eq!(aig.num_ands(), 1);
        assert!(exhaustively_equivalent(&c, &aig.to_circuit().unwrap()).unwrap());
    }

    #[test]
    fn resynthesis_is_deterministic_per_seed() {
        let original = sample_circuit();
        let options = ResynthesisOptions::with_seed(11).effort(Effort::High);
        let first = resynthesize(&original, &options).unwrap();
        let second = resynthesize(&original, &options).unwrap();
        assert_eq!(
            kratt_netlist::bench::write(&first).unwrap(),
            kratt_netlist::bench::write(&second).unwrap(),
            "same seed must reproduce the identical netlist"
        );
    }

    #[test]
    fn resynthesis_of_a_locked_circuit_keeps_key_inputs() {
        let mut c = Circuit::new("locked");
        let a = c.add_input("a").unwrap();
        let k0 = c.add_input("keyinput0").unwrap();
        let k1 = c.add_input("keyinput1").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k0]).unwrap();
        let y = c.add_gate(GateType::Xnor, "y", &[x, k1]).unwrap();
        c.mark_output(y);
        let variant =
            resynthesize(&c, &ResynthesisOptions::with_seed(9).effort(Effort::High)).unwrap();
        assert_eq!(variant.key_inputs().len(), 2);
        assert!(check_equivalence(&c, &variant).unwrap().is_equivalent());
    }

    proptest::proptest! {
        /// Every seed/effort/shape combination preserves the function of a
        /// random circuit (checked exhaustively over its 6 inputs).
        #[test]
        fn prop_resynthesis_is_equivalence_preserving(
            seed in 0u64..40,
            effort_index in 0usize..3,
            balanced: bool,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
            let mut c = Circuit::new(format!("rand{seed}"));
            let mut nets: Vec<NetId> =
                (0..6).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not,
            ];
            for g in 0..12 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = match ty {
                    GateType::Not => 1,
                    _ => rng.gen_range(2..5usize),
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[8]);
            let effort = [Effort::Low, Effort::Medium, Effort::High][effort_index];
            let options = ResynthesisOptions { seed, effort, balanced_trees: balanced };
            let variant = resynthesize(&c, &options).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &variant).unwrap());
        }
    }
}
