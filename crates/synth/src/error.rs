//! Error type for synthesis operations.

use kratt_netlist::NetlistError;
use std::fmt;

/// Errors produced by resynthesis or equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The two circuits handed to the equivalence checker have different
    /// interfaces (input names or output counts).
    InterfaceMismatch(String),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InterfaceMismatch(msg) => write!(f, "interface mismatch: {msg}"),
            SynthError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SynthError::InterfaceMismatch("outputs differ".into());
        assert!(e.to_string().contains("outputs differ"));
        let e: SynthError = NetlistError::UnknownNet("n".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
