//! Seeded rewrite passes over the [`Aig`] core IR, plus the re-export of the
//! IR itself.
//!
//! The AIG data structure (structural hashing, constant folding, complemented
//! edges, `Circuit ↔ Aig` lowering/raising) lives in
//! [`kratt_netlist::aig`] so the SAT layer can encode it directly; this
//! module adds the *synthesis* passes on top:
//!
//! * [`shuffle_balance`] — rebuilds every AND tree with seeded operand order
//!   and seeded shape (balanced or chain), the AIG replacement of the old
//!   gate-level `decompose` pass. Rebuilding through the hash also sweeps
//!   dangling nodes.
//! * [`raise_styled`] — raises the AIG to a gate-level [`Circuit`] while
//!   expressing a seeded fraction of nodes through their two-level De Morgan
//!   duals (`NOR` of inverters, inverted `NAND`), the AIG replacement of the
//!   old `local_rewrite` pass.
//!
//! Both passes drive [`resynthesize`](crate::resynthesize); they take an
//! explicit RNG so the whole pipeline stays deterministic per seed.

pub use kratt_netlist::aig::{Aig, AigLit};

use crate::resynth::add_preferring_name;
use kratt_netlist::{Circuit, GateType, NetId, NetlistError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Rebuilds the AIG with every maximal AND tree re-associated: operand order
/// is shuffled by `rng` and the shape is drawn per tree — mostly balanced
/// when `prefer_balanced` (the delay-constrained flavour of a commercial
/// run), mostly chains otherwise (the area-biased flavour). Only the cone of
/// the outputs is rebuilt, so dangling nodes are swept as a side effect.
pub fn shuffle_balance(aig: &Aig, rng: &mut StdRng, prefer_balanced: bool) -> Aig {
    let cone = aig.cone(aig.outputs());
    let refs = aig.reference_counts(&cone);

    // A plain, single-fanout AND feeding another in-cone AND is an interior
    // tree node: its conjunction folds into the parent's leaf set.
    let n = aig.num_nodes();
    let mut interior = vec![false; n];
    for node in 1..n as u32 {
        if !cone[node as usize] || !aig.is_and(node) {
            continue;
        }
        let (f0, f1) = aig.fanins(node);
        for f in [f0, f1] {
            if !f.is_complemented() && aig.is_and(f.node()) && refs[f.node() as usize] == 1 {
                interior[f.node() as usize] = true;
            }
        }
    }

    let mut out = Aig::new(aig.name());
    let mut map: Vec<AigLit> = vec![AigLit::FALSE; n];
    for (&node, name) in aig.input_nodes().iter().zip(aig.input_names()) {
        map[node as usize] = out.add_input(name);
    }
    for node in 1..n as u32 {
        if !cone[node as usize] || !aig.is_and(node) || interior[node as usize] {
            continue;
        }
        // Collect the tree's leaves (descending through interior nodes only)
        // and translate them into the rebuilt AIG.
        let mut leaves: Vec<AigLit> = Vec::new();
        let mut stack = vec![node];
        while let Some(m) = stack.pop() {
            let (f0, f1) = aig.fanins(m);
            for f in [f0, f1] {
                if !f.is_complemented() && interior[f.node() as usize] {
                    stack.push(f.node());
                } else {
                    leaves.push(map[f.node() as usize].when(!f.is_complemented()));
                }
            }
        }
        leaves.shuffle(rng);
        let balanced = if prefer_balanced {
            !rng.gen_bool(0.2)
        } else {
            rng.gen_bool(0.2)
        };
        let rebuilt = if balanced {
            out.and_many(&leaves)
        } else {
            let mut acc = leaves[0];
            for &next in &leaves[1..] {
                acc = out.and(acc, next);
            }
            acc
        };
        map[node as usize] = rebuilt;
    }
    for (&lit, name) in aig.outputs().iter().zip(aig.output_names()) {
        out.add_output(name, map[lit.node() as usize].when(!lit.is_complemented()));
    }
    out
}

/// Raises the AIG to a gate-level circuit, expressing each AND node through
/// a randomly drawn style: the plain `AND`, its De Morgan dual
/// (`NOR` of the inverted fanins) or an inverted `NAND` — the two-level
/// rewrite of the resynthesis pipeline. `rewrite_probability` is the chance
/// a node takes a non-plain style. The primary interface (input names and
/// order, output names and order) is preserved.
///
/// # Errors
///
/// Propagates circuit-construction errors (which cannot occur for a
/// well-formed AIG).
pub fn raise_styled(
    aig: &Aig,
    rng: &mut StdRng,
    rewrite_probability: f64,
) -> Result<Circuit, NetlistError> {
    let n = aig.num_nodes();
    let mut circuit = Circuit::new(aig.name());
    let mut plain: Vec<Option<NetId>> = vec![None; n];
    let mut negated: Vec<Option<NetId>> = vec![None; n];
    for (&node, name) in aig.input_nodes().iter().zip(aig.input_names()) {
        plain[node as usize] = Some(circuit.add_input(name)?);
    }

    fn net_of(
        circuit: &mut Circuit,
        plain: &mut [Option<NetId>],
        negated: &mut [Option<NetId>],
        lit: AigLit,
    ) -> Result<NetId, NetlistError> {
        let node = lit.node() as usize;
        if node == 0 {
            let (cache, ty) = if lit.is_complemented() {
                (&mut negated[0], GateType::Const1)
            } else {
                (&mut plain[0], GateType::Const0)
            };
            return match *cache {
                Some(net) => Ok(net),
                None => {
                    let net = circuit.add_gate_auto(ty, "syn_k", &[])?;
                    *cache = Some(net);
                    Ok(net)
                }
            };
        }
        if !lit.is_complemented() {
            return Ok(plain[node].expect("fanins precede their node"));
        }
        if let Some(net) = negated[node] {
            return Ok(net);
        }
        let base = plain[node].expect("fanins precede their node");
        let net = circuit.add_gate_auto(GateType::Not, "syn_n", &[base])?;
        negated[node] = Some(net);
        Ok(net)
    }

    let cone = aig.cone(aig.outputs());
    for node in 1..n as u32 {
        if !cone[node as usize] || !aig.is_and(node) {
            continue;
        }
        let (f0, f1) = aig.fanins(node);
        let style = if rng.gen_bool(rewrite_probability) {
            1 + rng.gen_range(0..2u8)
        } else {
            0
        };
        let net = match style {
            // a AND b, complemented fanins through inverters.
            0 => {
                let a = net_of(&mut circuit, &mut plain, &mut negated, f0)?;
                let b = net_of(&mut circuit, &mut plain, &mut negated, f1)?;
                circuit.add_gate_auto(GateType::And, "syn_a", &[a, b])?
            }
            // De Morgan: a AND b = NOR(NOT a, NOT b).
            1 => {
                let na = net_of(&mut circuit, &mut plain, &mut negated, f0.complement())?;
                let nb = net_of(&mut circuit, &mut plain, &mut negated, f1.complement())?;
                circuit.add_gate_auto(GateType::Nor, "syn_r", &[na, nb])?
            }
            // a AND b = NOT(NAND(a, b)).
            _ => {
                let a = net_of(&mut circuit, &mut plain, &mut negated, f0)?;
                let b = net_of(&mut circuit, &mut plain, &mut negated, f1)?;
                let nand = circuit.add_gate_auto(GateType::Nand, "syn_d", &[a, b])?;
                circuit.add_gate_auto(GateType::Not, "syn_dn", &[nand])?
            }
        };
        plain[node as usize] = Some(net);
    }

    for (&lit, name) in aig.outputs().iter().zip(aig.output_names()) {
        let net = if lit.is_constant() {
            let ty = if lit.is_complemented() {
                GateType::Const1
            } else {
                GateType::Const0
            };
            add_preferring_name(&mut circuit, ty, name, &[])?
        } else {
            let base = plain[lit.node() as usize].expect("cone node materialised");
            let ty = if lit.is_complemented() {
                GateType::Not
            } else {
                GateType::Buf
            };
            add_preferring_name(&mut circuit, ty, name, &[base])?
        };
        circuit.mark_output(net);
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::exhaustively_equivalent;
    use rand::SeedableRng;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[0]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g4);
        c
    }

    #[test]
    fn shuffle_balance_preserves_function_and_interface() {
        let c = sample_circuit();
        let aig = Aig::from_circuit(&c).unwrap();
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let balanced = shuffle_balance(&aig, &mut rng, seed % 2 == 0);
            assert_eq!(balanced.num_inputs(), aig.num_inputs());
            assert_eq!(balanced.num_outputs(), aig.num_outputs());
            let raised = balanced.to_circuit().unwrap();
            assert!(
                exhaustively_equivalent(&c, &raised).unwrap(),
                "seed {seed} changed the function"
            );
        }
    }

    #[test]
    fn raise_styled_preserves_function_at_every_probability() {
        let c = sample_circuit();
        let aig = Aig::from_circuit(&c).unwrap();
        for (seed, probability) in [(1u64, 0.0), (2, 0.5), (3, 1.0)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let raised = raise_styled(&aig, &mut rng, probability).unwrap();
            assert!(
                exhaustively_equivalent(&c, &raised).unwrap(),
                "p {probability}"
            );
            assert_eq!(raised.num_inputs(), c.num_inputs());
        }
    }

    #[test]
    fn higher_style_probability_yields_more_gates() {
        let c = sample_circuit();
        let aig = Aig::from_circuit(&c).unwrap();
        let lean = raise_styled(&aig, &mut StdRng::seed_from_u64(7), 0.0)
            .unwrap()
            .num_gates();
        let rich = raise_styled(&aig, &mut StdRng::seed_from_u64(7), 1.0)
            .unwrap()
            .num_gates();
        assert!(rich > lean, "{rich} vs {lean}");
    }
}
