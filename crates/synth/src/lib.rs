//! Logic-synthesis substrate: functionality-preserving resynthesis and
//! SAT-based equivalence checking.
//!
//! The paper uses Cadence Genus for two things: (1) synthesising the locked
//! RTL so the regular structure of the locking unit is broken before the
//! attacks run, and (2) producing 50 functionally-equivalent but structurally
//! different variants of the locked c6288 circuit for the resynthesis study
//! of Fig. 6. This crate is the reproduction's stand-in, built on the AIG
//! core IR ([`aig`], re-exporting [`kratt_netlist::aig`] plus the seeded
//! rewrite passes): a seeded, effort-controlled pipeline — lower,
//! shuffle-balance, styled raising — that preserves the circuit function
//! while scrambling its structure, plus a fraig-style equivalence pipeline
//! ([`equivalence`]: shared-AIG hashing, packed-simulation candidate
//! classes, incremental SAT sweeping, per-output miters) used to validate
//! every transformation. The [`passes`] module adds the two
//! remaining things a commercial flow does to a netlist — SAT sweeping
//! (merging provably equivalent logic) and technology mapping onto a small
//! standard-cell library.
//!
//! # Example
//!
//! ```
//! use kratt_netlist::{Circuit, GateType};
//! use kratt_synth::{resynthesize, ResynthesisOptions, check_equivalence, EquivalenceResult};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let x = c.add_gate(GateType::Nand, "x", &[a, b])?;
//! let y = c.add_gate(GateType::Xor, "y", &[x, a])?;
//! c.mark_output(y);
//!
//! let variant = resynthesize(&c, &ResynthesisOptions::with_seed(7))?;
//! assert!(matches!(check_equivalence(&c, &variant)?, EquivalenceResult::Equivalent));
//! # Ok(())
//! # }
//! ```

pub mod aig;
pub mod equivalence;
pub mod error;
pub mod passes;
pub mod resynth;

pub use aig::{Aig, AigLit};
pub use equivalence::{
    check_equivalence, check_equivalence_gate_level, check_equivalence_with_budget,
    check_equivalence_with_stats, check_equivalence_with_stats_workers, fraig_workers_from_env,
    EquivalenceResult, FraigStats, FRAIG_WORKERS_ENV,
};
pub use error::SynthError;
pub use passes::{map_to_cell_library, sat_sweep, CellLibrary, SatSweepOptions};
pub use resynth::{resynthesize, Effort, ResynthesisOptions};
