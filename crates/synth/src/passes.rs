//! Optimisation and mapping passes that complement the randomized
//! resynthesis: SAT sweeping and technology mapping onto a small cell
//! library.
//!
//! Commercial synthesis (the Cadence Genus runs the paper uses to harden its
//! locked netlists) does more than local restructuring: it merges
//! functionally equivalent logic and maps the result onto a standard-cell
//! library. These passes reproduce those two effects so that the attack
//! evaluation can also be run on netlists that look like mapped silicon
//! rather than like the textbook locking constructions:
//!
//! * [`sat_sweep`] — proves pairs of internal nets equivalent with the CDCL
//!   solver (candidate pairs come from random-simulation signatures) and
//!   merges them.
//! * [`map_to_cell_library`] — rewrites every gate into a chosen two-level
//!   cell library (NAND2+INV or NOR2+INV), the classical technology-mapping
//!   target.
//!
//! Both passes preserve the primary interface and the circuit function, and
//! compose with [`resynthesize`](crate::resynthesize):
//!
//! ```
//! use kratt_netlist::{Circuit, GateType};
//! use kratt_synth::passes::{map_to_cell_library, sat_sweep, CellLibrary, SatSweepOptions};
//! use kratt_synth::{resynthesize, ResynthesisOptions};
//!
//! # fn main() -> Result<(), kratt_synth::SynthError> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let x = c.add_gate(GateType::Xor, "x", &[a, b])?;
//! c.mark_output(x);
//! let variant = resynthesize(&c, &ResynthesisOptions::with_seed(7))?;
//! let swept = sat_sweep(&variant, &SatSweepOptions::default())?;
//! let mapped = map_to_cell_library(&swept, CellLibrary::Nand2Inv)?;
//! assert!(kratt_netlist::sim::exhaustively_equivalent(&c, &mapped)?);
//! # Ok(())
//! # }
//! ```

use crate::resynth::{add_preferring_name, rebuild};
use crate::SynthError;
use kratt_netlist::analysis::topological_order;
use kratt_netlist::sim::Simulator;
use kratt_netlist::transform::{propagate_constants, prune_dangling};
use kratt_netlist::{Circuit, GateType, NetId};
use kratt_sat::{Encoder, Lit, Solver, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Budget and seeding of one [`sat_sweep`] run.
#[derive(Debug, Clone)]
pub struct SatSweepOptions {
    /// Rounds of 64-pattern random simulation used to build candidate
    /// signatures (more rounds ⇒ fewer false candidates ⇒ fewer SAT calls).
    pub simulation_rounds: usize,
    /// Maximum number of equivalence SAT queries.
    pub max_sat_checks: usize,
    /// Conflict budget per SAT query; an inconclusive query leaves the pair
    /// unmerged (sound but incomplete).
    pub sat_conflict_limit: Option<u64>,
    /// Seed of the signature simulation.
    pub seed: u64,
}

impl Default for SatSweepOptions {
    fn default() -> Self {
        SatSweepOptions {
            simulation_rounds: 4,
            max_sat_checks: 20_000,
            sat_conflict_limit: Some(50_000),
            seed: 0x5eed,
        }
    }
}

/// Statistics of one [`sat_sweep`] run, returned alongside the swept circuit
/// by [`sat_sweep_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatSweepStats {
    /// Candidate pairs handed to the SAT solver.
    pub sat_checks: usize,
    /// Nets proved equivalent and merged.
    pub merged_nets: usize,
}

/// Merges functionally equivalent internal nets, proven by the CDCL solver.
///
/// Candidate pairs are nets with identical random-simulation signatures; each
/// candidate is confirmed with an equivalence SAT query before its consumers
/// are rewired. Primary inputs are never merged away and the primary
/// interface is preserved.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn sat_sweep(circuit: &Circuit, options: &SatSweepOptions) -> Result<Circuit, SynthError> {
    sat_sweep_with_stats(circuit, options).map(|(c, _)| c)
}

/// [`sat_sweep`], additionally reporting how much work was done.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn sat_sweep_with_stats(
    circuit: &Circuit,
    options: &SatSweepOptions,
) -> Result<(Circuit, SatSweepStats), SynthError> {
    let mut stats = SatSweepStats::default();
    let order = topological_order(circuit)?;

    // --- Signatures from bit-parallel random simulation. -------------------
    let simulator = Simulator::new(circuit)?;
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); circuit.num_nets()];
    for _ in 0..options.simulation_rounds.max(1) {
        let inputs: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let values = simulator.run_words_full(&inputs)?;
        for net in circuit.nets() {
            signatures[net.index()].push(values[net.index()]);
        }
    }

    // --- Candidate classes: gate outputs grouped by signature. -------------
    let mut class_of: HashMap<Vec<u64>, Vec<NetId>> = HashMap::new();
    for &gid in &order {
        let out = circuit.gate(gid).output;
        class_of
            .entry(signatures[out.index()].clone())
            .or_default()
            .push(out);
    }

    // --- Confirm candidates with SAT and record representatives. ----------
    let mut solver = Solver::with_config(SolverConfig {
        conflict_limit: options.sat_conflict_limit,
        ..Default::default()
    });
    let encoder = Encoder::new();
    let encoding = encoder.encode(&mut solver, circuit, &HashMap::new());
    // Topological position of every gate output, so the earliest net of a
    // class becomes the representative.
    let position: HashMap<NetId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &gid)| (circuit.gate(gid).output, i))
        .collect();

    let mut replace: HashMap<NetId, NetId> = HashMap::new();
    for (_, mut members) in class_of {
        if members.len() < 2 {
            continue;
        }
        members.sort_by_key(|n| position[n]);
        let representative = members[0];
        for &candidate in &members[1..] {
            if stats.sat_checks >= options.max_sat_checks {
                break;
            }
            stats.sat_checks += 1;
            let diff = solver.new_var();
            encoder.encode_xor2(
                &mut solver,
                diff,
                encoding.var_of(representative),
                encoding.var_of(candidate),
            );
            if solver
                .solve_with_assumptions(&[Lit::positive(diff)])
                .is_unsat()
            {
                replace.insert(candidate, representative);
                stats.merged_nets += 1;
            }
        }
    }

    // --- Rebuild with merged nets forwarded. -------------------------------
    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    for &gid in &order {
        let gate = circuit.gate(gid);
        if let Some(&representative) = replace.get(&gate.output) {
            // Forward to the representative (already materialised, since it
            // precedes this gate topologically).
            let mapped = map[&representative];
            map.insert(gate.output, mapped);
            continue;
        }
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out =
            add_preferring_name(&mut result, gate.ty, circuit.net_name(gate.output), &inputs)?;
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        result.mark_output(map[&o]);
    }
    let cleaned = prune_dangling(&propagate_constants(&result)?)?;
    Ok((cleaned, stats))
}

/// A two-cell standard-cell library to map onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellLibrary {
    /// Two-input NAND gates plus inverters.
    Nand2Inv,
    /// Two-input NOR gates plus inverters.
    Nor2Inv,
}

impl CellLibrary {
    /// Whether a gate of the given type and arity is a cell of this library
    /// (constants are always allowed as tie cells).
    pub fn contains(self, ty: GateType, arity: usize) -> bool {
        match ty {
            GateType::Const0 | GateType::Const1 => true,
            GateType::Not => arity == 1,
            GateType::Nand => self == CellLibrary::Nand2Inv && arity == 2,
            GateType::Nor => self == CellLibrary::Nor2Inv && arity == 2,
            _ => false,
        }
    }
}

/// Maps every gate onto the chosen cell library (technology mapping).
///
/// Multi-input gates are first decomposed into two-input chains, then each
/// two-input function is expressed with the library's universal cell and
/// inverters. The primary interface and the function are preserved.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn map_to_cell_library(circuit: &Circuit, library: CellLibrary) -> Result<Circuit, SynthError> {
    let mapped = rebuild(circuit, |dest, ty, inputs, name| {
        match ty {
            GateType::Const0 | GateType::Const1 => add_preferring_name(dest, ty, name, inputs),
            // Buffers carry no logic; their value is forwarded.
            GateType::Buf => Ok(inputs[0]),
            GateType::Not => add_preferring_name(dest, GateType::Not, name, inputs),
            GateType::And | GateType::Nand | GateType::Or | GateType::Nor => {
                let invert = matches!(ty, GateType::Nand | GateType::Nor);
                let base = match ty {
                    GateType::And | GateType::Nand => Binary::And,
                    _ => Binary::Or,
                };
                let mut acc = inputs[0];
                for &next in &inputs[1..] {
                    acc = binary(dest, library, base, acc, next)?;
                }
                if invert {
                    inv_raw(dest, acc)
                } else {
                    Ok(acc)
                }
            }
            GateType::Xor | GateType::Xnor => {
                let mut acc = inputs[0];
                for &next in &inputs[1..] {
                    acc = binary(dest, library, Binary::Xor, acc, next)?;
                }
                if ty == GateType::Xnor {
                    inv_raw(dest, acc)
                } else {
                    Ok(acc)
                }
            }
        }
    })?;
    Ok(propagate_constants(&mapped)?)
}

/// The two-input functions the mapper builds from library cells.
#[derive(Debug, Clone, Copy)]
enum Binary {
    And,
    Or,
    Xor,
}

/// An inverter cell.
fn inv_raw(dest: &mut Circuit, a: NetId) -> Result<NetId, kratt_netlist::NetlistError> {
    dest.add_gate_auto(GateType::Not, "map_inv", &[a])
}

fn nand2(dest: &mut Circuit, a: NetId, b: NetId) -> Result<NetId, kratt_netlist::NetlistError> {
    dest.add_gate_auto(GateType::Nand, "map_nand", &[a, b])
}

fn nor2(dest: &mut Circuit, a: NetId, b: NetId) -> Result<NetId, kratt_netlist::NetlistError> {
    dest.add_gate_auto(GateType::Nor, "map_nor", &[a, b])
}

/// Builds a two-input AND/OR/XOR from the library's cells.
fn binary(
    dest: &mut Circuit,
    library: CellLibrary,
    function: Binary,
    a: NetId,
    b: NetId,
) -> Result<NetId, kratt_netlist::NetlistError> {
    match (library, function) {
        (CellLibrary::Nand2Inv, Binary::And) => {
            let n = nand2(dest, a, b)?;
            inv_raw(dest, n)
        }
        (CellLibrary::Nand2Inv, Binary::Or) => {
            let na = inv_raw(dest, a)?;
            let nb = inv_raw(dest, b)?;
            nand2(dest, na, nb)
        }
        (CellLibrary::Nand2Inv, Binary::Xor) => {
            // XOR(a, b) = NAND(NAND(a, n), NAND(b, n)) with n = NAND(a, b).
            let n = nand2(dest, a, b)?;
            let left = nand2(dest, a, n)?;
            let right = nand2(dest, b, n)?;
            nand2(dest, left, right)
        }
        (CellLibrary::Nor2Inv, Binary::Or) => {
            let n = nor2(dest, a, b)?;
            inv_raw(dest, n)
        }
        (CellLibrary::Nor2Inv, Binary::And) => {
            let na = inv_raw(dest, a)?;
            let nb = inv_raw(dest, b)?;
            nor2(dest, na, nb)
        }
        (CellLibrary::Nor2Inv, Binary::Xor) => {
            // XNOR(a, b) = NOR(NOR(a, n), NOR(b, n)) with n = NOR(a, b);
            // XOR is its inversion.
            let n = nor2(dest, a, b)?;
            let left = nor2(dest, a, n)?;
            let right = nor2(dest, b, n)?;
            let xnor = nor2(dest, left, right)?;
            inv_raw(dest, xnor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::exhaustively_equivalent;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[0]]).unwrap();
        let g5 = c.add_gate(GateType::Xnor, "g5", &[g4, g2, ins[4]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g5);
        c
    }

    #[test]
    fn sat_sweep_merges_duplicated_logic() {
        // Build the same AND-OR cone twice with different structure; the
        // sweep must merge the duplicates and shrink the netlist.
        let mut c = Circuit::new("dup");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let and1 = c.add_gate(GateType::And, "and1", &[a, b]).unwrap();
        let or1 = c.add_gate(GateType::Or, "or1", &[and1, d]).unwrap();
        // Same function, built through De Morgan.
        let na = c.add_gate(GateType::Not, "na", &[a]).unwrap();
        let nb = c.add_gate(GateType::Not, "nb", &[b]).unwrap();
        let nor1 = c.add_gate(GateType::Nor, "nor1", &[na, nb]).unwrap();
        let or2 = c.add_gate(GateType::Or, "or2", &[nor1, d]).unwrap();
        let out = c.add_gate(GateType::And, "out", &[or1, or2]).unwrap();
        c.mark_output(out);

        let (swept, stats) = sat_sweep_with_stats(&c, &SatSweepOptions::default()).unwrap();
        assert!(exhaustively_equivalent(&c, &swept).unwrap());
        assert!(stats.merged_nets >= 1, "the duplicated OR cone must merge");
        assert!(swept.num_gates() < c.num_gates());
    }

    #[test]
    fn sat_sweep_respects_its_sat_budget() {
        let c = sample_circuit();
        let options = SatSweepOptions {
            max_sat_checks: 0,
            ..Default::default()
        };
        let (swept, stats) = sat_sweep_with_stats(&c, &options).unwrap();
        assert_eq!(stats.sat_checks, 0);
        assert_eq!(stats.merged_nets, 0);
        assert!(exhaustively_equivalent(&c, &swept).unwrap());
    }

    #[test]
    fn sat_sweep_preserves_the_interface() {
        let c = sample_circuit();
        let swept = sat_sweep(&c, &SatSweepOptions::default()).unwrap();
        assert_eq!(c.num_inputs(), swept.num_inputs());
        assert_eq!(c.num_outputs(), swept.num_outputs());
        for (&a, &b) in c.inputs().iter().zip(swept.inputs()) {
            assert_eq!(c.net_name(a), swept.net_name(b));
        }
    }

    #[test]
    fn mapping_uses_only_library_cells() {
        let c = sample_circuit();
        for library in [CellLibrary::Nand2Inv, CellLibrary::Nor2Inv] {
            let mapped = map_to_cell_library(&c, library).unwrap();
            assert!(exhaustively_equivalent(&c, &mapped).unwrap(), "{library:?}");
            for (_, gate) in mapped.gates() {
                assert!(
                    library.contains(gate.ty, gate.inputs.len()),
                    "{library:?} netlist contains a foreign cell {:?}/{}",
                    gate.ty,
                    gate.inputs.len()
                );
            }
        }
    }

    #[test]
    fn mapping_preserves_key_inputs_of_a_locked_netlist() {
        let mut c = Circuit::new("locked");
        let a = c.add_input("a").unwrap();
        let k0 = c.add_input("keyinput0").unwrap();
        let k1 = c.add_input("keyinput1").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k0]).unwrap();
        let y = c.add_gate(GateType::Xnor, "y", &[x, k1]).unwrap();
        c.mark_output(y);
        let mapped = map_to_cell_library(&c, CellLibrary::Nand2Inv).unwrap();
        assert_eq!(mapped.key_inputs().len(), 2);
        assert!(exhaustively_equivalent(&c, &mapped).unwrap());
    }

    #[test]
    fn library_membership_rules() {
        assert!(CellLibrary::Nand2Inv.contains(GateType::Nand, 2));
        assert!(!CellLibrary::Nand2Inv.contains(GateType::Nand, 3));
        assert!(!CellLibrary::Nand2Inv.contains(GateType::Nor, 2));
        assert!(CellLibrary::Nor2Inv.contains(GateType::Nor, 2));
        assert!(CellLibrary::Nand2Inv.contains(GateType::Not, 1));
        assert!(CellLibrary::Nor2Inv.contains(GateType::Const1, 0));
        assert!(!CellLibrary::Nor2Inv.contains(GateType::Xor, 2));
    }

    proptest::proptest! {
        /// Sweeping and mapping random circuits (in either order) preserves
        /// the function.
        #[test]
        fn prop_passes_preserve_function(seed in 0u64..30) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97));
            let mut c = Circuit::new(format!("rand{seed}"));
            let mut nets: Vec<NetId> =
                (0..5).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
            ];
            for g in 0..14 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = match ty {
                    GateType::Not | GateType::Buf => 1,
                    _ => rng.gen_range(2..4usize),
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[7]);

            let swept = sat_sweep(&c, &SatSweepOptions { seed, ..Default::default() }).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &swept).unwrap());
            let library = if seed % 2 == 0 { CellLibrary::Nand2Inv } else { CellLibrary::Nor2Inv };
            let mapped = map_to_cell_library(&swept, library).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &mapped).unwrap());
        }
    }
}
