//! The Boolean gate library of the ISCAS `.bench` format.

use crate::NetlistError;
use std::fmt;

/// A combinational gate type.
///
/// Gate evaluation follows the usual conventions of the ISCAS `.bench`
/// format: `And`, `Nand`, `Or`, `Nor`, `Xor` and `Xnor` accept one or more
/// inputs (multi-input XOR/XNOR are parity / inverted parity), `Not` and
/// `Buf` are strictly unary, and `Const0` / `Const1` take no inputs at all.
///
/// ```
/// use kratt_netlist::GateType;
/// assert_eq!(GateType::Nand.eval(&[true, true]), false);
/// assert_eq!(GateType::Xor.eval(&[true, true, true]), true);
/// assert_eq!(GateType::Const1.eval(&[]), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateType {
    /// Logical conjunction of all inputs.
    And,
    /// Inverted conjunction.
    Nand,
    /// Logical disjunction of all inputs.
    Or,
    /// Inverted disjunction.
    Nor,
    /// Parity (odd number of true inputs).
    Xor,
    /// Inverted parity.
    Xnor,
    /// Inversion of the single input.
    Not,
    /// Identity of the single input.
    Buf,
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
}

impl GateType {
    /// All gate types, useful for exhaustive tests and random generation.
    pub const ALL: [GateType; 10] = [
        GateType::And,
        GateType::Nand,
        GateType::Or,
        GateType::Nor,
        GateType::Xor,
        GateType::Xnor,
        GateType::Not,
        GateType::Buf,
        GateType::Const0,
        GateType::Const1,
    ];

    /// The canonical upper-case `.bench` keyword for this gate.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateType::And => "AND",
            GateType::Nand => "NAND",
            GateType::Or => "OR",
            GateType::Nor => "NOR",
            GateType::Xor => "XOR",
            GateType::Xnor => "XNOR",
            GateType::Not => "NOT",
            GateType::Buf => "BUF",
            GateType::Const0 => "CONST0",
            GateType::Const1 => "CONST1",
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive; accepts the `BUFF`
    /// spelling used by some ISCAS distributions).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] with line number 0 if the keyword is
    /// not a recognised combinational gate (callers fix up the line number).
    pub fn from_bench_keyword(word: &str) -> Result<Self, NetlistError> {
        let upper = word.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "AND" => GateType::And,
            "NAND" => GateType::Nand,
            "OR" => GateType::Or,
            "NOR" => GateType::Nor,
            "XOR" => GateType::Xor,
            "XNOR" => GateType::Xnor,
            "NOT" | "INV" => GateType::Not,
            "BUF" | "BUFF" => GateType::Buf,
            "CONST0" | "GND" => GateType::Const0,
            "CONST1" | "VDD" => GateType::Const1,
            _ => {
                return Err(NetlistError::Parse {
                    line: 0,
                    message: format!("unknown gate keyword `{word}`"),
                })
            }
        })
    }

    /// Whether `arity` inputs is legal for this gate type.
    pub fn arity_ok(self, arity: usize) -> bool {
        match self {
            GateType::And
            | GateType::Nand
            | GateType::Or
            | GateType::Nor
            | GateType::Xor
            | GateType::Xnor => arity >= 1,
            GateType::Not | GateType::Buf => arity == 1,
            GateType::Const0 | GateType::Const1 => arity == 0,
        }
    }

    /// Evaluates the gate on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs violates [`GateType::arity_ok`]; circuit
    /// construction enforces arities so this only triggers on misuse of the
    /// raw gate API.
    pub fn eval(self, inputs: &[bool]) -> bool {
        debug_assert!(self.arity_ok(inputs.len()), "bad arity for {self:?}");
        match self {
            GateType::And => inputs.iter().all(|&b| b),
            GateType::Nand => !inputs.iter().all(|&b| b),
            GateType::Or => inputs.iter().any(|&b| b),
            GateType::Nor => !inputs.iter().any(|&b| b),
            GateType::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateType::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
            GateType::Not => !inputs[0],
            GateType::Buf => inputs[0],
            GateType::Const0 => false,
            GateType::Const1 => true,
        }
    }

    /// Evaluates the gate on 64 patterns at once (bit-parallel simulation).
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateType::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateType::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateType::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateType::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateType::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateType::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateType::Not => !inputs[0],
            GateType::Buf => inputs[0],
            GateType::Const0 => 0,
            GateType::Const1 => !0u64,
        }
    }

    /// The gate computing the complement of this gate, if it is in the
    /// library (e.g. `And` ↔ `Nand`). Constants also have complements.
    pub fn complement(self) -> GateType {
        match self {
            GateType::And => GateType::Nand,
            GateType::Nand => GateType::And,
            GateType::Or => GateType::Nor,
            GateType::Nor => GateType::Or,
            GateType::Xor => GateType::Xnor,
            GateType::Xnor => GateType::Xor,
            GateType::Not => GateType::Buf,
            GateType::Buf => GateType::Not,
            GateType::Const0 => GateType::Const1,
            GateType::Const1 => GateType::Const0,
        }
    }

    /// True for the inverting gate types (`Nand`, `Nor`, `Xnor`, `Not`,
    /// `Const1` counts as non-inverting).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateType::Nand | GateType::Nor | GateType::Xnor | GateType::Not
        )
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_truth_tables() {
        let cases = [
            (GateType::And, [false, false, false, true]),
            (GateType::Nand, [true, true, true, false]),
            (GateType::Or, [false, true, true, true]),
            (GateType::Nor, [true, false, false, false]),
            (GateType::Xor, [false, true, true, false]),
            (GateType::Xnor, [true, false, false, true]),
        ];
        for (ty, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(ty.eval(&[a, b]), e, "{ty} on ({a},{b})");
            }
        }
    }

    #[test]
    fn unary_and_const_gates() {
        assert!(GateType::Not.eval(&[false]));
        assert!(!GateType::Not.eval(&[true]));
        assert!(GateType::Buf.eval(&[true]));
        assert!(!GateType::Const0.eval(&[]));
        assert!(GateType::Const1.eval(&[]));
    }

    #[test]
    fn multi_input_parity() {
        assert!(GateType::Xor.eval(&[true, true, true]));
        assert!(!GateType::Xor.eval(&[true, true, false, false]));
        assert!(!GateType::Xnor.eval(&[true, false, false]));
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        for ty in GateType::ALL {
            if matches!(ty, GateType::Const0 | GateType::Const1) {
                let w = ty.eval_word(&[]);
                assert_eq!(w & 1 != 0, ty.eval(&[]));
                continue;
            }
            let arity = if matches!(ty, GateType::Not | GateType::Buf) {
                1
            } else {
                3
            };
            for pattern in 0u32..(1 << arity) {
                let bools: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 != 0).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { !0u64 } else { 0 }).collect();
                let scalar = ty.eval(&bools);
                let word = ty.eval_word(&words);
                assert_eq!(word == !0u64, scalar, "{ty} pattern {pattern:b}");
                assert!(word == 0 || word == !0u64);
            }
        }
    }

    #[test]
    fn keyword_round_trip() {
        for ty in GateType::ALL {
            let parsed = GateType::from_bench_keyword(ty.bench_keyword()).expect("round trip");
            assert_eq!(parsed, ty);
        }
        assert_eq!(GateType::from_bench_keyword("buff").unwrap(), GateType::Buf);
        assert_eq!(GateType::from_bench_keyword("inv").unwrap(), GateType::Not);
        assert!(GateType::from_bench_keyword("DFF").is_err());
    }

    #[test]
    fn complement_is_involutive_and_flips_output() {
        for ty in GateType::ALL {
            assert_eq!(ty.complement().complement(), ty);
            let arity = match ty {
                GateType::Const0 | GateType::Const1 => 0,
                GateType::Not | GateType::Buf => 1,
                _ => 2,
            };
            for pattern in 0u32..(1u32 << arity) {
                let bools: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 != 0).collect();
                assert_eq!(ty.eval(&bools), !ty.complement().eval(&bools));
            }
        }
    }

    #[test]
    fn arity_rules() {
        assert!(GateType::And.arity_ok(5));
        assert!(!GateType::And.arity_ok(0));
        assert!(GateType::Not.arity_ok(1));
        assert!(!GateType::Not.arity_ok(2));
        assert!(GateType::Const0.arity_ok(0));
        assert!(!GateType::Const1.arity_ok(1));
    }
}
