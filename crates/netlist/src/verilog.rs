//! Reading and writing a structural (gate-level) Verilog subset.
//!
//! Logic-locking tool flows move netlists between `.bench` and gate-level
//! Verilog constantly: synthesis tools such as Cadence Genus (used by the
//! paper to resynthesise the locked designs) read and emit Verilog, while the
//! attack scripts work on `.bench`. This module provides the Verilog side of
//! that bridge for the same purely combinational circuits the rest of the
//! crate handles.
//!
//! The supported subset is a single `module` containing
//!
//! * scalar `input` / `output` / `wire` declarations,
//! * the Verilog gate primitives `and`, `nand`, `or`, `nor`, `xor`, `xnor`,
//!   `not` and `buf` (output terminal first, as the standard defines),
//! * `assign` statements whose right-hand side is a net name, `~net`,
//!   `1'b0` or `1'b1`,
//! * line (`//`) and block (`/* ... */`) comments and escaped identifiers
//!   (`\name `).
//!
//! Vectors (`[7:0]`), behavioural blocks, parameters and hierarchy are out of
//! scope and produce a [`NetlistError::Parse`] that names the construct.
//!
//! ```
//! use kratt_netlist::verilog;
//!
//! # fn main() -> Result<(), kratt_netlist::NetlistError> {
//! let text = "
//! module half_adder (a, b, sum, carry);
//!   input a, b;
//!   output sum, carry;
//!   xor g0 (sum, a, b);
//!   and g1 (carry, a, b);
//! endmodule
//! ";
//! let circuit = verilog::parse(text)?;
//! assert_eq!(circuit.name(), "half_adder");
//! assert_eq!(circuit.simulate(&[true, true])?, vec![false, true]);
//! let round_trip = verilog::write(&circuit)?;
//! assert!(round_trip.contains("module half_adder"));
//! # Ok(())
//! # }
//! ```

use crate::circuit::{Circuit, NetId};
use crate::{GateType, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A gate primitive keyword of the supported Verilog subset.
fn gate_type_from_primitive(keyword: &str) -> Option<GateType> {
    Some(match keyword {
        "and" => GateType::And,
        "nand" => GateType::Nand,
        "or" => GateType::Or,
        "nor" => GateType::Nor,
        "xor" => GateType::Xor,
        "xnor" => GateType::Xnor,
        "not" => GateType::Not,
        "buf" => GateType::Buf,
        _ => return None,
    })
}

fn primitive_from_gate_type(ty: GateType) -> Option<&'static str> {
    Some(match ty {
        GateType::And => "and",
        GateType::Nand => "nand",
        GateType::Or => "or",
        GateType::Nor => "nor",
        GateType::Xor => "xor",
        GateType::Xnor => "xnor",
        GateType::Not => "not",
        GateType::Buf => "buf",
        GateType::Const0 | GateType::Const1 => return None,
    })
}

/// Whether a net name can be written as a plain Verilog identifier
/// (otherwise it is emitted as an escaped identifier `\name `).
fn is_simple_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    name.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !is_reserved_word(name)
}

fn is_reserved_word(name: &str) -> bool {
    matches!(
        name,
        "module"
            | "endmodule"
            | "input"
            | "output"
            | "inout"
            | "wire"
            | "assign"
            | "and"
            | "nand"
            | "or"
            | "nor"
            | "xor"
            | "xnor"
            | "not"
            | "buf"
            | "supply0"
            | "supply1"
            | "reg"
            | "always"
            | "begin"
            | "end"
    )
}

fn emit_identifier(name: &str) -> String {
    if is_simple_identifier(name) {
        name.to_string()
    } else {
        // Escaped identifiers are terminated by whitespace.
        format!("\\{name} ")
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialises a circuit as a single structural Verilog module.
///
/// Gates are written as Verilog primitives in topological order; constant
/// gates become `assign net = 1'b0;` / `1'b1;`. Net names that are not legal
/// plain identifiers are written as escaped identifiers, so arbitrary
/// `.bench` names survive a round trip.
///
/// Two interface corner cases that `.bench` allows but Verilog ports cannot
/// express directly are handled by inserting buffers:
///
/// * a primary *input* net that is also marked as a primary output is exposed
///   through a fresh output port named `<name>__po`;
/// * a net listed more than once in the output list keeps its first port and
///   each further occurrence becomes a fresh port named `<name>__dup<i>`.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic (no topological order exists).
pub fn write(circuit: &Circuit) -> Result<String, NetlistError> {
    let order = crate::analysis::topological_order(circuit)?;

    // Resolve the output port list: (port name, driven-by net).
    let mut seen_output_nets: Vec<NetId> = Vec::new();
    let mut output_ports: Vec<(String, NetId)> = Vec::new();
    for (position, &net) in circuit.outputs().iter().enumerate() {
        let base = circuit.net_name(net).to_string();
        if circuit.is_input(net) {
            output_ports.push((format!("{base}__po"), net));
        } else if seen_output_nets.contains(&net) {
            output_ports.push((format!("{base}__dup{position}"), net));
        } else {
            seen_output_nets.push(net);
            output_ports.push((base, net));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "// {}", circuit.name());
    let _ = writeln!(
        out,
        "// {} inputs, {} outputs, {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );
    let module_name = if is_simple_identifier(circuit.name()) {
        circuit.name().to_string()
    } else {
        emit_identifier(circuit.name())
    };

    let mut ports: Vec<String> = Vec::new();
    for &input in circuit.inputs() {
        ports.push(emit_identifier(circuit.net_name(input)));
    }
    for (name, _) in &output_ports {
        ports.push(emit_identifier(name));
    }
    let _ = writeln!(out, "module {module_name} ({});", ports.join(", "));

    for &input in circuit.inputs() {
        let _ = writeln!(out, "  input {};", emit_identifier(circuit.net_name(input)));
    }
    for (name, _) in &output_ports {
        let _ = writeln!(out, "  output {};", emit_identifier(name));
    }

    // Internal wires: every gate-driven net that is not itself an output port.
    let port_names: Vec<&str> = output_ports.iter().map(|(n, _)| n.as_str()).collect();
    for (_, gate) in circuit.gates() {
        let name = circuit.net_name(gate.output);
        if !port_names.contains(&name) {
            let _ = writeln!(out, "  wire {};", emit_identifier(name));
        }
    }
    let _ = writeln!(out);

    let mut instance = 0usize;
    for gid in order {
        let gate = circuit.gate(gid);
        let output_name = circuit.net_name(gate.output);
        match gate.ty {
            GateType::Const0 => {
                let _ = writeln!(out, "  assign {} = 1'b0;", emit_identifier(output_name));
            }
            GateType::Const1 => {
                let _ = writeln!(out, "  assign {} = 1'b1;", emit_identifier(output_name));
            }
            ty => {
                let primitive = primitive_from_gate_type(ty).expect("non-constant gate");
                let mut terminals = vec![emit_identifier(output_name)];
                terminals.extend(
                    gate.inputs
                        .iter()
                        .map(|&n| emit_identifier(circuit.net_name(n))),
                );
                let _ = writeln!(out, "  {primitive} g{instance} ({});", terminals.join(", "));
                instance += 1;
            }
        }
    }

    // Buffers feeding the synthesized output ports (input-as-output and
    // duplicated outputs).
    for (name, net) in &output_ports {
        if name != circuit.net_name(*net) {
            let _ = writeln!(
                out,
                "  buf g{instance} ({}, {});",
                emit_identifier(name),
                emit_identifier(circuit.net_name(*net))
            );
            instance += 1;
        }
    }

    let _ = writeln!(out, "endmodule");
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Identifier(String),
    Symbol(char),
    Constant(bool),
}

/// One statement of the module body plus the line it started on.
#[derive(Debug)]
struct Statement {
    line: usize,
    tokens: Vec<Token>,
}

fn parse_error(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// Strips `/* ... */` comments, replacing them with spaces but preserving
/// newlines so later line numbers stay accurate.
fn strip_block_comments(text: &str) -> Result<String, NetlistError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    let mut in_comment_since: Option<usize> = None;
    while let Some(c) = chars.next() {
        if c == '\n' {
            line += 1;
            out.push('\n');
            continue;
        }
        if in_comment_since.is_some() {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_comment_since = None;
                out.push(' ');
                out.push(' ');
            } else {
                out.push(' ');
            }
            continue;
        }
        if c == '/' && chars.peek() == Some(&'*') {
            chars.next();
            in_comment_since = Some(line);
            out.push(' ');
            out.push(' ');
            continue;
        }
        out.push(c);
    }
    match in_comment_since {
        Some(start) => Err(parse_error(start, "unterminated block comment")),
        None => Ok(out),
    }
}

/// Tokenises one physical line (with `//` comments already possible).
fn tokenize_line(
    line_no: usize,
    line: &str,
    tokens: &mut Vec<(usize, Token)>,
) -> Result<(), NetlistError> {
    let line = match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    };
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => {}
            '(' | ')' | ',' | ';' | '=' | '~' => tokens.push((line_no, Token::Symbol(c))),
            '\\' => {
                // Escaped identifier: runs until whitespace.
                let mut name = String::new();
                while let Some(&next) = chars.peek() {
                    if next.is_whitespace() {
                        break;
                    }
                    name.push(next);
                    chars.next();
                }
                if name.is_empty() {
                    return Err(parse_error(line_no, "empty escaped identifier"));
                }
                tokens.push((line_no, Token::Identifier(name)));
            }
            '1' if chars.peek() == Some(&'\'') => {
                chars.next();
                let base = chars.next();
                let digit = chars.next();
                match (base, digit) {
                    (Some('b'), Some('0')) => tokens.push((line_no, Token::Constant(false))),
                    (Some('b'), Some('1')) => tokens.push((line_no, Token::Constant(true))),
                    _ => {
                        return Err(parse_error(
                            line_no,
                            "only the constants 1'b0 and 1'b1 are supported",
                        ))
                    }
                }
            }
            '[' => {
                return Err(parse_error(
                    line_no,
                    "vector ranges are not supported; flatten the netlist to scalar nets",
                ))
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '$' => {
                let mut name = String::new();
                name.push(c);
                while let Some(&next) = chars.peek() {
                    if next.is_ascii_alphanumeric() || next == '_' || next == '$' || next == '.' {
                        name.push(next);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((line_no, Token::Identifier(name)));
            }
            other => {
                return Err(parse_error(
                    line_no,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(())
}

fn split_statements(tokens: Vec<(usize, Token)>) -> Result<Vec<Statement>, NetlistError> {
    let mut statements = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut start_line = 0usize;
    for (line, token) in tokens {
        if current.is_empty() {
            start_line = line;
        }
        match &token {
            Token::Symbol(';') => {
                statements.push(Statement {
                    line: start_line,
                    tokens: std::mem::take(&mut current),
                });
            }
            Token::Identifier(word) if word == "endmodule" => {
                if !current.is_empty() {
                    return Err(parse_error(
                        line,
                        "statement not terminated by `;` before `endmodule`",
                    ));
                }
                statements.push(Statement {
                    line,
                    tokens: vec![Token::Identifier("endmodule".to_string())],
                });
            }
            _ => current.push(token),
        }
    }
    if !current.is_empty() {
        return Err(parse_error(
            start_line,
            "unterminated statement at end of file",
        ));
    }
    Ok(statements)
}

/// A gate whose operands may be declared later in the file.
#[derive(Debug)]
struct PendingGate {
    line: usize,
    ty: GateType,
    output: String,
    inputs: Vec<String>,
    /// `true` when the single input should be complemented (an
    /// `assign y = ~x;` statement).
    complement: bool,
}

/// Parses structural Verilog text into a [`Circuit`].
///
/// The circuit name is taken from the `module` header. Gate instantiations
/// and `assign` statements may reference nets before they are defined.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with the offending line) for constructs
/// outside the supported subset — vectors, behavioural code, multiple
/// modules, undeclared or doubly-driven nets.
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let text = strip_block_comments(text)?;
    let mut tokens: Vec<(usize, Token)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        tokenize_line(idx + 1, line, &mut tokens)?;
    }
    let statements = split_statements(tokens)?;
    if statements.is_empty() {
        return Err(parse_error(1, "no module found"));
    }

    let mut module_name: Option<String> = None;
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let mut gates: Vec<PendingGate> = Vec::new();
    let mut constants: Vec<(usize, String, bool)> = Vec::new();
    let mut saw_endmodule = false;

    for statement in &statements {
        let line = statement.line;
        if saw_endmodule {
            return Err(parse_error(
                line,
                "only a single module per file is supported",
            ));
        }
        let mut toks = statement.tokens.iter();
        let head = match toks.next() {
            Some(Token::Identifier(word)) => word.as_str(),
            Some(other) => {
                return Err(parse_error(line, format!("unexpected token {other:?}")));
            }
            None => continue,
        };
        match head {
            "module" => {
                if module_name.is_some() {
                    return Err(parse_error(
                        line,
                        "only a single module per file is supported",
                    ));
                }
                match toks.next() {
                    Some(Token::Identifier(name)) => module_name = Some(name.clone()),
                    _ => return Err(parse_error(line, "expected a module name")),
                }
                // The port list only repeats names declared as input/output
                // below; it is validated for balance but otherwise ignored.
                let mut depth = 0i32;
                for token in toks {
                    match token {
                        Token::Symbol('(') => depth += 1,
                        Token::Symbol(')') => depth -= 1,
                        Token::Symbol(',') | Token::Identifier(_) => {}
                        other => {
                            return Err(parse_error(
                                line,
                                format!("unexpected token {other:?} in port list"),
                            ))
                        }
                    }
                }
                if depth != 0 {
                    return Err(parse_error(line, "unbalanced parentheses in module header"));
                }
            }
            "endmodule" => saw_endmodule = true,
            "input" | "output" | "wire" => {
                for token in toks {
                    match token {
                        Token::Identifier(name) => match head {
                            "input" => inputs.push((line, name.clone())),
                            "output" => outputs.push((line, name.clone())),
                            _ => wires.push(name.clone()),
                        },
                        Token::Symbol(',') => {}
                        other => {
                            return Err(parse_error(
                                line,
                                format!("unexpected token {other:?} in {head} declaration"),
                            ))
                        }
                    }
                }
            }
            "assign" => {
                let target = match toks.next() {
                    Some(Token::Identifier(name)) => name.clone(),
                    _ => return Err(parse_error(line, "expected a net name after `assign`")),
                };
                match toks.next() {
                    Some(Token::Symbol('=')) => {}
                    _ => return Err(parse_error(line, "expected `=` in assign statement")),
                }
                let rest: Vec<&Token> = toks.collect();
                match rest.as_slice() {
                    [Token::Constant(value)] => constants.push((line, target, *value)),
                    [Token::Identifier(source)] => gates.push(PendingGate {
                        line,
                        ty: GateType::Buf,
                        output: target,
                        inputs: vec![source.clone()],
                        complement: false,
                    }),
                    [Token::Symbol('~'), Token::Identifier(source)] => gates.push(PendingGate {
                        line,
                        ty: GateType::Not,
                        output: target,
                        inputs: vec![source.clone()],
                        complement: true,
                    }),
                    _ => {
                        return Err(parse_error(
                            line,
                            "only `assign y = x;`, `assign y = ~x;`, `assign y = 1'b0;` and `assign y = 1'b1;` are supported",
                        ))
                    }
                }
            }
            primitive => {
                let ty = gate_type_from_primitive(primitive).ok_or_else(|| {
                    parse_error(
                        line,
                        format!("unsupported construct `{primitive}` (only structural gate primitives are supported)"),
                    )
                })?;
                let mut rest: Vec<&Token> = toks.collect();
                // Optional instance name before the terminal list.
                if let Some(Token::Identifier(_)) = rest.first() {
                    rest.remove(0);
                }
                if rest.first() != Some(&&Token::Symbol('('))
                    || rest.last() != Some(&&Token::Symbol(')'))
                {
                    return Err(parse_error(line, "expected a parenthesised terminal list"));
                }
                let mut terminals: Vec<String> = Vec::new();
                for token in &rest[1..rest.len() - 1] {
                    match token {
                        Token::Identifier(name) => terminals.push((*name).clone()),
                        Token::Symbol(',') => {}
                        other => {
                            return Err(parse_error(
                                line,
                                format!("unexpected token {other:?} in terminal list"),
                            ))
                        }
                    }
                }
                if terminals.len() < 2 {
                    return Err(parse_error(
                        line,
                        format!("gate `{primitive}` needs an output and at least one input"),
                    ));
                }
                let output = terminals.remove(0);
                gates.push(PendingGate {
                    line,
                    ty,
                    output,
                    inputs: terminals,
                    complement: false,
                });
            }
        }
    }

    if !saw_endmodule {
        return Err(parse_error(
            statements.last().map(|s| s.line).unwrap_or(1),
            "missing `endmodule`",
        ));
    }
    let module_name = module_name.ok_or_else(|| parse_error(1, "missing `module` header"))?;

    // Silence the unused-field warning path: complement is encoded in `ty`.
    debug_assert!(gates.iter().all(|g| !g.complement || g.ty == GateType::Not));
    let _ = &wires;

    let mut circuit = Circuit::new(module_name);
    let mut net_of: HashMap<String, NetId> = HashMap::new();
    for (line, input) in &inputs {
        let id = circuit.add_input(input.clone()).map_err(|e| match e {
            NetlistError::DuplicateNet(n) => {
                parse_error(*line, format!("input `{n}` declared twice"))
            }
            other => other,
        })?;
        net_of.insert(input.clone(), id);
    }
    for (line, name, value) in &constants {
        let ty = if *value {
            GateType::Const1
        } else {
            GateType::Const0
        };
        let id = circuit
            .add_gate(ty, name.clone(), &[])
            .map_err(|e| parse_error(*line, e.to_string()))?;
        net_of.insert(name.clone(), id);
    }

    // Resolve gates in dependency order, as the `.bench` parser does.
    let mut remaining = gates;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next_round = Vec::new();
        for gate in remaining {
            if gate.inputs.iter().all(|i| net_of.contains_key(i)) {
                let input_ids: Vec<NetId> = gate.inputs.iter().map(|i| net_of[i]).collect();
                let out = circuit
                    .add_gate(gate.ty, gate.output.clone(), &input_ids)
                    .map_err(|e| parse_error(gate.line, e.to_string()))?;
                net_of.insert(gate.output, out);
                progressed = true;
            } else {
                next_round.push(gate);
            }
        }
        if !progressed {
            let gate = &next_round[0];
            let missing = gate
                .inputs
                .iter()
                .find(|i| !net_of.contains_key(*i))
                .cloned()
                .unwrap_or_default();
            return Err(parse_error(
                gate.line,
                format!(
                    "net `{missing}` driving `{}` is never defined (or the netlist is cyclic)",
                    gate.output
                ),
            ));
        }
        remaining = next_round;
    }

    for (line, output) in &outputs {
        let id = net_of
            .get(output)
            .copied()
            .ok_or_else(|| parse_error(*line, format!("output `{output}` is never driven")))?;
        circuit.mark_output(id);
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::sim::exhaustively_equivalent;

    const HALF_ADDER: &str = "
// a half adder
module half_adder (a, b, sum, carry);
  input a, b;
  output sum, carry;

  xor g0 (sum, a, b);
  and g1 (carry, a, b);
endmodule
";

    #[test]
    fn parses_a_simple_module() {
        let c = parse(HALF_ADDER).unwrap();
        assert_eq!(c.name(), "half_adder");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.simulate(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(c.simulate(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn write_then_parse_round_trips_function() {
        let c = parse(HALF_ADDER).unwrap();
        let text = write(&c).unwrap();
        let d = parse(&text).unwrap();
        assert_eq!(c.num_inputs(), d.num_inputs());
        assert_eq!(c.num_outputs(), d.num_outputs());
        assert!(exhaustively_equivalent(&c, &d).unwrap());
    }

    #[test]
    fn bench_to_verilog_round_trip() {
        let bench_text = "
INPUT(G1)
INPUT(G2)
INPUT(keyinput0)
OUTPUT(G17)
n$1 = NAND(G1, keyinput0)
one = CONST1()
G17 = AND(n$1, G2, one)
";
        let from_bench = bench::parse("locked", bench_text).unwrap();
        let verilog_text = write(&from_bench).unwrap();
        let from_verilog = parse(&verilog_text).unwrap();
        assert_eq!(from_verilog.key_inputs().len(), 1);
        assert!(exhaustively_equivalent(&from_bench, &from_verilog).unwrap());
    }

    #[test]
    fn escaped_identifiers_round_trip() {
        let mut c = Circuit::new("esc");
        let a = c.add_input("3weird").unwrap();
        let b = c.add_input("ok_name").unwrap();
        let o = c.add_gate(GateType::Or, "out[0]", &[a, b]).unwrap();
        c.mark_output(o);
        let text = write(&c).unwrap();
        assert!(text.contains("\\3weird "));
        let d = parse(&text).unwrap();
        assert_eq!(d.num_inputs(), 2);
        assert!(exhaustively_equivalent(&c, &d).unwrap());
    }

    #[test]
    fn assign_constants_and_inverters_parse() {
        let text = "
module tiny (a, y, z);
  input a;
  output y, z;
  wire c1, na;
  assign c1 = 1'b1;
  assign na = ~a;
  and g0 (y, na, c1);
  assign z = a;
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.simulate(&[false]).unwrap(), vec![true, false]);
        assert_eq!(c.simulate(&[true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn block_comments_and_instance_names_are_optional() {
        let text = "
module m (a, y);
  input a; output y;
  /* a block
     comment */
  not (y, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.simulate(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn forward_references_are_resolved() {
        let text = "
module fwd (a, y);
  input a;
  output y;
  wire t;
  not g1 (y, t);
  buf g0 (t, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.simulate(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn errors_carry_line_numbers_and_name_the_construct() {
        let vector = "module m (a, y);\n  input [3:0] a;\n  output y;\nendmodule\n";
        match parse(vector) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("vector"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let behavioural = "module m (a, y);\n  input a;\n  output y;\n  reg state;\nendmodule\n";
        match parse(behavioural) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("reg"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let behavioural_block =
            "module m (a, y);\n  input a;\n  output y;\n  always @(a) y = a;\nendmodule\n";
        assert!(matches!(
            parse(behavioural_block),
            Err(NetlistError::Parse { line: 4, .. })
        ));

        let undriven =
            "module m (a, y);\n  input a;\n  output y;\n  and g0 (y, a, ghost);\nendmodule\n";
        match parse(undriven) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("ghost"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_endmodule_is_an_error() {
        let text = "module m (a, y);\n  input a;\n  output y;\n  buf g0 (y, a);\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn two_modules_are_rejected() {
        let text = "module a (); endmodule\nmodule b (); endmodule\n";
        match parse(text) {
            Err(NetlistError::Parse { message, .. }) => assert!(message.contains("single module")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_input_outputs_get_fresh_ports() {
        let mut c = Circuit::new("dup");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::And, "o", &[a, b]).unwrap();
        c.mark_output(o);
        c.mark_output(o); // duplicate
        c.mark_output(a); // input doubles as an output
        let text = write(&c).unwrap();
        let d = parse(&text).unwrap();
        assert_eq!(d.num_outputs(), 3);
        // Functional check on all four patterns.
        for pattern in 0u32..4 {
            let bits = vec![pattern & 1 != 0, pattern & 2 != 0];
            let original = [bits[0] && bits[1], bits[0] && bits[1], bits[0]];
            assert_eq!(d.simulate(&bits).unwrap(), original);
        }
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let text = "module m (a, y);\n  /* never closed\n  input a;\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    proptest::proptest! {
        /// Random circuits (with awkward net names included) survive the
        /// Verilog write → parse round trip functionally intact.
        #[test]
        fn prop_verilog_round_trip_preserves_function(seed in 0u64..40) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(13));
            let mut c = Circuit::new(format!("rand{seed}"));
            let mut nets: Vec<NetId> = (0..5)
                .map(|i| {
                    let name = if i % 2 == 0 { format!("in{i}") } else { format!("{i}w$eird") };
                    c.add_input(name).unwrap()
                })
                .collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
                GateType::Const0, GateType::Const1,
            ];
            for g in 0..12 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = match ty {
                    GateType::Const0 | GateType::Const1 => 0,
                    GateType::Not | GateType::Buf => 1,
                    _ => rng.gen_range(2..4usize),
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[6]);

            let text = write(&c).unwrap();
            let parsed = parse(&text).unwrap();
            proptest::prop_assert_eq!(c.num_inputs(), parsed.num_inputs());
            proptest::prop_assert_eq!(c.num_outputs(), parsed.num_outputs());
            proptest::prop_assert!(exhaustively_equivalent(&c, &parsed).unwrap());
        }
    }
}
