//! The And-Inverter-Graph core IR: a structurally hashed, constant-folding
//! network of two-input AND nodes with complemented edges.
//!
//! The AIG is the canonical substrate of modern logic synthesis and formal
//! verification (ABC-style): every gate type reduces to AND and inversion,
//! inversion is free (a bit on the edge, not a node), structural hashing
//! merges identical logic at construction time, and constant folding removes
//! trivial nodes before they exist. The suite uses it as the shared IR
//! between layers:
//!
//! * [`Aig::from_circuit`] / [`Aig::to_circuit`] — lowering/raising that
//!   preserves the primary interface (input names and order, output count
//!   and order), so locked circuits stay locked with the same key inputs;
//! * [`Aig::add_circuit`] — lowering *into* an existing AIG with inputs
//!   shared by name, which is how miters are built AIG-side: logic common to
//!   both halves hashes to one node before any CNF exists;
//! * [`Aig::miter`] — the disequality output over two output vectors;
//! * [`Aig::eval_words`] — packed 64-lane simulation over every node, the
//!   signature kernel behind the fraig-style equivalence sweep in
//!   `kratt-synth`.
//!
//! Node indices are topologically ordered by construction (fanins always
//! precede their node), so passes can iterate `1..num_nodes()` without
//! recomputing an order.

use crate::circuit::{Circuit, NetId};
use crate::{GateType, NetlistError};
use std::collections::HashMap;

/// An edge of the AIG: a node index plus a complement bit.
///
/// The constant-false node is node 0, so [`AigLit::FALSE`] is node 0 plain
/// and [`AigLit::TRUE`] is node 0 complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false edge (node 0, plain).
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true edge (node 0, complemented).
    pub const TRUE: AigLit = AigLit(1);

    /// Builds an edge from a node index and a complement flag.
    pub fn new(node: u32, complemented: bool) -> Self {
        AigLit(node << 1 | u32::from(complemented))
    }

    /// The node this edge points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge inverts the node's value.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// The inverted edge. Inversion is free in an AIG — no node is created.
    #[must_use]
    pub fn complement(self) -> Self {
        AigLit(self.0 ^ 1)
    }

    /// This edge if `value` is `true`, its complement otherwise.
    #[must_use]
    pub fn when(self, value: bool) -> Self {
        if value {
            self
        } else {
            self.complement()
        }
    }

    /// Whether this edge is one of the two constants.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }
}

/// One AND node: its two fanin edges. Primary inputs and the constant node
/// carry sentinel fanins and are distinguished by [`Aig::is_input`].
#[derive(Debug, Clone, Copy)]
struct AigNode {
    fanin0: AigLit,
    fanin1: AigLit,
}

const NO_FANIN: AigLit = AigLit(u32::MAX);

/// A structural invariant violation found by [`Aig::check_invariants`].
///
/// A freshly built AIG can never contain one: the builders enforce the
/// invariants by construction. Violations arise only from the raw fixture
/// hooks (or a buggy in-place rewrite) and are what the `kratt-lint` AIG
/// rules report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigViolation {
    /// An AND node with a fanin whose index does not precede it, breaking
    /// the topological ordering every `1..num_nodes()` pass relies on.
    FaninOrder {
        /// The offending AND node.
        node: u32,
        /// The fanin node index that fails to precede it.
        fanin: u32,
    },
    /// Two AND nodes with the same (canonical) fanin pair — logic the strash
    /// table should have merged into one node.
    DuplicateNode {
        /// The earlier of the two structurally identical nodes.
        first: u32,
        /// The later duplicate.
        second: u32,
    },
}

impl std::fmt::Display for AigViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AigViolation::FaninOrder { node, fanin } => {
                write!(
                    f,
                    "AND node {node} has fanin {fanin} that does not precede it"
                )
            }
            AigViolation::DuplicateNode { first, second } => {
                write!(
                    f,
                    "AND nodes {first} and {second} share the same fanin pair"
                )
            }
        }
    }
}

/// Structural statistics of an [`Aig`]'s registered-output cone, as
/// reported by [`Aig::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AigStats {
    /// Primary inputs (all registered inputs, in or out of the cone).
    pub inputs: usize,
    /// Registered outputs.
    pub outputs: usize,
    /// Live AND nodes (reachable from a registered output).
    pub ands: usize,
    /// Longest input-to-output AND path.
    pub levels: usize,
    /// Peak fanout over live nodes (fanin references plus output
    /// registrations).
    pub max_fanout: usize,
}

/// A structurally hashed And-Inverter Graph. See the [module](self) docs.
#[derive(Debug, Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    /// Node indices of the primary inputs, in declaration order.
    inputs: Vec<u32>,
    input_names: Vec<String>,
    input_by_name: HashMap<String, u32>,
    outputs: Vec<AigLit>,
    output_names: Vec<String>,
    /// Structural hash: normalised `(fanin0, fanin1)` → node.
    strash: HashMap<(AigLit, AigLit), u32>,
}

impl Aig {
    /// An empty AIG holding only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![AigNode {
                fanin0: NO_FANIN,
                fanin1: NO_FANIN,
            }],
            inputs: Vec::new(),
            input_names: Vec::new(),
            input_by_name: HashMap::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The AIG's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count (constant + inputs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary-input names, in declaration order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Node indices of the primary inputs, in declaration order.
    pub fn input_nodes(&self) -> &[u32] {
        &self.inputs
    }

    /// Output edges, in declaration order.
    pub fn outputs(&self) -> &[AigLit] {
        &self.outputs
    }

    /// Output names, parallel to [`Aig::outputs`].
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Whether `node` is a primary input.
    pub fn is_input(&self, node: u32) -> bool {
        node != 0 && self.nodes[node as usize].fanin0 == NO_FANIN
    }

    /// Whether `node` is an AND node (not the constant, not an input).
    pub fn is_and(&self, node: u32) -> bool {
        node != 0 && self.nodes[node as usize].fanin0 != NO_FANIN
    }

    /// The fanin edges of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node. This is an API-contract check,
    /// not an input-validation gap: callers select AND nodes via
    /// [`Aig::is_and`], and the structural invariants behind that contract
    /// (topological fanin order, strash consistency) are checkable with
    /// [`Aig::check_invariants`] and linted by the `kratt-lint` AIG rules.
    pub fn fanins(&self, node: u32) -> (AigLit, AigLit) {
        let n = &self.nodes[node as usize];
        assert!(n.fanin0 != NO_FANIN, "node {node} is not an AND node");
        (n.fanin0, n.fanin1)
    }

    /// The plain (uncomplemented) edge of an existing input, by name.
    pub fn input_lit(&self, name: &str) -> Option<AigLit> {
        self.input_by_name
            .get(name)
            .map(|&node| AigLit::new(node, false))
    }

    /// Adds a primary input (or returns the existing one with this name —
    /// shared-by-name inputs are what makes cross-circuit miters hash their
    /// common logic together).
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let name = name.into();
        if let Some(&node) = self.input_by_name.get(&name) {
            return AigLit::new(node, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode {
            fanin0: NO_FANIN,
            fanin1: NO_FANIN,
        });
        self.inputs.push(node);
        self.input_by_name.insert(name.clone(), node);
        self.input_names.push(name);
        AigLit::new(node, false)
    }

    /// Declares an output edge with a name.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push(lit);
        self.output_names.push(name.into());
    }

    /// The conjunction of two edges, with constant folding, trivial-case
    /// simplification (`a·a = a`, `a·¬a = 0`) and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.complement() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&key) {
            return AigLit::new(node, false);
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode {
            fanin0: key.0,
            fanin1: key.1,
        });
        self.strash.insert(key, node);
        AigLit::new(node, false)
    }

    /// The disjunction of two edges (through De Morgan).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.complement(), b.complement()).complement()
    }

    /// The parity of two edges (three AND nodes, shared where possible).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let both = self.and(a, b);
        let neither = self.and(a.complement(), b.complement());
        self.and(both.complement(), neither.complement())
    }

    /// `if s then t else e`.
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let on = self.and(s, t);
        let off = self.and(s.complement(), e);
        self.or(on, off)
    }

    /// Balanced conjunction of any number of edges (`TRUE` for none).
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce_balanced(lits, AigLit::TRUE, Self::and)
    }

    /// Balanced disjunction of any number of edges (`FALSE` for none).
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce_balanced(lits, AigLit::FALSE, Self::or)
    }

    /// Chained parity of any number of edges (`FALSE` for none).
    pub fn xor_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce_balanced(lits, AigLit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[AigLit],
        empty: AigLit,
        mut op: impl FnMut(&mut Self, AigLit, AigLit) -> AigLit,
    ) -> AigLit {
        match lits {
            [] => empty,
            [single] => *single,
            _ => {
                let mut level = lits.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        next.push(match pair {
                            [a, b] => op(self, *a, *b),
                            [a] => *a,
                            _ => unreachable!("chunks(2)"),
                        });
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Lowers `circuit` into this AIG, sharing inputs *by name* with whatever
    /// is already here and consulting `bound` first: an input whose name is
    /// bound maps to the given edge (typically a constant) instead of
    /// becoming an AIG input. Returns the edge of every net, indexed by
    /// [`NetId::index`] — outputs are **not** registered (use
    /// [`Aig::add_circuit`] for that).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn lower_circuit(
        &mut self,
        circuit: &Circuit,
        bound: &HashMap<String, AigLit>,
    ) -> Result<Vec<AigLit>, NetlistError> {
        let mut lits = vec![AigLit::FALSE; circuit.num_nets()];
        for &pi in circuit.inputs() {
            let name = circuit.net_name(pi);
            lits[pi.index()] = match bound.get(name) {
                Some(&lit) => lit,
                None => self.add_input(name),
            };
        }
        for gid in crate::analysis::topological_order(circuit)? {
            let gate = circuit.gate(gid);
            let ins: Vec<AigLit> = gate.inputs.iter().map(|n| lits[n.index()]).collect();
            let value = match gate.ty {
                GateType::And => self.and_many(&ins),
                GateType::Nand => self.and_many(&ins).complement(),
                GateType::Or => self.or_many(&ins),
                GateType::Nor => self.or_many(&ins).complement(),
                GateType::Xor => self.xor_many(&ins),
                GateType::Xnor => self.xor_many(&ins).complement(),
                GateType::Not => ins[0].complement(),
                GateType::Buf => ins[0],
                GateType::Const0 => AigLit::FALSE,
                GateType::Const1 => AigLit::TRUE,
            };
            lits[gate.output.index()] = value;
        }
        Ok(lits)
    }

    /// Lowers `circuit` into this AIG (inputs shared by name) and registers
    /// its outputs. Returns the output edges in circuit output order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn add_circuit(&mut self, circuit: &Circuit) -> Result<Vec<AigLit>, NetlistError> {
        let lits = self.lower_circuit(circuit, &HashMap::new())?;
        let outputs: Vec<AigLit> = circuit.outputs().iter().map(|o| lits[o.index()]).collect();
        for (&o, &lit) in circuit.outputs().iter().zip(&outputs) {
            self.add_output(circuit.net_name(o), lit);
        }
        Ok(outputs)
    }

    /// Lowers a circuit into a fresh AIG, preserving the primary interface
    /// (input names and order, output names and order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, NetlistError> {
        let mut aig = Aig::new(circuit.name());
        aig.add_circuit(circuit)?;
        Ok(aig)
    }

    /// The disequality edge over two output vectors living in this AIG: true
    /// iff at least one pair of corresponding outputs differs. Because both
    /// halves share the AIG, common logic is already one node by the time
    /// the XORs are built.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length — a programming error at the
    /// call site (both vectors come from [`Aig::add_circuit`], whose lengths
    /// the caller controls), not a property of the AIG itself.
    pub fn miter(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        assert_eq!(a.len(), b.len(), "miter requires matching output counts");
        let diffs: Vec<AigLit> = a.iter().zip(b).map(|(&la, &lb)| self.xor(la, lb)).collect();
        self.or_many(&diffs)
    }

    /// Marks every node reachable backwards from `roots` (the constant node
    /// is never marked; inputs are). Indexed by node.
    pub fn cone(&self, roots: &[AigLit]) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|l| l.node()).filter(|&n| n != 0).collect();
        while let Some(node) = stack.pop() {
            if mark[node as usize] {
                continue;
            }
            mark[node as usize] = true;
            if self.is_and(node) {
                let (f0, f1) = self.fanins(node);
                for f in [f0, f1] {
                    if f.node() != 0 && !mark[f.node() as usize] {
                        stack.push(f.node());
                    }
                }
            }
        }
        mark
    }

    /// Reference counts within `cone` (fanin references of marked AND nodes
    /// plus one per registered output), indexed by node.
    pub fn reference_counts(&self, cone: &[bool]) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for node in 1..self.nodes.len() as u32 {
            if cone[node as usize] && self.is_and(node) {
                let (f0, f1) = self.fanins(node);
                refs[f0.node() as usize] += 1;
                refs[f1.node() as usize] += 1;
            }
        }
        for output in &self.outputs {
            refs[output.node() as usize] += 1;
        }
        refs
    }

    /// Checks the structural invariants every well-formed AIG upholds by
    /// construction: AND fanins precede their node (topological index
    /// ordering, which every pass iterating `1..num_nodes()` relies on) and
    /// no two AND nodes share a fanin pair (strash consistency). A non-empty
    /// result means the AIG was corrupted — possible only through the raw
    /// fixture hooks or a buggy rewrite, never through the public builders.
    pub fn check_invariants(&self) -> Vec<AigViolation> {
        let mut violations = Vec::new();
        let mut seen: HashMap<(AigLit, AigLit), u32> = HashMap::new();
        for node in 1..self.nodes.len() as u32 {
            if !self.is_and(node) {
                continue;
            }
            let (f0, f1) = self.fanins(node);
            for fanin in [f0, f1] {
                if fanin.node() >= node {
                    violations.push(AigViolation::FaninOrder {
                        node,
                        fanin: fanin.node(),
                    });
                }
            }
            let key = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
            match seen.get(&key) {
                Some(&first) => violations.push(AigViolation::DuplicateNode {
                    first,
                    second: node,
                }),
                None => {
                    seen.insert(key, node);
                }
            }
        }
        violations
    }

    /// Structural statistics over the registered-output cone: live AND
    /// count, depth and peak fanout. Dangling logic is excluded, so the
    /// numbers match what [`Aig::to_circuit`] would raise and what the CNF
    /// encoder would materialise.
    pub fn stats(&self) -> AigStats {
        let cone = self.cone(&self.outputs);
        let refs = self.reference_counts(&cone);
        let mut level = vec![0u32; self.nodes.len()];
        let mut ands = 0;
        for node in 1..self.nodes.len() as u32 {
            if !cone[node as usize] || !self.is_and(node) {
                continue;
            }
            ands += 1;
            let (f0, f1) = self.fanins(node);
            level[node as usize] = 1 + level[f0.node() as usize].max(level[f1.node() as usize]);
        }
        AigStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ands,
            levels: self
                .outputs
                .iter()
                .map(|o| level[o.node() as usize] as usize)
                .max()
                .unwrap_or(0),
            max_fanout: (0..self.nodes.len())
                .filter(|&n| n != 0 && cone[n])
                .map(|n| refs[n] as usize)
                .max()
                .unwrap_or(0),
        }
    }

    /// The AND nodes not reachable from any registered output — dangling
    /// logic that [`Aig::to_circuit`] sweeps. Useful as a lint query: a
    /// raising that left dangling gates behind would violate the "raising is
    /// the dangling-node sweep" contract.
    pub fn dangling_nodes(&self) -> Vec<u32> {
        let cone = self.cone(&self.outputs);
        (1..self.nodes.len() as u32)
            .filter(|&node| self.is_and(node) && !cone[node as usize])
            .collect()
    }

    /// Pushes an AND node without structural hashing, canonical operand
    /// ordering, constant folding or index checks. This deliberately bypasses
    /// every invariant [`Aig::check_invariants`] verifies so lint-rule
    /// fixtures can craft corrupted AIGs; it must never be used outside such
    /// fixtures.
    #[doc(hidden)]
    pub fn raw_push_and(&mut self, fanin0: AigLit, fanin1: AigLit) -> AigLit {
        let node = self.nodes.len() as u32;
        self.nodes.push(AigNode { fanin0, fanin1 });
        AigLit::new(node, false)
    }

    /// Evaluates every node over 64 packed patterns: `input_words[i]` holds
    /// the 64 values of input *i* (bit *p* = pattern *p*). Returns one word
    /// per node (plain phase); read an edge with [`Aig::lit_word`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words` does not match the input count — an
    /// API-contract check on the caller's pattern vector, matching the
    /// width check of [`Circuit::simulate`].
    pub fn eval_words(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            self.inputs.len(),
            "one word per primary input"
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (&node, &word) in self.inputs.iter().zip(input_words) {
            values[node as usize] = word;
        }
        for node in 1..self.nodes.len() as u32 {
            if self.is_and(node) {
                let (f0, f1) = self.fanins(node);
                values[node as usize] = Self::word_of(&values, f0) & Self::word_of(&values, f1);
            }
        }
        values
    }

    fn word_of(values: &[u64], lit: AigLit) -> u64 {
        let word = values[lit.node() as usize];
        if lit.is_complemented() {
            !word
        } else {
            word
        }
    }

    /// The packed value of an edge given the node words of
    /// [`Aig::eval_words`].
    pub fn lit_word(&self, values: &[u64], lit: AigLit) -> u64 {
        Self::word_of(values, lit)
    }

    /// Raises the AIG back to a gate-level [`Circuit`]: inputs in declaration
    /// order with their names, one AND gate per AND node reachable from the
    /// outputs (the raising *is* the dangling-node sweep), NOT gates for
    /// complemented edges, and one named BUF/NOT per output so output names
    /// survive the round trip.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Transform`] if the AIG violates its structural
    /// invariants (only possible through the raw fixture hooks; see
    /// [`Aig::check_invariants`]). Ordinary construction errors cannot occur.
    pub fn to_circuit(&self) -> Result<Circuit, NetlistError> {
        // Raising iterates nodes in index order and assumes strash-merged,
        // topologically ordered nodes; catch corrupted AIGs early in debug
        // builds instead of producing a silently wrong netlist.
        debug_assert!(
            self.check_invariants().is_empty(),
            "AIG `{}` violates structural invariants: {:?}",
            self.name,
            self.check_invariants()
        );
        let mut circuit = Circuit::new(self.name.clone());
        let mut plain: Vec<Option<NetId>> = vec![None; self.nodes.len()];
        let mut negated: Vec<Option<NetId>> = vec![None; self.nodes.len()];
        for (&node, name) in self.inputs.iter().zip(&self.input_names) {
            plain[node as usize] = Some(circuit.add_input(name)?);
        }
        // An out-of-range fanin (possible only through the raw fixture
        // hooks) would panic inside `cone` before `net_of` could report a
        // typed error; surface it here first.
        for node in 1..self.nodes.len() as u32 {
            if self.is_and(node) {
                let (f0, f1) = self.fanins(node);
                if [f0, f1]
                    .iter()
                    .any(|f| f.node() as usize >= self.nodes.len())
                {
                    return Err(malformed(node, "fanin points outside the node array"));
                }
            }
        }
        let cone = self.cone(&self.outputs);
        for node in 1..self.nodes.len() as u32 {
            if !cone[node as usize] || !self.is_and(node) {
                continue;
            }
            let (f0, f1) = self.fanins(node);
            let a = Self::net_of(&mut circuit, &mut plain, &mut negated, f0)?;
            let b = Self::net_of(&mut circuit, &mut plain, &mut negated, f1)?;
            plain[node as usize] = Some(circuit.add_gate_auto(GateType::And, "aig", &[a, b])?);
        }
        for (&lit, name) in self.outputs.iter().zip(&self.output_names) {
            let net = if lit == AigLit::FALSE {
                add_named_or_auto(&mut circuit, GateType::Const0, name, &[])?
            } else if lit == AigLit::TRUE {
                add_named_or_auto(&mut circuit, GateType::Const1, name, &[])?
            } else {
                let plain_net = plain[lit.node() as usize]
                    .ok_or_else(|| malformed(lit.node(), "output cone node was never raised"))?;
                let ty = if lit.is_complemented() {
                    GateType::Not
                } else {
                    GateType::Buf
                };
                add_named_or_auto(&mut circuit, ty, name, &[plain_net])?
            };
            circuit.mark_output(net);
        }
        Ok(circuit)
    }

    fn net_of(
        circuit: &mut Circuit,
        plain: &mut [Option<NetId>],
        negated: &mut [Option<NetId>],
        lit: AigLit,
    ) -> Result<NetId, NetlistError> {
        if lit == AigLit::FALSE {
            return Self::cached_gate(circuit, plain, 0, GateType::Const0, &[]);
        }
        if lit == AigLit::TRUE {
            return Self::cached_gate(circuit, negated, 0, GateType::Const1, &[]);
        }
        // A `None` here means a fanin did not precede its node — impossible
        // in a well-formed AIG (nodes are topologically ordered by
        // construction), reachable only through the raw fixture hooks.
        let node = lit.node() as usize;
        if !lit.is_complemented() {
            return plain[node]
                .ok_or_else(|| malformed(lit.node(), "fanin does not precede its node"));
        }
        if let Some(net) = negated[node] {
            return Ok(net);
        }
        let base =
            plain[node].ok_or_else(|| malformed(lit.node(), "fanin does not precede its node"))?;
        let net = circuit.add_gate_auto(GateType::Not, "aig_n", &[base])?;
        negated[node] = Some(net);
        Ok(net)
    }

    fn cached_gate(
        circuit: &mut Circuit,
        cache: &mut [Option<NetId>],
        slot: usize,
        ty: GateType,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        if let Some(net) = cache[slot] {
            return Ok(net);
        }
        let net = circuit.add_gate_auto(ty, "aig_k", inputs)?;
        cache[slot] = Some(net);
        Ok(net)
    }
}

/// The [`NetlistError`] raised when [`Aig::to_circuit`] meets a node that
/// breaks the AIG's structural invariants.
fn malformed(node: u32, reason: &str) -> NetlistError {
    NetlistError::Transform(format!("malformed AIG: node {node}: {reason}"))
}

/// Adds a gate named `name` when that name is free, otherwise under a
/// derived fresh name.
fn add_named_or_auto(
    circuit: &mut Circuit,
    ty: GateType,
    name: &str,
    inputs: &[NetId],
) -> Result<NetId, NetlistError> {
    if circuit.find_net(name).is_none() {
        circuit.add_gate(ty, name, inputs)
    } else {
        circuit.add_gate_auto(ty, name, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustively_equivalent;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(GateType::And, "g1", &[ins[0], ins[1], ins[2]])
            .unwrap();
        let g2 = c
            .add_gate(GateType::Nor, "g2", &[ins[2], ins[3], ins[4]])
            .unwrap();
        let g3 = c.add_gate(GateType::Xor, "g3", &[g1, g2]).unwrap();
        let g4 = c.add_gate(GateType::Nand, "g4", &[g3, ins[0]]).unwrap();
        let g5 = c.add_gate(GateType::Xnor, "g5", &[g4, g2, ins[4]]).unwrap();
        c.mark_output(g3);
        c.mark_output(g5);
        c
    }

    #[test]
    fn constant_folding_and_trivial_cases() {
        let mut aig = Aig::new("fold");
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(AigLit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.complement()), AigLit::FALSE);
        assert_eq!(aig.num_ands(), 0, "no node was ever needed");
        assert_eq!(aig.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(aig.xor(a, AigLit::FALSE), a);
        assert_eq!(aig.xor(a, AigLit::TRUE), a.complement());
    }

    #[test]
    fn structural_hashing_merges_identical_nodes() {
        let mut aig = Aig::new("hash");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y, "commuted operands hash to one node");
        assert_eq!(aig.num_ands(), 1);
        let x2 = aig.xor(a, b);
        let y2 = aig.xor(b, a);
        assert_eq!(x2, y2);
    }

    #[test]
    fn inputs_are_shared_by_name() {
        let mut aig = Aig::new("shared");
        let a1 = aig.add_input("a");
        let a2 = aig.add_input("a");
        assert_eq!(a1, a2);
        assert_eq!(aig.num_inputs(), 1);
        assert_eq!(aig.input_lit("a"), Some(a1));
        assert_eq!(aig.input_lit("b"), None);
    }

    #[test]
    fn round_trip_preserves_interface_and_function() {
        let c = sample_circuit();
        let aig = Aig::from_circuit(&c).unwrap();
        assert_eq!(aig.num_inputs(), c.num_inputs());
        assert_eq!(aig.num_outputs(), c.num_outputs());
        let raised = aig.to_circuit().unwrap();
        assert_eq!(raised.num_inputs(), c.num_inputs());
        assert_eq!(raised.num_outputs(), c.num_outputs());
        for (&a, &b) in c.inputs().iter().zip(raised.inputs()) {
            assert_eq!(c.net_name(a), raised.net_name(b));
        }
        for (&a, &b) in c.outputs().iter().zip(raised.outputs()) {
            assert_eq!(c.net_name(a), raised.net_name(b));
        }
        assert!(exhaustively_equivalent(&c, &raised).unwrap());
    }

    #[test]
    fn constant_and_input_outputs_round_trip() {
        let mut aig = Aig::new("edges");
        let a = aig.add_input("a");
        aig.add_output("t", AigLit::TRUE);
        aig.add_output("f", AigLit::FALSE);
        aig.add_output("pass", a);
        aig.add_output("inv", a.complement());
        let c = aig.to_circuit().unwrap();
        assert_eq!(c.num_outputs(), 4);
        assert_eq!(
            c.simulate(&[false]).unwrap(),
            vec![true, false, false, true]
        );
        assert_eq!(c.simulate(&[true]).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn dangling_logic_is_swept_by_raising() {
        let mut aig = Aig::new("sweep");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let used = aig.and(a, b);
        let dangling = aig.or(a, b);
        let _ = dangling;
        aig.add_output("o", used);
        assert_eq!(aig.num_ands(), 2);
        let c = aig.to_circuit().unwrap();
        // Only the used AND plus the output BUF survive.
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn miter_of_circuit_with_itself_is_constant_false() {
        let c = sample_circuit();
        let mut aig = Aig::new("miter");
        let outs_a = aig.add_circuit(&c).unwrap();
        let outs_b = aig.add_circuit(&c).unwrap();
        // Identical halves hash node-for-node: the miter folds to constant 0.
        let miter = aig.miter(&outs_a, &outs_b);
        assert_eq!(miter, AigLit::FALSE);
    }

    #[test]
    fn eval_words_matches_the_circuit_simulator() {
        let c = sample_circuit();
        let aig = Aig::from_circuit(&c).unwrap();
        let sim = crate::sim::Simulator::new(&c).unwrap();
        // 64 fixed patterns.
        let words: Vec<u64> = (0..c.num_inputs() as u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
            .collect();
        let expected = sim.run_words(&words).unwrap();
        let values = aig.eval_words(&words);
        for (lit, want) in aig.outputs().iter().zip(expected) {
            assert_eq!(aig.lit_word(&values, *lit), want);
        }
    }

    #[test]
    fn well_formed_aigs_pass_the_invariant_check() {
        let aig = Aig::from_circuit(&sample_circuit()).unwrap();
        assert!(aig.check_invariants().is_empty());
        // Every gate of the sample feeds an output, so nothing dangles.
        assert!(aig.dangling_nodes().is_empty());
        let mut empty = Aig::new("empty");
        empty.add_input("a");
        assert!(empty.check_invariants().is_empty());
    }

    #[test]
    fn raw_pushed_corruption_is_detected_and_raising_refuses_it() {
        // Fanin-order violation: a node pointing at a later node.
        let mut aig = Aig::new("bad_order");
        let a = aig.add_input("a");
        let forward = AigLit::new(9, false);
        let bad = aig.raw_push_and(a, forward);
        aig.add_output("o", bad);
        assert!(aig
            .check_invariants()
            .iter()
            .any(|v| matches!(v, AigViolation::FaninOrder { .. })));

        // Strash violation: a duplicate of an existing fanin pair.
        let mut aig = Aig::new("bad_strash");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let dup = aig.raw_push_and(a, b);
        aig.add_output("o1", x);
        aig.add_output("o2", dup);
        assert!(aig
            .check_invariants()
            .iter()
            .any(|v| matches!(v, AigViolation::DuplicateNode { .. })));

        // Raising a malformed AIG is a typed error in release builds (and a
        // debug assertion in debug builds, where this test cannot run it).
        if cfg!(not(debug_assertions)) {
            let mut aig = Aig::new("bad_raise");
            let a = aig.add_input("a");
            let forward = aig.raw_push_and(a, AigLit::new(5, false));
            aig.add_output("o", forward);
            assert!(matches!(aig.to_circuit(), Err(NetlistError::Transform(_))));
        }
    }

    #[test]
    fn dangling_nodes_are_reported_and_swept() {
        let mut aig = Aig::new("dangle");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let used = aig.and(a, b);
        let dangling = aig.or(a, b);
        aig.add_output("o", used);
        let nodes = aig.dangling_nodes();
        assert_eq!(nodes, vec![dangling.node()]);
        // After raising (which sweeps) and re-lowering, nothing dangles.
        let swept = Aig::from_circuit(&aig.to_circuit().unwrap()).unwrap();
        assert!(swept.dangling_nodes().is_empty());
    }

    #[test]
    fn cone_and_reference_counts() {
        let mut aig = Aig::new("cone");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(x, b.complement()); // folds? no: x·¬b is a real node
        let dangling = aig.or(a, b);
        aig.add_output("o", y);
        let cone = aig.cone(aig.outputs());
        assert!(cone[x.node() as usize]);
        assert!(cone[y.node() as usize]);
        assert!(!cone[dangling.node() as usize]);
        let refs = aig.reference_counts(&cone);
        assert_eq!(refs[x.node() as usize], 1);
        assert_eq!(refs[y.node() as usize], 1); // the output
        assert_eq!(refs[b.node() as usize], 2);
    }

    proptest::proptest! {
        /// `Circuit → Aig → Circuit` round-trips preserve the function of
        /// random circuits, checked exhaustively over every input pattern.
        #[test]
        fn prop_round_trip_is_equivalence_preserving(seed in 0u64..200) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
            let mut c = Circuit::new(format!("rand{seed}"));
            let n_inputs = rng.gen_range(1..9usize);
            let mut nets: Vec<NetId> = (0..n_inputs)
                .map(|i| c.add_input(format!("i{i}")).unwrap())
                .collect();
            let n_gates = rng.gen_range(1..30usize);
            for g in 0..n_gates {
                let ty = GateType::ALL[rng.gen_range(0..GateType::ALL.len())];
                let arity = match ty {
                    GateType::Const0 | GateType::Const1 => 0,
                    GateType::Not | GateType::Buf => 1,
                    _ => rng.gen_range(1..5usize),
                };
                let ins: Vec<NetId> = (0..arity)
                    .map(|_| nets[rng.gen_range(0..nets.len())])
                    .collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[rng.gen_range(0..nets.len())]);
            let raised = Aig::from_circuit(&c).unwrap().to_circuit().unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &raised).unwrap());
            // The raised netlist never grew: hashing and folding only shrink.
            proptest::prop_assert!(
                Aig::from_circuit(&raised).unwrap().num_ands()
                    <= Aig::from_circuit(&c).unwrap().num_ands()
            );
        }
    }
}
