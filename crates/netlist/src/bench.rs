//! Reading and writing the ISCAS-89 `.bench` netlist format.
//!
//! The `.bench` format is the lingua franca of the logic-locking literature:
//! the ISCAS'85 / ITC'99 benchmarks, the Valkyrie repository and the
//! HeLLO: CTF'22 circuits are all distributed in it. A file looks like
//!
//! ```text
//! # locked with 3 key bits
//! INPUT(G1)
//! INPUT(keyinput0)
//! OUTPUT(G17)
//! n1 = NAND(G1, keyinput0)
//! G17 = NOT(n1)
//! ```

use crate::circuit::{Circuit, NetId};
use crate::{GateType, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses `.bench` text into a [`Circuit`].
///
/// Gates may appear in any order (forward references are resolved), in line
/// with how synthesis tools emit these files.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines, unknown gate
/// keywords, or sequential elements (`DFF`), and the usual construction
/// errors for duplicate drivers.
pub fn parse(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    struct PendingGate {
        line: usize,
        output: String,
        ty: GateType,
        inputs: Vec<String>,
    }

    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut pending: Vec<PendingGate> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            inputs.push((line_no, rest.to_string()));
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push((line_no, rest.to_string()));
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: format!("expected `GATE(...)`, found `{rhs}`"),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: "missing closing parenthesis".into(),
            })?;
            let keyword = rhs[..open].trim();
            let ty = GateType::from_bench_keyword(keyword).map_err(|_| NetlistError::Parse {
                line: line_no,
                message: format!("unknown or unsupported gate `{keyword}` (sequential circuits are not supported)"),
            })?;
            let args = rhs[open + 1..close].trim();
            let gate_inputs: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_string()).collect()
            };
            if gate_inputs.iter().any(|s| s.is_empty()) {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "empty operand in gate argument list".into(),
                });
            }
            pending.push(PendingGate {
                line: line_no,
                output,
                ty,
                inputs: gate_inputs,
            });
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognised line `{line}`"),
            });
        }
    }

    let mut circuit = Circuit::new(name);
    let mut net_of: HashMap<String, NetId> = HashMap::new();
    for (line, input) in &inputs {
        let id = circuit.add_input(input.clone()).map_err(|e| match e {
            NetlistError::DuplicateNet(n) => NetlistError::Parse {
                line: *line,
                message: format!("input `{n}` declared twice"),
            },
            other => other,
        })?;
        net_of.insert(input.clone(), id);
    }

    // Resolve gates in dependency order: repeatedly add gates whose inputs
    // are all known. This handles arbitrary declaration order.
    let mut remaining = pending;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next_round = Vec::new();
        for gate in remaining {
            if gate.inputs.iter().all(|i| net_of.contains_key(i)) {
                let input_ids: Vec<NetId> = gate.inputs.iter().map(|i| net_of[i]).collect();
                let out = circuit
                    .add_gate(gate.ty, gate.output.clone(), &input_ids)
                    .map_err(|e| NetlistError::Parse {
                        line: gate.line,
                        message: e.to_string(),
                    })?;
                net_of.insert(gate.output, out);
                progressed = true;
            } else {
                next_round.push(gate);
            }
        }
        if !progressed {
            let gate = &next_round[0];
            let missing = gate
                .inputs
                .iter()
                .find(|i| !net_of.contains_key(*i))
                .cloned()
                .unwrap_or_default();
            return Err(NetlistError::Parse {
                line: gate.line,
                message: format!(
                    "net `{missing}` used by `{}` is never defined (or the netlist is cyclic)",
                    gate.output
                ),
            });
        }
        remaining = next_round;
    }

    for (line, output) in &outputs {
        let id = net_of
            .get(output)
            .copied()
            .ok_or_else(|| NetlistError::Parse {
                line: *line,
                message: format!("output `{output}` is never defined"),
            })?;
        circuit.mark_output(id);
    }
    Ok(circuit)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serialises a circuit to `.bench` text: a header comment, `INPUT`/`OUTPUT`
/// declarations, then one line per gate in topological order.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic (no topological order exists).
pub fn write(circuit: &Circuit) -> Result<String, NetlistError> {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );
    for &input in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net_name(input));
    }
    for &output in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net_name(output));
    }
    let _ = writeln!(out);
    for gid in crate::analysis::topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let args: Vec<&str> = gate.inputs.iter().map(|&n| circuit.net_name(n)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.net_name(gate.output),
            gate.ty.bench_keyword(),
            args.join(", ")
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustively_equivalent;

    const C17: &str = r#"
# c17 from ISCAS'85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)

G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"#;

    #[test]
    fn parses_c17_and_simulates() {
        let c = parse("c17", C17).unwrap();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 6);
        // G1..G7 = 0 -> all NAND outputs of zeros are 1, G22 = NAND(1,1) = 0.
        let out = c.simulate(&[false; 5]).unwrap();
        assert_eq!(out, vec![false, false]);
        // All ones: G10 = NAND(1,1)=0, G11=0, G16=NAND(1,0)=1, G19=NAND(0,1)=1,
        // G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        let out = c.simulate(&[true; 5]).unwrap();
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn round_trip_preserves_function_and_interface() {
        let c = parse("c17", C17).unwrap();
        let text = write(&c).unwrap();
        let d = parse("c17", &text).unwrap();
        assert_eq!(c.num_inputs(), d.num_inputs());
        assert_eq!(c.num_outputs(), d.num_outputs());
        assert_eq!(c.num_gates(), d.num_gates());
        assert!(exhaustively_equivalent(&c, &d).unwrap());
    }

    #[test]
    fn forward_references_are_resolved() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUF(a)\n";
        let c = parse("fwd", text).unwrap();
        assert_eq!(c.simulate(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUF(a)\n";
        let c = parse("cmt", text).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn constants_parse() {
        let text = "INPUT(a)\nOUTPUT(y)\none = CONST1()\ny = AND(a, one)\n";
        let c = parse("const", text).unwrap();
        assert_eq!(c.simulate(&[true]).unwrap(), vec![true]);
        assert_eq!(c.simulate(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n";
        match parse("dff", text) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        match parse("ghost", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("ghost"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = "INPUT(a)\nOUTPUT(y)\nthis is not bench\n";
        assert!(matches!(
            parse("bad", text),
            Err(NetlistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn undefined_output_is_an_error() {
        let text = "INPUT(a)\nOUTPUT(nope)\ny = BUF(a)\n";
        assert!(parse("undef", text).is_err());
    }

    #[test]
    fn key_inputs_recognised_after_parse() {
        let text = "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n";
        let c = parse("locked", text).unwrap();
        assert_eq!(c.key_inputs().len(), 1);
        assert_eq!(c.data_inputs().len(), 1);
    }
}
