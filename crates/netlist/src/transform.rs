//! Functionality-preserving and key-aware circuit transformations.
//!
//! These are the building blocks of KRATT's *logic removal* (unit extraction
//! and unit-stripped-circuit construction), of the *circuit modification*
//! step of the oracle-less attack, and of the SCOPE-style constant
//! propagation analysis. They all construct new [`Circuit`]s and preserve net
//! names wherever possible so that nets (in particular protected primary
//! inputs and key inputs) can be correlated across the transformed circuits.

use crate::analysis::{self, fanin_cone_gates};
use crate::circuit::{Circuit, GateId, NetId};
use crate::{GateType, NetlistError};
use std::collections::{HashMap, HashSet};

/// Extracts the fan-in cones of `roots` into a standalone circuit.
///
/// Traversal stops at primary inputs and at any net listed in `cut_points`;
/// both become primary inputs of the extracted circuit (keeping their names).
/// The roots become the primary outputs of the extracted circuit, in the
/// given order. This implements both the *locking/restore unit* extraction
/// (roots = `[cs1]`) and the *locked subcircuit* extraction (roots = locked
/// primary outputs, on the unit-stripped circuit) of the paper.
///
/// # Errors
///
/// Returns an error if a root is unknown or the source circuit is cyclic.
pub fn extract_cone(
    circuit: &Circuit,
    roots: &[NetId],
    cut_points: &[NetId],
) -> Result<Circuit, NetlistError> {
    let cuts: HashSet<NetId> = cut_points.iter().copied().collect();
    let mut extracted = Circuit::new(format!("{}_cone", circuit.name()));

    // Collect the gates in the cone, stopping at cuts and primary inputs.
    let mut cone_gates: HashSet<GateId> = HashSet::new();
    let mut boundary: Vec<NetId> = Vec::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = roots.to_vec();
    for &r in roots {
        seen.insert(r);
    }
    while let Some(net) = stack.pop() {
        if cuts.contains(&net) || circuit.driver(net).is_none() {
            boundary.push(net);
            continue;
        }
        let gid = circuit.driver(net).expect("checked above");
        if cone_gates.insert(gid) {
            for &input in &circuit.gate(gid).inputs {
                if seen.insert(input) {
                    stack.push(input);
                }
            }
        }
    }

    // Inputs of the extracted circuit: original primary-input order first,
    // then cut points in their given order. This keeps PPIs in a stable,
    // reproducible order.
    let boundary_set: HashSet<NetId> = boundary.iter().copied().collect();
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        if boundary_set.contains(&pi) {
            let new = extracted.add_input(circuit.net_name(pi))?;
            map.insert(pi, new);
        }
    }
    for &cut in cut_points {
        if boundary_set.contains(&cut) && !map.contains_key(&cut) {
            let new = extracted.add_input(circuit.net_name(cut))?;
            map.insert(cut, new);
        }
    }

    // Copy gates in topological order restricted to the cone.
    for gid in analysis::topological_order(circuit)? {
        if !cone_gates.contains(&gid) {
            continue;
        }
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|n| {
                map.get(n).copied().ok_or_else(|| {
                    NetlistError::Transform(format!(
                        "net `{}` escapes the extracted cone",
                        circuit.net_name(*n)
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let out = extracted.add_gate(gate.ty, circuit.net_name(gate.output), &inputs)?;
        map.insert(gate.output, out);
    }

    for &root in roots {
        let mapped = map.get(&root).copied().ok_or_else(|| {
            NetlistError::Transform(format!("root `{}` not found", circuit.net_name(root)))
        })?;
        extracted.mark_output(mapped);
    }
    Ok(extracted)
}

/// Builds the *unit-stripped circuit* (USC): a copy of `circuit` in which the
/// net `cut` is no longer driven by its logic cone but becomes an additional
/// primary input. Logic shared between the cut cone and the rest of the
/// circuit is preserved (it is re-created where still needed); logic that
/// only served the cut net disappears. Key inputs that end up unused remain
/// declared so the interface is stable.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn remove_cone(circuit: &Circuit, cut: NetId) -> Result<Circuit, NetlistError> {
    let mut usc = Circuit::new(format!("{}_usc", circuit.name()));
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = usc.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    // The cut net becomes a fresh primary input carrying its original name
    // (unless it already is a primary input, in which case nothing changes).
    if circuit.driver(cut).is_some() {
        let new = usc.add_input(circuit.net_name(cut))?;
        map.insert(cut, new);
    }

    // Gates needed by the outputs, with traversal stopping at `cut`.
    let mut needed: HashSet<GateId> = HashSet::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = circuit.outputs().to_vec();
    for &o in circuit.outputs() {
        seen.insert(o);
    }
    while let Some(net) = stack.pop() {
        if net == cut {
            continue;
        }
        if let Some(gid) = circuit.driver(net) {
            if needed.insert(gid) {
                for &input in &circuit.gate(gid).inputs {
                    if seen.insert(input) {
                        stack.push(input);
                    }
                }
            }
        }
    }

    for gid in analysis::topological_order(circuit)? {
        if !needed.contains(&gid) {
            continue;
        }
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = usc.add_gate(gate.ty, circuit.net_name(gate.output), &inputs)?;
        map.insert(gate.output, out);
    }

    for &o in circuit.outputs() {
        usc.mark_output(map[&o]);
    }
    Ok(usc)
}

/// Replaces every use of the primary input named `from` with a primary input
/// named `to`, removing `from` from the interface. If `to` does not exist yet
/// it is created (appended after the existing inputs). This is KRATT's
/// circuit-modification step for DFLTs, where each protected primary input is
/// replaced by its associated key input inside the locked subcircuit.
///
/// # Errors
///
/// Returns an error if `from` is not a primary input of the circuit.
pub fn substitute_input(circuit: &Circuit, from: &str, to: &str) -> Result<Circuit, NetlistError> {
    let from_id = circuit
        .find_net(from)
        .filter(|&n| circuit.is_input(n))
        .ok_or_else(|| NetlistError::Transform(format!("`{from}` is not a primary input")))?;

    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        if pi == from_id {
            continue;
        }
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    let to_id = match circuit.find_net(to).filter(|&n| circuit.is_input(n)) {
        Some(existing) => map[&existing],
        None => result.add_input(to)?,
    };
    map.insert(from_id, to_id);

    for gid in analysis::topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = result.add_gate(gate.ty, circuit.net_name(gate.output), &inputs)?;
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        result.mark_output(map[&o]);
    }
    Ok(result)
}

/// Ties the given primary inputs to constants, removes them from the
/// interface and propagates the constants through the logic (the resulting
/// circuit is simplified as by [`propagate_constants`]).
///
/// # Errors
///
/// Returns an error if an assignment does not name a primary input or the
/// circuit is cyclic.
pub fn set_inputs_constant(
    circuit: &Circuit,
    assignments: &[(NetId, bool)],
) -> Result<Circuit, NetlistError> {
    for &(net, _) in assignments {
        if !circuit.is_input(net) {
            return Err(NetlistError::Transform(format!(
                "`{}` is not a primary input",
                circuit.net_name(net)
            )));
        }
    }
    let pinned: HashMap<NetId, bool> = assignments.iter().copied().collect();
    rebuild_simplified(circuit, &pinned)
}

/// Folds constant gates, simplifies gates with constant inputs, collapses
/// single-input gates and removes logic not reachable from any primary
/// output. The primary interface (inputs and outputs, including unused
/// inputs) is preserved.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn propagate_constants(circuit: &Circuit) -> Result<Circuit, NetlistError> {
    rebuild_simplified(circuit, &HashMap::new())
}

/// Removes gates that do not feed any primary output (dangling logic) while
/// leaving everything else untouched.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn prune_dangling(circuit: &Circuit) -> Result<Circuit, NetlistError> {
    let needed = fanin_cone_gates(circuit, circuit.outputs());
    let mut result = Circuit::new(circuit.name().to_string());
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in circuit.inputs() {
        let new = result.add_input(circuit.net_name(pi))?;
        map.insert(pi, new);
    }
    for gid in analysis::topological_order(circuit)? {
        if !needed.contains(&gid) {
            continue;
        }
        let gate = circuit.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = result.add_gate(gate.ty, circuit.net_name(gate.output), &inputs)?;
        map.insert(gate.output, out);
    }
    for &o in circuit.outputs() {
        match map.get(&o) {
            Some(&mapped) => result.mark_output(mapped),
            None => {
                // An output can only be missing if it is a primary input that
                // was already mapped, so this is unreachable; keep a defensive
                // error for malformed circuits.
                return Err(NetlistError::Transform(format!(
                    "output `{}` has no driver and is not an input",
                    circuit.net_name(o)
                )));
            }
        }
    }
    Ok(result)
}

/// How a source net is represented in the simplified circuit.
#[derive(Debug, Clone, Copy)]
enum Simplified {
    Constant(bool),
    Net(NetId),
}

/// Core constant-propagation rebuild shared by [`propagate_constants`] and
/// [`set_inputs_constant`]. Pinned primary inputs are dropped from the
/// interface and treated as constants.
fn rebuild_simplified(
    circuit: &Circuit,
    pinned: &HashMap<NetId, bool>,
) -> Result<Circuit, NetlistError> {
    let mut result = Circuit::new(circuit.name().to_string());
    let mut repr: HashMap<NetId, Simplified> = HashMap::new();

    for &pi in circuit.inputs() {
        match pinned.get(&pi) {
            Some(&value) => {
                repr.insert(pi, Simplified::Constant(value));
            }
            None => {
                let new = result.add_input(circuit.net_name(pi))?;
                repr.insert(pi, Simplified::Net(new));
            }
        }
    }

    for gid in analysis::topological_order(circuit)? {
        let gate = circuit.gate(gid);
        let name = circuit.net_name(gate.output);
        let simplified = simplify_gate(&mut result, gate.ty, &gate.inputs, &repr, name)?;
        repr.insert(gate.output, simplified);
    }

    for &o in circuit.outputs() {
        let want = circuit.net_name(o);
        let mapped = match repr[&o] {
            Simplified::Net(n) => n,
            Simplified::Constant(value) => {
                // Materialise the constant so the output keeps its width. Use
                // the original name when it is still free, otherwise a fresh
                // one derived from it.
                let ty = if value {
                    GateType::Const1
                } else {
                    GateType::Const0
                };
                if result.find_net(want).is_none() {
                    result.add_gate(ty, want, &[])?
                } else {
                    result.add_gate_auto(ty, want, &[])?
                }
            }
        };
        // Collapsing buffers may have left the output value on a net with an
        // internal name; the output names are part of the preserved interface,
        // so restore the original one — by renaming the net when that is safe,
        // or through a keeper buffer when the net is a primary input, already
        // carries another output's name, or the name is claimed elsewhere.
        let finalised = if result.net_name(mapped) == want {
            mapped
        } else if !result.is_input(mapped)
            && !result.is_output(mapped)
            && result.find_net(want).is_none()
        {
            result.rename_net(mapped, want)?;
            mapped
        } else {
            add_named(&mut result, GateType::Buf, want, &[mapped])?
        };
        result.mark_output(finalised);
    }
    prune_dangling(&result)
}

/// Simplifies one gate given the representations of its inputs, adding at
/// most one gate to `result`.
fn simplify_gate(
    result: &mut Circuit,
    ty: GateType,
    inputs: &[NetId],
    repr: &HashMap<NetId, Simplified>,
    name: &str,
) -> Result<Simplified, NetlistError> {
    use GateType::*;

    if matches!(ty, Const0) {
        return Ok(Simplified::Constant(false));
    }
    if matches!(ty, Const1) {
        return Ok(Simplified::Constant(true));
    }

    let mut const_inputs: Vec<bool> = Vec::new();
    let mut live_inputs: Vec<NetId> = Vec::new();
    for net in inputs {
        match repr[net] {
            Simplified::Constant(value) => const_inputs.push(value),
            Simplified::Net(n) => live_inputs.push(n),
        }
    }

    // Fully constant gate folds away.
    if live_inputs.is_empty() {
        // Re-evaluate the original gate semantics on the constant inputs.
        return Ok(Simplified::Constant(ty.eval(&const_inputs)));
    }

    match ty {
        And | Nand => {
            if const_inputs.iter().any(|&v| !v) {
                return Ok(Simplified::Constant(ty == Nand));
            }
            emit_reduced(result, ty, &live_inputs, name, false)
        }
        Or | Nor => {
            if const_inputs.iter().any(|&v| v) {
                return Ok(Simplified::Constant(ty == Or));
            }
            emit_reduced(result, ty, &live_inputs, name, false)
        }
        Xor | Xnor => {
            let ones = const_inputs.iter().filter(|&&v| v).count();
            let flip = ones % 2 == 1;
            emit_reduced(result, ty, &live_inputs, name, flip)
        }
        Not | Buf => {
            // Single live input, no constants possible here (handled above).
            let source = live_inputs[0];
            if ty == Buf {
                Ok(Simplified::Net(source))
            } else {
                let out = add_named(result, Not, name, &[source])?;
                Ok(Simplified::Net(out))
            }
        }
        Const0 | Const1 => unreachable!("handled above"),
    }
}

/// Emits a gate over the remaining live inputs, applying the parity flip for
/// XOR/XNOR and degenerating to BUF/NOT when a single input remains.
fn emit_reduced(
    result: &mut Circuit,
    ty: GateType,
    live: &[NetId],
    name: &str,
    flip: bool,
) -> Result<Simplified, NetlistError> {
    use GateType::*;
    let effective = if flip { ty.complement() } else { ty };
    if live.len() == 1 {
        let inverting = effective.is_inverting();
        if inverting {
            let out = add_named(result, Not, name, &[live[0]])?;
            Ok(Simplified::Net(out))
        } else {
            Ok(Simplified::Net(live[0]))
        }
    } else {
        let out = add_named(result, effective, name, live)?;
        Ok(Simplified::Net(out))
    }
}

/// Adds a gate using `name` when free, otherwise a fresh name derived from it.
fn add_named(
    result: &mut Circuit,
    ty: GateType,
    name: &str,
    inputs: &[NetId],
) -> Result<NetId, NetlistError> {
    if result.find_net(name).is_none() {
        result.add_gate(ty, name, inputs)
    } else {
        result.add_gate_auto(ty, name, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{exhaustively_equivalent, Simulator};

    /// y1 = (a XOR k0) AND b; y2 = NOT(a XOR k0).
    fn locked_toy() -> Circuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let k0 = c.add_input("keyinput0").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k0]).unwrap();
        let y1 = c.add_gate(GateType::And, "y1", &[x, b]).unwrap();
        let y2 = c.add_gate(GateType::Not, "y2", &[x]).unwrap();
        c.mark_output(y1);
        c.mark_output(y2);
        c
    }

    #[test]
    fn extract_cone_keeps_names_and_function() {
        let c = locked_toy();
        let y2 = c.find_net("y2").unwrap();
        let cone = extract_cone(&c, &[y2], &[]).unwrap();
        assert_eq!(cone.num_outputs(), 1);
        // Support of y2 is {a, keyinput0}.
        let names: Vec<&str> = cone.inputs().iter().map(|&n| cone.net_name(n)).collect();
        assert_eq!(names, vec!["a", "keyinput0"]);
        // y2 = NOT(a XOR k0): check a couple of patterns.
        assert_eq!(cone.simulate(&[false, false]).unwrap(), vec![true]);
        assert_eq!(cone.simulate(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn extract_cone_with_cut_point() {
        let c = locked_toy();
        let y1 = c.find_net("y1").unwrap();
        let x = c.find_net("x").unwrap();
        let cone = extract_cone(&c, &[y1], &[x]).unwrap();
        // With x cut, the cone is just the AND gate with inputs {b, x}.
        assert_eq!(cone.num_gates(), 1);
        let names: Vec<&str> = cone.inputs().iter().map(|&n| cone.net_name(n)).collect();
        assert!(names.contains(&"b"));
        assert!(names.contains(&"x"));
    }

    #[test]
    fn remove_cone_exposes_cut_as_input_and_keeps_shared_logic() {
        let c = locked_toy();
        let x = c.find_net("x").unwrap();
        let usc = remove_cone(&c, x).unwrap();
        // The XOR gate disappears, x is now an input; both outputs remain.
        assert!(usc.find_net("x").is_some());
        let x_new = usc.find_net("x").unwrap();
        assert!(usc.is_input(x_new));
        assert_eq!(usc.num_outputs(), 2);
        assert_eq!(usc.num_gates(), 2); // AND and NOT survive
                                        // All original inputs (a, b, keyinput0) are still declared.
        assert_eq!(usc.num_inputs(), 4);
    }

    #[test]
    fn substitute_input_replaces_uses() {
        let c = locked_toy();
        let modified = substitute_input(&c, "a", "keyinput0").unwrap();
        // `a` is gone; x = XOR(keyinput0, keyinput0) which is constant 0 after
        // propagation, but substitution itself does not simplify.
        assert!(modified.find_net("a").is_none());
        assert_eq!(modified.num_inputs(), 2);
        let sim = Simulator::new(&modified).unwrap();
        // inputs are now [b, keyinput0]; x = k ^ k = 0, y1 = 0 AND b = 0, y2 = 1.
        assert_eq!(sim.run(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn substitute_input_can_introduce_fresh_input() {
        let c = locked_toy();
        let modified = substitute_input(&c, "a", "brand_new").unwrap();
        assert!(modified.find_net("brand_new").is_some());
        assert_eq!(modified.num_inputs(), 3);
    }

    #[test]
    fn set_inputs_constant_simplifies() {
        let c = locked_toy();
        let k0 = c.find_net("keyinput0").unwrap();
        let simplified = set_inputs_constant(&c, &[(k0, false)]).unwrap();
        // With k0 = 0: x = a, y1 = a AND b, y2 = NOT a. The XOR disappears.
        assert_eq!(simplified.num_inputs(), 2);
        assert!(simplified.num_gates() <= 2);
        let sim = Simulator::new(&simplified).unwrap();
        assert_eq!(sim.run(&[true, true]).unwrap(), vec![true, false]);
        assert_eq!(sim.run(&[false, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn constant_propagation_preserves_function() {
        let mut c = Circuit::new("consts");
        let a = c.add_input("a").unwrap();
        let one = c.add_gate(GateType::Const1, "one", &[]).unwrap();
        let zero = c.add_gate(GateType::Const0, "zero", &[]).unwrap();
        let x = c.add_gate(GateType::And, "x", &[a, one]).unwrap();
        let y = c.add_gate(GateType::Or, "y", &[x, zero]).unwrap();
        let z = c.add_gate(GateType::Xor, "z", &[y, one]).unwrap();
        c.mark_output(z);
        let simplified = propagate_constants(&c).unwrap();
        assert!(exhaustively_equivalent(&c, &simplified).unwrap());
        // z = NOT a after simplification: exactly one gate.
        assert_eq!(simplified.num_gates(), 1);
    }

    #[test]
    fn constant_output_is_materialised() {
        let mut c = Circuit::new("constout");
        let a = c.add_input("a").unwrap();
        let na = c.add_gate(GateType::Not, "na", &[a]).unwrap();
        let z = c.add_gate(GateType::And, "z", &[a, na]).unwrap();
        c.mark_output(z);
        let simplified = propagate_constants(&c).unwrap();
        assert_eq!(simplified.num_outputs(), 1);
        assert!(exhaustively_equivalent(&c, &simplified).unwrap());
    }

    #[test]
    fn buffer_collapse_keeps_output_names() {
        // y = BUF(inner) collapses, but the output must still be called `y`:
        // the net gets renamed when that is safe, and a keeper buffer is
        // inserted when the value lands on a primary input or a net that
        // already carries another output's name.
        let mut c = Circuit::new("bufout");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let inner = c.add_gate(GateType::And, "inner", &[a, b]).unwrap();
        let y = c.add_gate(GateType::Buf, "y", &[inner]).unwrap();
        let z = c.add_gate(GateType::Buf, "z", &[inner]).unwrap();
        let w = c.add_gate(GateType::Buf, "w", &[a]).unwrap();
        c.mark_output(y);
        c.mark_output(z);
        c.mark_output(w);
        let simplified = propagate_constants(&c).unwrap();
        let names: Vec<&str> = simplified
            .outputs()
            .iter()
            .map(|&n| simplified.net_name(n))
            .collect();
        assert_eq!(names, vec!["y", "z", "w"]);
        // `w` aliases the input `a`, which must keep its own name.
        assert!(simplified.find_net("a").is_some());
        assert!(exhaustively_equivalent(&c, &simplified).unwrap());
    }

    #[test]
    fn prune_dangling_removes_unused_logic_only() {
        let mut c = locked_toy();
        let a = c.find_net("a").unwrap();
        let b = c.find_net("b").unwrap();
        c.add_gate(GateType::Nor, "unused", &[a, b]).unwrap();
        let pruned = prune_dangling(&c).unwrap();
        assert_eq!(pruned.num_gates(), 3);
        assert!(pruned.find_net("unused").is_none());
        assert!(exhaustively_equivalent(&c, &pruned).unwrap());
    }

    #[test]
    fn errors_on_bad_arguments() {
        let c = locked_toy();
        let y1 = c.find_net("y1").unwrap();
        assert!(substitute_input(&c, "y1", "a").is_err());
        assert!(substitute_input(&c, "ghost", "a").is_err());
        assert!(set_inputs_constant(&c, &[(y1, true)]).is_err());
    }

    proptest::proptest! {
        /// Constant propagation never changes the circuit function.
        #[test]
        fn prop_constant_propagation_equivalent(seed in 0u64..200) {
            let c = random_circuit(seed);
            let simplified = propagate_constants(&c).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&c, &simplified).unwrap());
        }

        /// Pinning an input agrees with simulating the original circuit with
        /// that input held constant.
        #[test]
        fn prop_pinning_matches_simulation(seed in 0u64..200, value: bool) {
            let c = random_circuit(seed);
            let pin = c.inputs()[0];
            let pinned = set_inputs_constant(&c, &[(pin, value)]).unwrap();
            let sim_orig = Simulator::new(&c).unwrap();
            let sim_pin = Simulator::new(&pinned).unwrap();
            let remaining = c.num_inputs() - 1;
            for pattern in 0u64..(1u64 << remaining) {
                let rest: Vec<bool> = (0..remaining).map(|i| pattern >> i & 1 != 0).collect();
                let mut full = vec![value];
                full.extend(&rest);
                proptest::prop_assert_eq!(sim_orig.run(&full).unwrap(), sim_pin.run(&rest).unwrap());
            }
        }
    }

    /// Small deterministic pseudo-random circuit for property tests.
    fn random_circuit(seed: u64) -> Circuit {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(format!("rand{seed}"));
        let n_inputs = 4;
        let mut nets: Vec<NetId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        // Sprinkle in constants sometimes so propagation has work to do.
        if seed.is_multiple_of(3) {
            nets.push(c.add_gate(GateType::Const1, "konst1", &[]).unwrap());
            nets.push(c.add_gate(GateType::Const0, "konst0", &[]).unwrap());
        }
        let binary = [
            GateType::And,
            GateType::Nand,
            GateType::Or,
            GateType::Nor,
            GateType::Xor,
            GateType::Xnor,
        ];
        for g in 0..10 {
            let ty = binary[rng.gen_range(0..binary.len())];
            let a = nets[rng.gen_range(0..nets.len())];
            let b = nets[rng.gen_range(0..nets.len())];
            let out = c.add_gate(ty, format!("g{g}"), &[a, b]).unwrap();
            nets.push(out);
        }
        let last = *nets.last().unwrap();
        c.mark_output(last);
        c.mark_output(nets[nets.len() - 2]);
        c
    }
}
