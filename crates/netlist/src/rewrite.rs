//! Cut-based rewriting over the [`Aig`], in the style of ABC's `rewrite`.
//!
//! For every AND node (in topological order) the pass enumerates the
//! 4-feasible cuts, computes each cut's 16-bit truth table, canonises it
//! under NPN equivalence (input permutation, input complementation, output
//! complementation) and looks the canonical class up in a precomputed
//! library of minimum-cost subgraphs ([`crate::rewrite_table`]). A
//! replacement is accepted greedily when the library subgraph is smaller
//! than the node's maximum fanout-free cone over the cut — the nodes that
//! would actually be freed — so a pass never grows the network. The result
//! is rebuilt into a fresh, structurally hashed [`Aig`] with the primary
//! interface (input and output names and order) preserved.
//!
//! Every accepted replacement is re-verified numerically before any node is
//! built: the library subgraph is simulated over the cut's leaf truth
//! tables and must reproduce the cut function bit-for-bit, so a library or
//! transform bug degrades to a skipped cut, never to a miscompiled network.

use crate::aig::{Aig, AigLit};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Cuts kept per node (smallest-leaf-count first; the trivial unit cut is
/// always kept so parents can merge through the node).
const MAX_CUTS: usize = 8;

/// Truth tables of the four projection functions `x0..x3` over a 4-input
/// minterm index.
const VAR_TT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// One NPN transform: `apply(f)(y) = f(x_i = y[perm[i]] ^ flips[i]) ^ out`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct NpnTransform {
    /// Source variable `x_i` reads target variable `y[perm[i]]`.
    pub perm: [u8; 4],
    /// Bit `i` complements source variable `x_i`.
    pub flips: u8,
    /// Complement the output.
    pub out: bool,
}

impl NpnTransform {
    /// The 16-entry minterm index map of the permutation/flip part: output
    /// minterm `m` reads input minterm `table[m]`.
    fn index_table(self) -> [u8; 16] {
        let mut table = [0u8; 16];
        for (m, slot) in table.iter_mut().enumerate() {
            let mut s = 0u16;
            for i in 0..4 {
                let bit = ((m as u16 >> self.perm[i]) & 1) ^ u16::from((self.flips >> i) & 1);
                s |= bit << i;
            }
            *slot = s as u8;
        }
        table
    }

    /// Applies the transform to a truth table.
    #[cfg(test)]
    pub fn apply(self, tt: u16) -> u16 {
        apply_table(&self.index_table(), self.out, tt)
    }
}

fn apply_table(table: &[u8; 16], out: bool, tt: u16) -> u16 {
    let mut r = 0u16;
    for (m, &s) in table.iter().enumerate() {
        if (tt >> s) & 1 != 0 {
            r |= 1 << m;
        }
    }
    if out {
        !r
    } else {
        r
    }
}

const PERMS: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// All 768 NPN transforms with their precomputed index tables.
fn transforms() -> &'static [(NpnTransform, [u8; 16])] {
    static TABLE: OnceLock<Vec<(NpnTransform, [u8; 16])>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut all = Vec::with_capacity(768);
        for perm in PERMS {
            for flips in 0..16u8 {
                let t = NpnTransform {
                    perm,
                    flips,
                    out: false,
                };
                let table = t.index_table();
                all.push((t, table));
                all.push((NpnTransform { out: true, ..t }, table));
            }
        }
        all
    })
}

/// The NPN-canonical representative of `tt` (the minimum image over all 768
/// transforms) and a transform `t` with `t.apply(tt) == canonical`.
pub(crate) fn npn_canonical(tt: u16) -> (u16, NpnTransform) {
    let mut best = u16::MAX;
    let mut best_t = NpnTransform {
        perm: [0, 1, 2, 3],
        flips: 0,
        out: false,
    };
    for &(t, ref table) in transforms() {
        let image = apply_table(table, t.out, tt);
        if image < best {
            best = image;
            best_t = t;
        }
    }
    (best, best_t)
}

/// A library entry's payload: the root literal plus the AND-node list.
type LibraryEntry = (u8, &'static [(u8, u8)]);

/// The canonical-class index over the generated library.
fn library_index() -> &'static HashMap<u16, LibraryEntry> {
    static INDEX: OnceLock<HashMap<u16, LibraryEntry>> = OnceLock::new();
    INDEX.get_or_init(|| {
        crate::rewrite_table::LIBRARY
            .iter()
            .map(|&(tt, root, nodes)| (tt, (root, nodes)))
            .collect()
    })
}

/// A cut: sorted leaf nodes plus the root's truth table over them (padded
/// to 4 variables; the table is independent of variables past the leaf
/// count).
#[derive(Clone, Debug)]
struct Cut {
    leaves: Vec<u32>,
    tt: u16,
}

/// Re-expresses `tt` (defined over leaf list `old`) over the superset leaf
/// list `new`. Both lists are sorted; `old ⊆ new`, both of length ≤ 4.
fn expand_tt(tt: u16, old: &[u32], new: &[u32]) -> u16 {
    if old.len() == new.len() {
        return tt;
    }
    let mut pos = [0usize; 4];
    for (i, leaf) in old.iter().enumerate() {
        pos[i] = new
            .iter()
            .position(|l| l == leaf)
            .expect("old cut leaves are a subset of the merged cut");
    }
    let mut r = 0u16;
    for m in 0..16u16 {
        let mut s = 0u16;
        for (i, &p) in pos.iter().enumerate().take(old.len()) {
            s |= ((m >> p) & 1) << i;
        }
        if (tt >> s) & 1 != 0 {
            r |= 1 << m;
        }
    }
    r
}

/// Sorted union of two sorted leaf lists, or `None` when it exceeds 4.
fn merge_leaves(a: &[u32], b: &[u32]) -> Option<Vec<u32>> {
    let mut merged = Vec::with_capacity(4);
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if merged.len() == 4 {
            return None;
        }
        merged.push(next);
    }
    Some(merged)
}

/// What the rebuild does with one original node.
#[derive(Clone, Debug)]
enum Decision {
    /// Re-emit the node as the AND of its mapped fanins.
    Copy,
    /// The node is constant over one of its cuts.
    Const(bool),
    /// The node equals a (possibly complemented) cut leaf.
    Alias { leaf: u32, compl: bool },
    /// Replace with a library subgraph over the cut leaves.
    Replace {
        leaves: Vec<u32>,
        /// `assign[j]` drives library input `y_j`: index into `leaves` plus
        /// an input complement.
        assign: [Option<(usize, bool)>; 4],
        root: u8,
        nodes: &'static [(u8, u8)],
        /// Complement the subgraph root.
        out: bool,
    },
}

/// Size of the node's maximum fanout-free cone above the cut leaves: the
/// AND nodes (including the root) that no path outside the cone references,
/// i.e. exactly the nodes a replacement would free. Decrements `refs` while
/// walking and restores it before returning.
fn mffc_size(aig: &Aig, refs: &mut [u32], node: u32, leaves: &[u32]) -> u32 {
    fn deref(aig: &Aig, refs: &mut [u32], node: u32, leaves: &[u32], freed: &mut Vec<u32>) -> u32 {
        let mut size = 1;
        let (f0, f1) = aig.fanins(node);
        for f in [f0, f1] {
            let child = f.node();
            if child == 0 || !aig.is_and(child) || leaves.contains(&child) {
                continue;
            }
            refs[child as usize] -= 1;
            freed.push(child);
            if refs[child as usize] == 0 {
                size += deref(aig, refs, child, leaves, freed);
            }
        }
        size
    }
    let mut freed = Vec::new();
    let size = deref(aig, refs, node, leaves, &mut freed);
    for child in freed {
        refs[child as usize] += 1;
    }
    size
}

/// Evaluates a cut against the library: the best replacement decision and
/// its gain (nodes freed minus nodes added), or `None` when the cut's class
/// has no library entry or the entry fails re-verification.
fn evaluate_cut(
    cut: &Cut,
    mffc: u32,
    canon_memo: &mut HashMap<u16, (u16, NpnTransform)>,
) -> Option<(i64, Decision)> {
    // Constant and projection cuts are free rewrites.
    if cut.tt == 0x0000 {
        return Some((i64::from(mffc), Decision::Const(false)));
    }
    if cut.tt == 0xFFFF {
        return Some((i64::from(mffc), Decision::Const(true)));
    }
    for (i, &leaf) in cut.leaves.iter().enumerate() {
        if cut.tt == VAR_TT[i] {
            return Some((i64::from(mffc), Decision::Alias { leaf, compl: false }));
        }
        if cut.tt == !VAR_TT[i] {
            return Some((i64::from(mffc), Decision::Alias { leaf, compl: true }));
        }
    }

    let &mut (canonical, t) = canon_memo
        .entry(cut.tt)
        .or_insert_with(|| npn_canonical(cut.tt));
    let &(root, nodes) = library_index().get(&canonical)?;

    // Library input y[perm[i]] is driven by cut leaf i, complemented by
    // flips[i]; the root is complemented by the transform's output flag.
    let mut assign: [Option<(usize, bool)>; 4] = [None; 4];
    for i in 0..4 {
        assign[t.perm[i] as usize] = Some((i, (t.flips >> i) & 1 != 0));
    }

    // Re-verify numerically over the cut frame before trusting the entry.
    let mut node_tts: Vec<u16> = Vec::with_capacity(nodes.len());
    let leaf_tt = |lit: u8, node_tts: &[u16]| -> Option<u16> {
        let (reference, compl) = (lit >> 1, lit & 1 != 0);
        let tt = match reference {
            0 => 0x0000,
            1..=4 => {
                let (leaf_index, flip) = assign[reference as usize - 1]?;
                if leaf_index >= cut.leaves.len() {
                    return None;
                }
                if flip {
                    !VAR_TT[leaf_index]
                } else {
                    VAR_TT[leaf_index]
                }
            }
            _ => *node_tts.get(reference as usize - 5)?,
        };
        Some(if compl { !tt } else { tt })
    };
    for &(l0, l1) in nodes {
        let t0 = leaf_tt(l0, &node_tts)?;
        let t1 = leaf_tt(l1, &node_tts)?;
        node_tts.push(t0 & t1);
    }
    let root_tt = leaf_tt(root, &node_tts)?;
    let root_tt = if t.out { !root_tt } else { root_tt };
    if root_tt != cut.tt {
        return None;
    }

    let gain = i64::from(mffc) - nodes.len() as i64;
    Some((
        gain,
        Decision::Replace {
            leaves: cut.leaves.clone(),
            assign,
            root,
            nodes,
            out: t.out,
        },
    ))
}

/// Builds a library subgraph in `aig` over already-mapped leaf literals.
fn instantiate(
    aig: &mut Aig,
    leaves: &[AigLit],
    assign: &[Option<(usize, bool)>; 4],
    root: u8,
    nodes: &[(u8, u8)],
    out: bool,
) -> AigLit {
    let mut built: Vec<AigLit> = Vec::with_capacity(nodes.len());
    let decode = |lit: u8, built: &[AigLit]| -> AigLit {
        let (reference, compl) = (lit >> 1, lit & 1 != 0);
        let base = match reference {
            0 => AigLit::FALSE,
            1..=4 => {
                let (leaf_index, flip) = assign[reference as usize - 1]
                    .expect("verified entries only reference assigned inputs");
                let leaf = leaves[leaf_index];
                if flip {
                    leaf.complement()
                } else {
                    leaf
                }
            }
            _ => built[reference as usize - 5],
        };
        if compl {
            base.complement()
        } else {
            base
        }
    };
    for &(l0, l1) in nodes {
        let a = decode(l0, &built);
        let b = decode(l1, &built);
        let lit = aig.and(a, b);
        built.push(lit);
    }
    let lit = decode(root, &built);
    if out {
        lit.complement()
    } else {
        lit
    }
}

impl Aig {
    /// One greedy rewriting pass: returns a fresh, structurally hashed AIG
    /// computing the same outputs, with the primary interface (input and
    /// output names and order) preserved and unreferenced logic swept.
    ///
    /// See the module documentation for the algorithm. The pass is
    /// deterministic and idempotent in practice; callers wanting a fixpoint
    /// can iterate while [`Aig::num_ands`] keeps shrinking.
    pub fn rewrite(&self) -> Aig {
        let cone = self.cone(self.outputs());
        let mut refs = self.reference_counts(&cone);
        let mut canon_memo: HashMap<u16, (u16, NpnTransform)> = HashMap::new();

        // Phase 1: cuts + decisions, in the construction's topological order.
        let num_nodes = self.num_nodes();
        let mut cut_sets: Vec<Vec<Cut>> = Vec::with_capacity(num_nodes);
        let mut decisions: Vec<Decision> = vec![Decision::Copy; num_nodes];
        for node in 0..num_nodes as u32 {
            if node == 0 {
                cut_sets.push(vec![Cut {
                    leaves: Vec::new(),
                    tt: 0x0000,
                }]);
                continue;
            }
            let unit = Cut {
                leaves: vec![node],
                tt: VAR_TT[0],
            };
            if self.is_input(node) || !cone[node as usize] {
                cut_sets.push(vec![unit]);
                continue;
            }
            let (f0, f1) = self.fanins(node);
            let mut cuts: Vec<Cut> = Vec::new();
            for ca in &cut_sets[f0.node() as usize] {
                for cb in &cut_sets[f1.node() as usize] {
                    let Some(leaves) = merge_leaves(&ca.leaves, &cb.leaves) else {
                        continue;
                    };
                    if cuts.iter().any(|c| c.leaves == leaves) {
                        continue;
                    }
                    let ta = expand_tt(ca.tt, &ca.leaves, &leaves);
                    let ta = if f0.is_complemented() { !ta } else { ta };
                    let tb = expand_tt(cb.tt, &cb.leaves, &leaves);
                    let tb = if f1.is_complemented() { !tb } else { tb };
                    cuts.push(Cut {
                        leaves,
                        tt: ta & tb,
                    });
                }
            }
            cuts.sort_by_key(|c| c.leaves.len());
            cuts.truncate(MAX_CUTS - 1);

            let mut best: Option<(i64, Decision)> = None;
            for cut in &cuts {
                if cut.leaves.as_slice() == [node] {
                    continue;
                }
                let mffc = mffc_size(self, &mut refs, node, &cut.leaves);
                if let Some((gain, decision)) = evaluate_cut(cut, mffc, &mut canon_memo) {
                    if gain > 0 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, decision));
                    }
                }
            }
            if let Some((_, decision)) = best {
                decisions[node as usize] = decision;
            }
            cuts.push(unit);
            cut_sets.push(cuts);
        }

        // Phase 2: demand-driven rebuild from the outputs — nodes bypassed
        // by every replacement are never materialised.
        let mut out = Aig::new(self.name());
        for name in self.input_names() {
            out.add_input(name.clone());
        }
        let mut map: Vec<Option<AigLit>> = vec![None; num_nodes];
        map[0] = Some(AigLit::FALSE);
        for (&node, name) in self.input_nodes().iter().zip(self.input_names()) {
            map[node as usize] = Some(out.input_lit(name).expect("input was just added"));
        }
        let roots: Vec<u32> = self.outputs().iter().map(|l| l.node()).collect();
        let mut stack: Vec<u32> = roots;
        while let Some(&node) = stack.last() {
            if map[node as usize].is_some() {
                stack.pop();
                continue;
            }
            let deps: Vec<u32> = match &decisions[node as usize] {
                Decision::Copy => {
                    let (f0, f1) = self.fanins(node);
                    vec![f0.node(), f1.node()]
                }
                Decision::Const(_) => Vec::new(),
                Decision::Alias { leaf, .. } => vec![*leaf],
                Decision::Replace { leaves, .. } => leaves.clone(),
            };
            let pending: Vec<u32> = deps
                .iter()
                .copied()
                .filter(|&d| map[d as usize].is_none())
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let lit = match &decisions[node as usize] {
                Decision::Copy => {
                    let (f0, f1) = self.fanins(node);
                    let a = map[f0.node() as usize].expect("dependency built").when(
                        // `when` complements on `false`; keep the edge as-is.
                        !f0.is_complemented(),
                    );
                    let b = map[f1.node() as usize]
                        .expect("dependency built")
                        .when(!f1.is_complemented());
                    out.and(a, b)
                }
                Decision::Const(value) => AigLit::FALSE.when(!value),
                Decision::Alias { leaf, compl } => {
                    let base = map[*leaf as usize].expect("dependency built");
                    if *compl {
                        base.complement()
                    } else {
                        base
                    }
                }
                Decision::Replace {
                    leaves,
                    assign,
                    root,
                    nodes,
                    out: flip,
                } => {
                    let leaf_lits: Vec<AigLit> = leaves
                        .iter()
                        .map(|&l| map[l as usize].expect("dependency built"))
                        .collect();
                    instantiate(&mut out, &leaf_lits, assign, *root, nodes, *flip)
                }
            };
            map[node as usize] = Some(lit);
            stack.pop();
        }
        for (&lit, name) in self.outputs().iter().zip(self.output_names()) {
            let mapped = map[lit.node() as usize].expect("output cone was built");
            out.add_output(
                name.clone(),
                if lit.is_complemented() {
                    mapped.complement()
                } else {
                    mapped
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exhaustively compares two AIGs with identical input interfaces over
    /// every assignment (requires ≤ 12 inputs), using packed simulation in
    /// 64-pattern blocks.
    pub(crate) fn exhaustive_equivalent(a: &Aig, b: &Aig) -> bool {
        assert_eq!(a.input_names(), b.input_names(), "interfaces must match");
        assert_eq!(a.num_outputs(), b.num_outputs(), "interfaces must match");
        let n = a.num_inputs();
        assert!(n <= 12, "exhaustive sweep is bounded to 12 inputs");
        let patterns = 1u64 << n;
        let mut base = 0u64;
        while base < patterns {
            let lanes = (patterns - base).min(64) as usize;
            let words: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for lane in 0..lanes {
                        w |= ((base + lane as u64) >> i & 1) << lane;
                    }
                    w
                })
                .collect();
            let va = a.eval_words(&words);
            let vb = b.eval_words(&words);
            let mask = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            for (oa, ob) in a.outputs().iter().zip(b.outputs()) {
                if (a.lit_word(&va, *oa) ^ b.lit_word(&vb, *ob)) & mask != 0 {
                    return false;
                }
            }
            base += 64;
        }
        true
    }

    /// A random AND/OR/XOR soup over `inputs` inputs.
    fn random_soup(seed: u64, inputs: usize, gates: usize) -> Aig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aig = Aig::new(format!("soup{seed}"));
        let mut lits: Vec<AigLit> = (0..inputs)
            .map(|i| aig.add_input(format!("i{i}")))
            .collect();
        for _ in 0..gates {
            let a = lits[rng.gen_range(0..lits.len())].when(rng.gen());
            let b = lits[rng.gen_range(0..lits.len())].when(rng.gen());
            let lit = match rng.gen_range(0..3) {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            lits.push(lit);
        }
        for k in 0..3.min(lits.len()) {
            let lit = lits[lits.len() - 1 - k];
            aig.add_output(format!("o{k}"), lit);
        }
        aig
    }

    #[test]
    fn npn_transforms_compose_and_invert_consistently() {
        // Every transform maps the canonical form's preimage back: applying
        // the transform returned by `npn_canonical` must reproduce the
        // canonical truth table, for a spread of functions.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let tt: u16 = rng.gen();
            let (canonical, t) = npn_canonical(tt);
            assert_eq!(t.apply(tt), canonical);
            // Canonisation is idempotent and class-invariant.
            let (again, _) = npn_canonical(canonical);
            assert_eq!(again, canonical);
        }
    }

    #[test]
    fn npn_classes_of_all_functions_number_222() {
        let mut classes = std::collections::HashSet::new();
        for tt in 0..=u16::MAX {
            classes.insert(npn_canonical(tt).0);
        }
        assert_eq!(classes.len(), 222);
    }

    #[test]
    fn library_entries_compute_their_canonical_class() {
        assert!(
            !crate::rewrite_table::LIBRARY.is_empty(),
            "library must be generated (see rewrite_table.rs)"
        );
        for &(canonical, root, nodes) in crate::rewrite_table::LIBRARY {
            // Simulate the entry over the projection tables.
            let mut tts: Vec<u16> = Vec::with_capacity(nodes.len());
            let decode = |lit: u8, tts: &[u16]| -> u16 {
                let (reference, compl) = (lit >> 1, lit & 1 != 0);
                let tt = match reference {
                    0 => 0x0000,
                    1..=4 => VAR_TT[reference as usize - 1],
                    _ => tts[reference as usize - 5],
                };
                if compl {
                    !tt
                } else {
                    tt
                }
            };
            for &(l0, l1) in nodes {
                let v = decode(l0, &tts) & decode(l1, &tts);
                tts.push(v);
            }
            assert_eq!(decode(root, &tts), canonical, "entry {canonical:#06x}");
            // And the key really is canonical.
            assert_eq!(npn_canonical(canonical).0, canonical);
        }
    }

    proptest::proptest! {
        /// Rewriting random AND/OR/XOR soups preserves the function on
        /// every input pattern (exhaustive packed sweep) and never grows
        /// the live network.
        #[test]
        fn prop_rewrite_preserves_equivalence_on_random_soups(seed in 0u64..80) {
            let aig = random_soup(seed, 4 + (seed as usize % 7), 40);
            let rewritten = aig.rewrite();
            proptest::prop_assert!(
                exhaustive_equivalent(&aig, &rewritten),
                "seed {} changed function", seed
            );
            proptest::prop_assert!(
                rewritten.num_ands() <= aig.stats().ands,
                "seed {} grew: {} -> {}",
                seed, aig.stats().ands, rewritten.num_ands()
            );
            proptest::prop_assert!(rewritten.check_invariants().is_empty());
        }
    }

    #[test]
    fn rewrite_shrinks_a_redundant_network() {
        // A 2:1 mux built the long way round: s·t + ¬s·e plus a redundant
        // re-derivation of the same function; rewriting must collapse it.
        let mut aig = Aig::new("mux");
        let s = aig.add_input("s");
        let t = aig.add_input("t");
        let e = aig.add_input("e");
        let a = aig.and(s, t);
        let b = aig.and(s.complement(), e);
        let m = aig.or(a, b);
        // An XOR-shaped detour computing the same mux.
        let diff = aig.xor(t, e);
        let pick = aig.and(diff, s);
        let m2 = aig.xor(pick, e);
        let o = aig.xor(m, m2); // constant false
        aig.add_output("zero", o);
        aig.add_output("mux", m);
        let rewritten = aig.rewrite();
        assert!(exhaustive_equivalent(&aig, &rewritten));
        assert!(
            rewritten.num_ands() < aig.num_ands(),
            "{} -> {}",
            aig.num_ands(),
            rewritten.num_ands()
        );
    }

    #[test]
    fn rewrite_preserves_the_primary_interface() {
        let aig = random_soup(3, 6, 30);
        let rewritten = aig.rewrite();
        assert_eq!(aig.input_names(), rewritten.input_names());
        assert_eq!(aig.output_names(), rewritten.output_names());
    }

    #[test]
    fn rewrite_round_trips_through_circuits() {
        // Circuit -> AIG -> rewrite -> Circuit keeps the interface intact.
        let mut c = Circuit::new("host");
        let ins: Vec<_> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c
            .add_gate(crate::GateType::Xor, "g1", &[ins[0], ins[1]])
            .unwrap();
        let g2 = c
            .add_gate(crate::GateType::Nand, "g2", &[g1, ins[2], ins[3]])
            .unwrap();
        let g3 = c
            .add_gate(crate::GateType::Or, "g3", &[g2, ins[4]])
            .unwrap();
        c.mark_output(g3);
        let aig = Aig::from_circuit(&c).unwrap();
        let rewritten = aig.rewrite();
        let back = rewritten.to_circuit().unwrap();
        assert_eq!(back.num_outputs(), c.num_outputs());
        assert!(exhaustive_equivalent(&aig, &rewritten));
    }

    /// Generates `rewrite_table.rs`: BFS over minimum tree-cost AIGs of all
    /// functions reachable with ≤ 12 AND nodes, compressed to one best entry
    /// per NPN class, re-expressed in the canonical frame and verified.
    ///
    /// ```sh
    /// cargo test -p kratt-netlist --release generate_rewrite_table -- --ignored
    /// ```
    #[test]
    #[ignore = "regenerates src/rewrite_table.rs"]
    fn generate_rewrite_table() {
        const MAX_COST: usize = 12;
        const NONE: u8 = u8::MAX;
        // cost[tt], children[tt] = (ta, tb, polarities) with the raw child
        // tables; polarity bit 0 complements ta, bit 1 complements tb.
        let mut cost = vec![NONE; 65536];
        let mut children = vec![(0u16, 0u16, 0u8); 65536];
        let mut by_cost: Vec<Vec<u16>> = vec![Vec::new(); MAX_COST + 1];
        for tt in VAR_TT {
            cost[tt as usize] = 0;
            by_cost[0].push(tt);
        }
        for total in 1..=MAX_COST {
            let mut found: Vec<u16> = Vec::new();
            for ca in 0..total {
                let cb = total - 1 - ca;
                if ca > cb {
                    break;
                }
                for i in 0..by_cost[ca].len() {
                    let ta = by_cost[ca][i];
                    for &tb in &by_cost[cb] {
                        for pol in 0..4u8 {
                            let va = if pol & 1 != 0 { !ta } else { ta };
                            let vb = if pol & 2 != 0 { !tb } else { tb };
                            let t = va & vb;
                            if cost[t as usize] == NONE {
                                cost[t as usize] = total as u8;
                                children[t as usize] = (ta, tb, pol);
                                found.push(t);
                            }
                        }
                    }
                }
            }
            by_cost[total] = found;
        }

        // Best raw representative per NPN class.
        let mut classes: HashMap<u16, (u16, NpnTransform, u8)> = HashMap::new();
        for tt in 0..=u16::MAX {
            if cost[tt as usize] == NONE {
                continue;
            }
            let (canonical, t) = npn_canonical(tt);
            let entry = classes
                .entry(canonical)
                .or_insert((tt, t, cost[tt as usize]));
            if cost[tt as usize] < entry.2 || (cost[tt as usize] == entry.2 && tt < entry.0) {
                *entry = (tt, t, cost[tt as usize]);
            }
        }
        // Constants and projections are handled inline by the rewriter.
        let mut keys: Vec<u16> = classes
            .keys()
            .copied()
            .filter(|&c| c != 0x0000 && npn_canonical(VAR_TT[0]).0 != c)
            .collect();
        keys.sort_unstable();

        let mut body = String::new();
        for &canonical in &keys {
            let (raw, t, _) = classes[&canonical];
            // Emit the raw structure as a node list (shared by truth table).
            let mut nodes: Vec<(u8, u8)> = Vec::new();
            let mut memo: HashMap<u16, u8> = HashMap::new();
            fn emit(
                tt: u16,
                cost: &[u8],
                children: &[(u16, u16, u8)],
                t: NpnTransform,
                nodes: &mut Vec<(u8, u8)>,
                memo: &mut HashMap<u16, u8>,
            ) -> u8 {
                if let Some(&lit) = memo.get(&tt) {
                    return lit;
                }
                // Source variable x_i becomes y[perm[i]] ^ flips[i].
                if let Some(i) = VAR_TT.iter().position(|&v| v == tt) {
                    let flip = (t.flips >> i) & 1;
                    return (1 + t.perm[i]) * 2 + flip;
                }
                assert!(cost[tt as usize] > 0, "non-leaf entry");
                let (ta, tb, pol) = children[tt as usize];
                let la = emit(ta, cost, children, t, nodes, memo) ^ u8::from(pol & 1 != 0);
                let lb = emit(tb, cost, children, t, nodes, memo) ^ u8::from(pol & 2 != 0);
                let lit = (5 + nodes.len() as u8) * 2;
                nodes.push((la, lb));
                memo.insert(tt, lit);
                lit
            }
            let root = emit(raw, &cost, &children, t, &mut nodes, &mut memo) ^ u8::from(t.out);
            // Verify: the emitted entry must compute `canonical` over y0..y3.
            let mut tts: Vec<u16> = Vec::new();
            let decode = |lit: u8, tts: &[u16]| -> u16 {
                let (reference, compl) = (lit >> 1, lit & 1 != 0);
                let tt = match reference {
                    0 => 0x0000,
                    1..=4 => VAR_TT[reference as usize - 1],
                    _ => tts[reference as usize - 5],
                };
                if compl {
                    !tt
                } else {
                    tt
                }
            };
            for &(l0, l1) in &nodes {
                let v = decode(l0, &tts) & decode(l1, &tts);
                tts.push(v);
            }
            assert_eq!(
                decode(root, &tts),
                canonical,
                "re-expression failed for class {canonical:#06x} (raw {raw:#06x})"
            );
            let node_list: Vec<String> = nodes.iter().map(|(a, b)| format!("({a}, {b})")).collect();
            body.push_str(&format!(
                "    ({canonical:#06x}, {root}, &[{}]),\n",
                node_list.join(", ")
            ));
        }

        let text = format!(
            "{}\n#[rustfmt::skip]\n#[allow(clippy::type_complexity)]\npub(crate) const LIBRARY: &[(u16, u8, &[(u8, u8)])] = &[\n{}];\n",
            "//! Precomputed optimal-subgraph library for [`crate::rewrite`].\n//!\n//! GENERATED FILE — do not edit by hand. Regenerate with\n//!\n//! ```sh\n//! cargo test -p kratt-netlist --release generate_rewrite_table -- --ignored\n//! ```\n//!\n//! Each entry is `(canonical_tt, root, nodes)`: the NPN-canonical 4-input\n//! truth table, the root literal and the AND nodes of a minimum-tree-cost\n//! AIG implementing exactly that canonical function over inputs `y0..y3`.\n//! Literals encode `reference * 2 + complement` with references `0` =\n//! constant false, `1..=4` = inputs `y0..y3`, and `5 + k` = AND node `k`\n//! of the entry's node list (nodes are in topological order).\n\n/// The canonical-class library, one entry per reachable NPN class.",
            body
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/rewrite_table.rs");
        std::fs::write(path, text).expect("write rewrite_table.rs");
        println!(
            "wrote {} entries ({} classes reachable at tree-cost <= {MAX_COST})",
            keys.len(),
            classes.len()
        );
    }
}
