//! The [`Circuit`] data structure: a named, gate-level combinational netlist.

use crate::sim::GateSchedule;
use crate::{GateType, NetlistError, KEY_INPUT_PREFIX};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a net (a named wire) inside one [`Circuit`].
///
/// `NetId`s are dense indices; they are only meaningful relative to the
/// circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a gate inside one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single combinational gate: its type, input nets and the net it drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Boolean function computed by this gate.
    pub ty: GateType,
    /// Input nets, in declaration order.
    pub inputs: Vec<NetId>,
    /// The net driven by this gate.
    pub output: NetId,
}

#[derive(Debug, Clone)]
struct Net {
    name: String,
    driver: Option<GateId>,
    is_input: bool,
}

/// A gate-level combinational netlist.
///
/// A circuit owns a set of named nets, a set of gates (each driving exactly
/// one net), an ordered list of primary inputs and an ordered list of primary
/// outputs. Key inputs of a locked design are ordinary primary inputs whose
/// names start with [`KEY_INPUT_PREFIX`].
///
/// Structural invariants maintained by the construction API:
///
/// * every net is driven by at most one gate;
/// * a primary input is never driven by a gate;
/// * gate arities respect [`GateType::arity_ok`];
/// * net names are unique.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
    fresh_counter: u64,
    /// The compiled evaluation schedule, built lazily by
    /// [`Circuit::schedule`] and dropped by every structural mutation.
    schedule: OnceLock<Arc<GateSchedule>>,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
            fresh_counter: 0,
            schedule: OnceLock::new(),
        }
    }

    /// The circuit's compiled [`GateSchedule`]: topologically ordered,
    /// arena-indexed gate ops shared by every [`Simulator`](crate::sim::Simulator)
    /// over this circuit. Compiled on first use and cached; any structural
    /// mutation (new nets or gates) drops the cache.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn schedule(&self) -> Result<Arc<GateSchedule>, NetlistError> {
        if let Some(cached) = self.schedule.get() {
            return Ok(Arc::clone(cached));
        }
        let built = Arc::new(GateSchedule::build(self)?);
        // A concurrent builder may have won the race; return whichever
        // schedule the cell ended up holding (they are equivalent).
        Ok(Arc::clone(self.schedule.get_or_init(|| built)))
    }

    /// The circuit's name (e.g. `"c6288"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn insert_net(&mut self, name: String, is_input: bool) -> Result<NetId, NetlistError> {
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateNet(name));
        }
        self.schedule.take();
        let id = NetId(self.nets.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            is_input,
        });
        Ok(id)
    }

    /// Declares a new primary input net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if a net with this name exists.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let id = self.insert_net(name.into(), true)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate driving a freshly named net and returns that net.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateNet`] if `output_name` already exists.
    /// * [`NetlistError::InvalidArity`] if `inputs.len()` is illegal for `ty`.
    /// * [`NetlistError::UnknownNet`] if an input id is out of range.
    pub fn add_gate(
        &mut self,
        ty: GateType,
        output_name: impl Into<String>,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        if !ty.arity_ok(inputs.len()) {
            return Err(NetlistError::InvalidArity {
                gate: ty.bench_keyword(),
                arity: inputs.len(),
            });
        }
        for &i in inputs {
            if i.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(format!("net#{}", i.0)));
            }
        }
        let out = self.insert_net(output_name.into(), false)?;
        let gid = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            ty,
            inputs: inputs.to_vec(),
            output: out,
        });
        self.nets[out.index()].driver = Some(gid);
        Ok(out)
    }

    /// Adds a gate driving an automatically generated fresh net name with the
    /// given prefix. Convenient for synthesised logic (locking units,
    /// resynthesis) where names only need to be unique.
    pub fn add_gate_auto(
        &mut self,
        ty: GateType,
        prefix: &str,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = self.fresh_net_name(prefix);
        self.add_gate(ty, name, inputs)
    }

    /// Generates a net name of the form `prefix$N` that is not yet used.
    pub fn fresh_net_name(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}${}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    /// Marks a net as a primary output. A net may be marked more than once
    /// (some bench files list duplicate outputs); duplicates are kept so that
    /// output ordering and width match the source.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Replaces the output at position `position` with `new_net`, keeping the
    /// output ordering stable. Used when a locking technique re-routes a
    /// primary output through its corruption logic.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds.
    pub fn replace_output_at(&mut self, position: usize, new_net: NetId) {
        self.outputs[position] = new_net;
    }

    /// Renames an existing net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if the new name is taken.
    pub fn rename_net(
        &mut self,
        net: NetId,
        new_name: impl Into<String>,
    ) -> Result<(), NetlistError> {
        let new_name = new_name.into();
        if self.by_name.contains_key(&new_name) {
            return Err(NetlistError::DuplicateNet(new_name));
        }
        let old = self.nets[net.index()].name.clone();
        self.by_name.remove(&old);
        self.by_name.insert(new_name.clone(), net);
        self.nets[net.index()].name = new_name;
        Ok(())
    }

    /// Primary inputs in declaration order (key inputs included).
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The primary inputs whose names begin with [`KEY_INPUT_PREFIX`].
    pub fn key_inputs(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .copied()
            .filter(|&n| self.net_name(n).starts_with(KEY_INPUT_PREFIX))
            .collect()
    }

    /// The primary inputs that are *not* key inputs (the functional inputs).
    pub fn data_inputs(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .copied()
            .filter(|&n| !self.net_name(n).starts_with(KEY_INPUT_PREFIX))
            .collect()
    }

    /// The names of the given nets, in the given order. The one copy of the
    /// name-discovery loop that used to be hand-rolled at every call site.
    pub fn net_names(&self, nets: &[NetId]) -> Vec<String> {
        nets.iter().map(|&n| self.net_name(n).to_string()).collect()
    }

    /// The names of the key inputs, in `keyinput` declaration order — the
    /// name list every `KeyGuess` ↔ `SecretKey` conversion is defined over.
    pub fn key_input_names(&self) -> Vec<String> {
        self.net_names(&self.key_inputs())
    }

    /// The names of the data (non-key) inputs, in declaration order.
    pub fn data_input_names(&self) -> Vec<String> {
        self.net_names(&self.data_inputs())
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this circuit.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.index()].name
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Whether the net is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.nets[net.index()].is_input
    }

    /// Whether the net is listed as a primary output.
    pub fn is_output(&self, net: NetId) -> bool {
        self.outputs.contains(&net)
    }

    /// The gate driving `net`, or `None` for primary inputs and floating nets.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.nets[net.index()].driver
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `gate` does not belong to this circuit.
    pub fn gate(&self, gate: GateId) -> &Gate {
        &self.gates[gate.index()]
    }

    /// Iterates over `(GateId, &Gate)` pairs in insertion order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Iterates over all net ids.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of primary inputs (key inputs included).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Total number of gate input pins — a crude "literal count" used as an
    /// area proxy by the SCOPE-style structural analysis.
    pub fn num_literals(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }

    /// Position of `net` within the primary-input list, if it is an input.
    pub fn input_position(&self, net: NetId) -> Option<usize> {
        self.inputs.iter().position(|&n| n == net)
    }

    /// Convenience wrapper building a [`sim::Simulator`](crate::sim::Simulator)
    /// and evaluating a single input pattern. `values` must follow the order
    /// of [`Circuit::inputs`].
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern width is wrong or the circuit has a
    /// combinational cycle.
    pub fn simulate(&self, values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        crate::sim::Simulator::new(self)?.run(values)
    }

    // ---- Raw escape hatches for malformed-circuit fixtures. ----------------
    //
    // The construction API makes ill-formed circuits unrepresentable: nets
    // are driven at most once, inputs are never driven, and `add_gate` can
    // only reference already-existing nets, so cycles cannot be built. That
    // is the right default — but it also means the `kratt-lint` rules that
    // diagnose exactly these malformations could never be exercised. The
    // `raw_*` methods below deliberately bypass the invariants so test
    // fixtures can craft broken circuits. They are hidden from the docs and
    // must never be used outside lint fixtures.

    /// Adds a net that is neither an input nor driven by any gate — an
    /// undriven net. Fixture hook; see the module note above.
    #[doc(hidden)]
    pub fn raw_add_undriven_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        self.insert_net(name.into(), false)
    }

    /// Pushes a gate whose output is an *existing* net, without touching the
    /// net's driver slot — creating a multiply-driven net when the target is
    /// already driven. Fixture hook; see the module note above.
    #[doc(hidden)]
    pub fn raw_push_gate(&mut self, ty: GateType, inputs: &[NetId], output: NetId) {
        self.schedule.take();
        let gid = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            ty,
            inputs: inputs.to_vec(),
            output,
        });
        if self.nets[output.index()].driver.is_none() && !self.nets[output.index()].is_input {
            self.nets[output.index()].driver = Some(gid);
        }
    }

    /// Rewires one input pin of an existing gate — the only way to create a
    /// combinational cycle. Fixture hook; see the module note above.
    ///
    /// # Panics
    ///
    /// Panics if `gate` or `position` is out of bounds.
    #[doc(hidden)]
    pub fn raw_set_gate_input(&mut self, gate: GateId, position: usize, net: NetId) {
        self.schedule.take();
        self.gates[gate.index()].inputs[position] = net;
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs ({} key), {} outputs, {} gates",
            self.name,
            self.num_inputs(),
            self.key_inputs().len(),
            self.num_outputs(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_circuit() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        c.mark_output(o);
        c
    }

    #[test]
    fn construction_and_queries() {
        let c = xor_circuit();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_literals(), 2);
        let o = c.find_net("o").unwrap();
        assert!(c.is_output(o));
        assert!(!c.is_input(o));
        assert!(c.driver(o).is_some());
        let a = c.find_net("a").unwrap();
        assert!(c.is_input(a));
        assert!(c.driver(a).is_none());
        assert_eq!(c.input_position(a), Some(0));
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut c = Circuit::new("dup");
        c.add_input("a").unwrap();
        assert!(matches!(
            c.add_input("a"),
            Err(NetlistError::DuplicateNet(_))
        ));
        let a = c.find_net("a").unwrap();
        assert!(matches!(
            c.add_gate(GateType::Buf, "a", &[a]),
            Err(NetlistError::DuplicateNet(_))
        ));
    }

    #[test]
    fn invalid_arity_rejected() {
        let mut c = Circuit::new("arity");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        assert!(matches!(
            c.add_gate(GateType::Not, "n", &[a, b]),
            Err(NetlistError::InvalidArity { .. })
        ));
        assert!(matches!(
            c.add_gate(GateType::And, "z", &[]),
            Err(NetlistError::InvalidArity { .. })
        ));
    }

    #[test]
    fn key_input_classification() {
        let mut c = Circuit::new("keys");
        let a = c.add_input("G1").unwrap();
        let k0 = c.add_input("keyinput0").unwrap();
        let k1 = c.add_input("keyinput1").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k0]).unwrap();
        let y = c.add_gate(GateType::Xnor, "y", &[x, k1]).unwrap();
        c.mark_output(y);
        assert_eq!(c.key_inputs(), vec![k0, k1]);
        assert_eq!(c.data_inputs(), vec![a]);
        assert_eq!(c.key_input_names(), vec!["keyinput0", "keyinput1"]);
        assert_eq!(c.data_input_names(), vec!["G1"]);
        assert_eq!(c.net_names(&[k1, a]), vec!["keyinput1", "G1"]);
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut c = Circuit::new("fresh");
        let a = c.add_input("a").unwrap();
        let n1 = c.add_gate_auto(GateType::Buf, "lk", &[a]).unwrap();
        let n2 = c.add_gate_auto(GateType::Not, "lk", &[a]).unwrap();
        assert_ne!(c.net_name(n1), c.net_name(n2));
    }

    #[test]
    fn rename_and_replace_output() {
        let mut c = xor_circuit();
        let o = c.find_net("o").unwrap();
        c.rename_net(o, "o_orig").unwrap();
        assert!(c.find_net("o").is_none());
        assert_eq!(c.find_net("o_orig"), Some(o));
        let a = c.find_net("a").unwrap();
        let o2 = c.add_gate(GateType::Buf, "o", &[o]).unwrap();
        c.replace_output_at(0, o2);
        assert_eq!(c.outputs(), &[o2]);
        assert!(c.rename_net(a, "o").is_err());
    }

    #[test]
    fn display_summarises_the_interface() {
        let c = xor_circuit();
        let s = c.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("2 inputs"));
    }
}
