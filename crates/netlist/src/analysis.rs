//! Structural analysis of circuits: topological ordering, cones, levels and
//! summary statistics.

use crate::circuit::{Circuit, GateId, NetId};
use crate::NetlistError;
use std::collections::{HashMap, HashSet, VecDeque};

/// Computes a topological order of the gates (inputs of a gate are driven
/// either by primary inputs or by earlier gates in the order).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the circuit contains a
/// cycle; the error carries the full cycle path in signal-flow order.
pub fn topological_order(circuit: &Circuit) -> Result<Vec<GateId>, NetlistError> {
    let n = circuit.num_gates();
    // Number of gate-driven inputs each gate is still waiting for.
    let mut pending = vec![0usize; n];
    // Map from driving gate to the gates it feeds.
    let mut consumers: Vec<Vec<GateId>> = vec![Vec::new(); n];
    for (gid, gate) in circuit.gates() {
        for &input in &gate.inputs {
            if let Some(driver) = circuit.driver(input) {
                pending[gid.index()] += 1;
                consumers[driver.index()].push(gid);
            }
        }
    }
    let mut ready: VecDeque<GateId> = circuit
        .gates()
        .filter(|(gid, _)| pending[gid.index()] == 0)
        .map(|(gid, _)| gid)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(gid) = ready.pop_front() {
        order.push(gid);
        for &next in &consumers[gid.index()] {
            pending[next.index()] -= 1;
            if pending[next.index()] == 0 {
                ready.push_back(next);
            }
        }
    }
    if order.len() != n {
        return Err(NetlistError::CombinationalCycle(extract_cycle(
            circuit, &pending,
        )));
    }
    Ok(order)
}

/// Walks the still-pending gates of a failed Kahn run to recover an actual
/// cycle. Every stuck gate (pending > 0) has at least one input driven by
/// another stuck gate, so following such inputs from any stuck gate must
/// revisit a gate; the revisited segment is a cycle. The path is returned as
/// net names in signal-flow order (each net drives the next, the last feeds
/// the first).
fn extract_cycle(circuit: &Circuit, pending: &[usize]) -> Vec<String> {
    let Some(start) = circuit
        .gates()
        .map(|(gid, _)| gid)
        .find(|gid| pending[gid.index()] > 0)
    else {
        return Vec::new();
    };
    let mut position: HashMap<GateId, usize> = HashMap::new();
    let mut path: Vec<GateId> = Vec::new();
    let mut current = start;
    loop {
        if let Some(&first) = position.get(&current) {
            // `path[first..]` walks the cycle backwards (towards fanins);
            // reverse it so the reported path follows signal flow.
            let mut cycle: Vec<String> = path[first..]
                .iter()
                .map(|&gid| circuit.net_name(circuit.gate(gid).output).to_string())
                .collect();
            cycle.reverse();
            return cycle;
        }
        position.insert(current, path.len());
        path.push(current);
        let next = circuit
            .gate(current)
            .inputs
            .iter()
            .find_map(|&input| circuit.driver(input).filter(|d| pending[d.index()] > 0));
        match next {
            Some(gid) => current = gid,
            // Unreachable for a genuinely stuck gate; bail out defensively.
            None => return circuit.net_names(&[circuit.gate(current).output]),
        }
    }
}

/// The logic level (longest distance, in gates, from any primary input) of
/// every net, indexed by [`NetId::index`]. Primary inputs have level 0.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn logic_levels(circuit: &Circuit) -> Result<Vec<usize>, NetlistError> {
    let order = topological_order(circuit)?;
    let mut level = vec![0usize; circuit.num_nets()];
    for gid in order {
        let gate = circuit.gate(gid);
        let max_in = gate
            .inputs
            .iter()
            .map(|&n| level[n.index()])
            .max()
            .unwrap_or(0);
        level[gate.output.index()] = max_in + 1;
    }
    Ok(level)
}

/// The depth of the circuit: the maximum logic level over the primary
/// outputs (0 for a circuit whose outputs are directly tied to inputs).
///
/// # Errors
///
/// Returns an error if the circuit is cyclic.
pub fn depth(circuit: &Circuit) -> Result<usize, NetlistError> {
    let levels = logic_levels(circuit)?;
    Ok(circuit
        .outputs()
        .iter()
        .map(|&o| levels[o.index()])
        .max()
        .unwrap_or(0))
}

/// The transitive fan-in cone of `roots`: every gate whose output can reach
/// one of the root nets going backwards through gate inputs.
pub fn fanin_cone_gates(circuit: &Circuit, roots: &[NetId]) -> HashSet<GateId> {
    let mut cone = HashSet::new();
    let mut stack: Vec<NetId> = roots.to_vec();
    let mut seen_nets: HashSet<NetId> = roots.iter().copied().collect();
    while let Some(net) = stack.pop() {
        if let Some(gid) = circuit.driver(net) {
            if cone.insert(gid) {
                for &input in &circuit.gate(gid).inputs {
                    if seen_nets.insert(input) {
                        stack.push(input);
                    }
                }
            }
        }
    }
    cone
}

/// The *support* of `roots`: the primary inputs that the fan-in cone of the
/// root nets depends on, in primary-input order.
pub fn support(circuit: &Circuit, roots: &[NetId]) -> Vec<NetId> {
    let cone = fanin_cone_gates(circuit, roots);
    let mut nets: HashSet<NetId> = roots.iter().copied().collect();
    for gid in &cone {
        for &input in &circuit.gate(*gid).inputs {
            nets.insert(input);
        }
    }
    circuit
        .inputs()
        .iter()
        .copied()
        .filter(|n| nets.contains(n))
        .collect()
}

/// A map from every net to the gates that consume it.
pub fn fanout_map(circuit: &Circuit) -> HashMap<NetId, Vec<GateId>> {
    let mut map: HashMap<NetId, Vec<GateId>> = HashMap::new();
    for (gid, gate) in circuit.gates() {
        for &input in &gate.inputs {
            map.entry(input).or_default().push(gid);
        }
    }
    map
}

/// The gates reachable going *forwards* from `start` (the transitive fan-out
/// cone of a net).
pub fn fanout_cone_gates(circuit: &Circuit, start: NetId) -> HashSet<GateId> {
    fanout_cone_gates_in(circuit, &fanout_map(circuit), start)
}

/// [`fanout_cone_gates`] over an already computed [`fanout_map`], so callers
/// traversing from many start nets (e.g. once per key input) build the map
/// once instead of once per traversal.
pub fn fanout_cone_gates_in(
    circuit: &Circuit,
    fanout: &HashMap<NetId, Vec<GateId>>,
    start: NetId,
) -> HashSet<GateId> {
    let mut cone = HashSet::new();
    let mut stack = vec![start];
    let mut seen_nets: HashSet<NetId> = HashSet::new();
    seen_nets.insert(start);
    while let Some(net) = stack.pop() {
        if let Some(consumers) = fanout.get(&net) {
            for &gid in consumers {
                if cone.insert(gid) {
                    let out = circuit.gate(gid).output;
                    if seen_nets.insert(out) {
                        stack.push(out);
                    }
                }
            }
        }
    }
    cone
}

/// The primary outputs reachable from `start` going forwards, in output
/// order. `start` itself counts if it is listed as an output.
pub fn outputs_reached_from(circuit: &Circuit, start: NetId) -> Vec<NetId> {
    let cone = fanout_cone_gates(circuit, start);
    let reached: HashSet<NetId> = cone
        .iter()
        .map(|&g| circuit.gate(g).output)
        .chain(std::iter::once(start))
        .collect();
    let mut result = Vec::new();
    for &o in circuit.outputs() {
        if reached.contains(&o) && !result.contains(&o) {
            result.push(o);
        }
    }
    result
}

/// Summary statistics of a circuit, used both for reporting (Table I) and as
/// the feature vector of the SCOPE-style constant-propagation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of primary inputs (key inputs included).
    pub inputs: usize,
    /// Number of key inputs.
    pub key_inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Total number of gate input pins (literal count, area proxy).
    pub literals: usize,
    /// Longest input-to-output path length in gates (delay proxy).
    pub depth: usize,
}

/// Computes [`CircuitStats`] for a circuit.
///
/// # Errors
///
/// Returns an error if the circuit is cyclic (depth cannot be computed).
pub fn stats(circuit: &Circuit) -> Result<CircuitStats, NetlistError> {
    Ok(CircuitStats {
        inputs: circuit.num_inputs(),
        key_inputs: circuit.key_inputs().len(),
        outputs: circuit.num_outputs(),
        gates: circuit.num_gates(),
        literals: circuit.num_literals(),
        depth: depth(circuit)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateType;

    /// Two-level circuit: o1 = (a AND b) OR c, o2 = NOT(a AND b).
    fn sample() -> Circuit {
        let mut c = Circuit::new("sample");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let cc = c.add_input("c").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let o1 = c.add_gate(GateType::Or, "o1", &[ab, cc]).unwrap();
        let o2 = c.add_gate(GateType::Not, "o2", &[ab]).unwrap();
        c.mark_output(o1);
        c.mark_output(o2);
        c
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let c = sample();
        let order = topological_order(&c).unwrap();
        assert_eq!(order.len(), 3);
        let pos: HashMap<GateId, usize> = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for (gid, gate) in c.gates() {
            for &input in &gate.inputs {
                if let Some(driver) = c.driver(input) {
                    assert!(pos[&driver] < pos[&gid]);
                }
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let c = sample();
        let levels = logic_levels(&c).unwrap();
        let ab = c.find_net("ab").unwrap();
        let o1 = c.find_net("o1").unwrap();
        assert_eq!(levels[ab.index()], 1);
        assert_eq!(levels[o1.index()], 2);
        assert_eq!(depth(&c).unwrap(), 2);
    }

    #[test]
    fn fanin_cone_and_support() {
        let c = sample();
        let o2 = c.find_net("o2").unwrap();
        let cone = fanin_cone_gates(&c, &[o2]);
        assert_eq!(cone.len(), 2); // NOT and AND
        let sup = support(&c, &[o2]);
        let names: Vec<&str> = sup.iter().map(|&n| c.net_name(n)).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn fanout_cone_and_reached_outputs() {
        let c = sample();
        let a = c.find_net("a").unwrap();
        let cc = c.find_net("c").unwrap();
        let from_a = fanout_cone_gates(&c, a);
        assert_eq!(from_a.len(), 3); // AND, OR, NOT
        let from_c = fanout_cone_gates(&c, cc);
        assert_eq!(from_c.len(), 1); // OR only
        let outs = outputs_reached_from(&c, cc);
        assert_eq!(outs.len(), 1);
        assert_eq!(c.net_name(outs[0]), "o1");
        let outs_a = outputs_reached_from(&c, a);
        assert_eq!(outs_a.len(), 2);
    }

    #[test]
    fn cycle_detection_reports_the_full_path() {
        // Build a three-gate cycle x -> y -> z -> x through the raw rewire
        // fixture hook (the construction API itself cannot create cycles).
        let mut c = Circuit::new("cyclic");
        let a = c.add_input("a").unwrap();
        let x = c.add_gate(GateType::And, "x", &[a, a]).unwrap();
        let y = c.add_gate(GateType::Buf, "y", &[x]).unwrap();
        let z = c.add_gate(GateType::Buf, "z", &[y]).unwrap();
        c.mark_output(z);
        assert!(topological_order(&c).is_ok());
        let x_gate = c.driver(x).unwrap();
        c.raw_set_gate_input(x_gate, 1, z);
        match topological_order(&c) {
            Err(NetlistError::CombinationalCycle(path)) => {
                // All three nets appear, in signal-flow order (cyclic
                // rotation of x -> y -> z).
                assert_eq!(path.len(), 3, "full path, not one net: {path:?}");
                let start = path.iter().position(|n| n == "x").unwrap();
                let rotated: Vec<&str> = (0..3).map(|i| path[(start + i) % 3].as_str()).collect();
                assert_eq!(rotated, vec!["x", "y", "z"]);
            }
            other => panic!("expected a cycle error, got {other:?}"),
        }
        // A gate feeding itself is the minimal cycle.
        let mut c = Circuit::new("self");
        let a = c.add_input("a").unwrap();
        let s = c.add_gate(GateType::And, "s", &[a, a]).unwrap();
        c.mark_output(s);
        let s_gate = c.driver(s).unwrap();
        c.raw_set_gate_input(s_gate, 0, s);
        match topological_order(&c) {
            Err(NetlistError::CombinationalCycle(path)) => {
                assert_eq!(path, vec!["s".to_string()]);
            }
            other => panic!("expected a cycle error, got {other:?}"),
        }
    }

    #[test]
    fn stats_cover_interface_and_structure() {
        let c = sample();
        let s = stats(&c).unwrap();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 3);
        assert_eq!(s.literals, 5);
        assert_eq!(s.depth, 2);
        assert_eq!(s.key_inputs, 0);
    }
}
