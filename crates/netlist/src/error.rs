//! Error type shared by all netlist operations.

use std::fmt;

/// Errors produced while building, parsing, transforming or simulating a
/// [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net name was declared twice (e.g. two gates drive the same net).
    DuplicateNet(String),
    /// A net was referenced that does not exist in the circuit.
    UnknownNet(String),
    /// A gate was given an arity its type does not support
    /// (e.g. a two-input NOT).
    InvalidArity {
        /// Gate type name.
        gate: &'static str,
        /// Number of inputs supplied.
        arity: usize,
    },
    /// The `.bench` text could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what went wrong.
        message: String,
    },
    /// A simulation or evaluation was given the wrong number of input values.
    InputWidthMismatch {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Number of values supplied by the caller.
        got: usize,
    },
    /// The circuit contains a combinational cycle, so no topological order
    /// (and therefore no simulation) exists. The payload is the full cycle
    /// path as net names in signal-flow order (the last net feeds the first).
    CombinationalCycle(Vec<String>),
    /// A transformation precondition was violated (message explains which).
    Transform(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet(name) => write!(f, "net `{name}` is driven twice"),
            NetlistError::UnknownNet(name) => write!(f, "net `{name}` does not exist"),
            NetlistError::InvalidArity { gate, arity } => {
                write!(f, "gate `{gate}` cannot take {arity} inputs")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "bench parse error on line {line}: {message}")
            }
            NetlistError::InputWidthMismatch { expected, got } => {
                write!(
                    f,
                    "circuit has {expected} primary inputs but {got} values were supplied"
                )
            }
            NetlistError::CombinationalCycle(path) => match path.split_first() {
                None => write!(f, "combinational cycle detected"),
                Some((first, rest)) => {
                    write!(f, "combinational cycle: `{first}`")?;
                    for net in rest {
                        write!(f, " -> `{net}`")?;
                    }
                    write!(f, " -> `{first}`")
                }
            },
            NetlistError::Transform(msg) => write!(f, "transformation error: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::DuplicateNet("n1".into());
        assert!(e.to_string().contains("n1"));
        let e = NetlistError::InvalidArity {
            gate: "NOT",
            arity: 3,
        };
        assert!(e.to_string().contains("NOT"));
        assert!(e.to_string().contains('3'));
        let e = NetlistError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = NetlistError::InputWidthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
    }

    #[test]
    fn combinational_cycle_renders_the_full_path() {
        let e = NetlistError::CombinationalCycle(vec!["x".into(), "y".into()]);
        assert_eq!(e.to_string(), "combinational cycle: `x` -> `y` -> `x`");
        let e = NetlistError::CombinationalCycle(vec!["solo".into()]);
        assert_eq!(e.to_string(), "combinational cycle: `solo` -> `solo`");
        let e = NetlistError::CombinationalCycle(Vec::new());
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
