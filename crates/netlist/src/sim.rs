//! Circuit simulation: single-pattern and 64-way bit-parallel evaluation.
//!
//! The evaluation engine is the [`GateSchedule`]: a topologically ordered,
//! arena-indexed program compiled from a [`Circuit`] once and cached on the
//! circuit itself ([`Circuit::schedule`]). Every gate becomes one compact op
//! (`type, output slot, operand slice`) over a flat operand arena, so the
//! hot loop touches two contiguous arrays instead of chasing per-gate
//! `Vec`s. The same schedule evaluates either one pattern (`bool` lanes) or
//! 64 patterns at once (`u64` lanes, one bit per pattern), which is the
//! kernel behind the oracle's batched DIP queries and the Monte-Carlo
//! corruption metrics.

use crate::circuit::{Circuit, NetId};
use crate::{GateType, NetlistError};
use std::sync::Arc;

/// A value type the schedule can evaluate over: one pattern (`bool`) or 64
/// packed patterns (`u64`, bit *i* = pattern *i*).
pub trait Lane: Copy {
    /// All-zero lanes.
    const ZERO: Self;
    /// All-one lanes.
    const ONES: Self;
    /// Lane-wise conjunction.
    fn and(self, other: Self) -> Self;
    /// Lane-wise disjunction.
    fn or(self, other: Self) -> Self;
    /// Lane-wise parity.
    fn xor(self, other: Self) -> Self;
    /// Lane-wise complement.
    fn not(self) -> Self;
}

impl Lane for bool {
    const ZERO: Self = false;
    const ONES: Self = true;
    fn and(self, other: Self) -> Self {
        self & other
    }
    fn or(self, other: Self) -> Self {
        self | other
    }
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    fn not(self) -> Self {
        !self
    }
}

impl Lane for u64 {
    const ZERO: Self = 0;
    const ONES: Self = !0;
    fn and(self, other: Self) -> Self {
        self & other
    }
    fn or(self, other: Self) -> Self {
        self | other
    }
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    fn not(self) -> Self {
        !self
    }
}

/// One gate of the compiled schedule: the operand slice lives in the shared
/// arena, so the struct is `Copy` and the op stream is cache-friendly.
#[derive(Debug, Clone, Copy)]
struct ScheduledOp {
    ty: GateType,
    output: u32,
    first: u32,
    count: u32,
}

/// The compiled, topologically ordered evaluation program of a circuit.
///
/// Built once per circuit (and cached there by [`Circuit::schedule`]); the
/// [`GateSchedule::eval`] loop then runs over dense arrays only.
#[derive(Debug)]
pub struct GateSchedule {
    ops: Vec<ScheduledOp>,
    operands: Vec<u32>,
    num_nets: usize,
    num_inputs: usize,
}

impl GateSchedule {
    /// Compiles the schedule for a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn build(circuit: &Circuit) -> Result<Self, NetlistError> {
        let order = crate::analysis::topological_order(circuit)?;
        let mut ops = Vec::with_capacity(order.len());
        let mut operands = Vec::with_capacity(circuit.num_literals());
        for gid in order {
            let gate = circuit.gate(gid);
            let first = operands.len() as u32;
            operands.extend(gate.inputs.iter().map(|n| n.index() as u32));
            ops.push(ScheduledOp {
                ty: gate.ty,
                output: gate.output.index() as u32,
                first,
                count: gate.inputs.len() as u32,
            });
        }
        Ok(GateSchedule {
            ops,
            operands,
            num_nets: circuit.num_nets(),
            num_inputs: circuit.num_inputs(),
        })
    }

    /// Number of nets the evaluation buffer must hold.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of primary inputs the compiled circuit had.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of scheduled gate ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Evaluates every gate in topological order, reading primary-input
    /// lanes from `values` (indexed by [`NetId::index`]) and writing every
    /// gate output back into it.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than [`GateSchedule::num_nets`].
    pub fn eval<L: Lane>(&self, values: &mut [L]) {
        #[inline]
        fn fold<L: Lane>(values: &[L], ins: &[u32], init: L, f: impl Fn(L, L) -> L) -> L {
            match *ins {
                [a] => values[a as usize],
                [a, b] => f(values[a as usize], values[b as usize]),
                _ => ins.iter().fold(init, |acc, &i| f(acc, values[i as usize])),
            }
        }
        for op in &self.ops {
            let ins = &self.operands[op.first as usize..(op.first + op.count) as usize];
            let value = match op.ty {
                GateType::And => fold(values, ins, L::ONES, L::and),
                GateType::Nand => fold(values, ins, L::ONES, L::and).not(),
                GateType::Or => fold(values, ins, L::ZERO, L::or),
                GateType::Nor => fold(values, ins, L::ZERO, L::or).not(),
                GateType::Xor => fold(values, ins, L::ZERO, L::xor),
                GateType::Xnor => fold(values, ins, L::ZERO, L::xor).not(),
                GateType::Not => values[ins[0] as usize].not(),
                GateType::Buf => values[ins[0] as usize],
                GateType::Const0 => L::ZERO,
                GateType::Const1 => L::ONES,
            };
            values[op.output as usize] = value;
        }
    }
}

/// A reusable simulator for one circuit.
///
/// Construction fetches the circuit's cached [`GateSchedule`] (compiling it
/// on first use), so building a `Simulator` is cheap and the `run*` methods
/// can be called for many patterns — which matters for the oracle queries of
/// the oracle-guided attacks and for the SCOPE feature analysis.
///
/// ```
/// use kratt_netlist::{Circuit, GateType};
/// use kratt_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), kratt_netlist::NetlistError> {
/// let mut c = Circuit::new("and2");
/// let a = c.add_input("a")?;
/// let b = c.add_input("b")?;
/// let o = c.add_gate(GateType::And, "o", &[a, b])?;
/// c.mark_output(o);
/// let sim = Simulator::new(&c)?;
/// assert_eq!(sim.run(&[true, true])?, vec![true]);
/// assert_eq!(sim.run(&[true, false])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    schedule: Arc<GateSchedule>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator from the circuit's cached gate schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn new(circuit: &'a Circuit) -> Result<Self, NetlistError> {
        let schedule = circuit.schedule()?;
        Ok(Simulator { circuit, schedule })
    }

    /// The circuit this simulator evaluates.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The compiled schedule driving the evaluation.
    pub fn schedule(&self) -> &GateSchedule {
        &self.schedule
    }

    fn check_width(&self, got: usize) -> Result<(), NetlistError> {
        let expected = self.circuit.num_inputs();
        if got != expected {
            return Err(NetlistError::InputWidthMismatch { expected, got });
        }
        Ok(())
    }

    fn eval_full<L: Lane>(&self, inputs: &[L]) -> Result<Vec<L>, NetlistError> {
        self.check_width(inputs.len())?;
        let mut values = vec![L::ZERO; self.circuit.num_nets()];
        for (pos, &net) in self.circuit.inputs().iter().enumerate() {
            values[net.index()] = inputs[pos];
        }
        self.schedule.eval(&mut values);
        Ok(values)
    }

    fn outputs_of<L: Lane>(&self, values: &[L]) -> Vec<L> {
        self.circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect()
    }

    /// Evaluates one input pattern (ordered as [`Circuit::inputs`]) and
    /// returns the primary-output values (ordered as [`Circuit::outputs`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if the pattern width does
    /// not match the number of primary inputs.
    pub fn run(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval_full(inputs)?;
        Ok(self.outputs_of(&values))
    }

    /// Evaluates one input pattern and returns the value of *every* net,
    /// indexed by [`NetId::index`]. Floating nets evaluate to `false`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_full(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        self.eval_full(inputs)
    }

    /// Evaluates 64 input patterns at once. Each entry of `inputs` packs the
    /// value of that primary input across the 64 patterns (bit *i* of the
    /// word is pattern *i*). Returns the packed primary-output words.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_words(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let values = self.eval_full(inputs)?;
        Ok(self.outputs_of(&values))
    }

    /// 64-way parallel version of [`Simulator::run_full`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_words_full(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        self.eval_full(inputs)
    }

    /// Evaluates an arbitrary number of patterns, packing them into 64-wide
    /// sweeps internally. Row `i` of the result is the output row of
    /// `patterns[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if any pattern has the
    /// wrong width.
    pub fn run_batch(&self, patterns: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, NetlistError> {
        let mut rows = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(64) {
            for pattern in chunk {
                self.check_width(pattern.len())?;
            }
            let words = pack_patterns(chunk);
            let out_words = self.run_words(&words)?;
            rows.extend(unpack_words(&out_words, chunk.len()));
        }
        Ok(rows)
    }

    /// Evaluates the circuit on the pattern described by `(net, value)`
    /// assignments for the primary inputs; unassigned inputs default to
    /// `false`. Convenient when only a subset of inputs (e.g. only key
    /// inputs) is of interest.
    ///
    /// # Errors
    ///
    /// Propagates width errors from [`Simulator::run`]; assignments to nets
    /// that are not primary inputs are ignored.
    pub fn run_assignment(&self, assignment: &[(NetId, bool)]) -> Result<Vec<bool>, NetlistError> {
        let mut pattern = vec![false; self.circuit.num_inputs()];
        for &(net, value) in assignment {
            if let Some(pos) = self.circuit.input_position(net) {
                pattern[pos] = value;
            }
        }
        self.run(&pattern)
    }
}

/// Packs up to 64 input patterns (rows) into one word per input column: bit
/// `i` of word `w` is `patterns[i][w]`. All rows must share one width.
///
/// # Panics
///
/// Panics if more than 64 patterns are given or the rows have differing
/// widths.
pub fn pack_patterns(patterns: &[Vec<bool>]) -> Vec<u64> {
    assert!(patterns.len() <= 64, "at most 64 patterns fit one sweep");
    let width = patterns.first().map(Vec::len).unwrap_or(0);
    let mut words = vec![0u64; width];
    for (row, pattern) in patterns.iter().enumerate() {
        assert_eq!(pattern.len(), width, "pattern rows must share one width");
        for (word, &bit) in words.iter_mut().zip(pattern) {
            *word |= u64::from(bit) << row;
        }
    }
    words
}

/// Unpacks `rows` rows out of packed output words: row `i` is bit `i` of
/// every word, in word order. Inverse of [`pack_patterns`] on the output
/// side of a sweep.
pub fn unpack_words(words: &[u64], rows: usize) -> Vec<Vec<bool>> {
    assert!(rows <= 64, "a sweep holds at most 64 rows");
    (0..rows)
        .map(|row| words.iter().map(|&w| w >> row & 1 != 0).collect())
        .collect()
}

/// The canonical lane masks of an exhaustive sweep: bit `j` of
/// `EXHAUSTIVE_LANE_MASKS[i]` is bit `i` of the pattern index `j`.
const EXHAUSTIVE_LANE_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Input words covering the 64 consecutive patterns `base..base + 64` of an
/// exhaustive enumeration over `width` inputs, where pattern `p` assigns bit
/// `i` of `p` to input `i`. `base` must be a multiple of 64 (input bits ≥ 6
/// are then constant across the sweep).
pub fn exhaustive_input_words(base: u64, width: usize) -> Vec<u64> {
    debug_assert_eq!(base % 64, 0, "sweeps start at 64-aligned pattern indices");
    (0..width)
        .map(|i| {
            if i < 6 {
                EXHAUSTIVE_LANE_MASKS[i]
            } else if base >> i & 1 != 0 {
                !0u64
            } else {
                0u64
            }
        })
        .collect()
}

/// Exhaustively compares two circuits with identical input/output widths on
/// all `2^n` patterns using 64-wide sweeps (intended for small `n` in
/// tests). Returns `true` when every output of `a` matches the
/// corresponding output of `b` on every pattern.
///
/// # Errors
///
/// Returns an error if either circuit cannot be simulated or the interface
/// widths differ.
///
/// # Panics
///
/// Panics if the circuits have more than 24 inputs (exhaustive comparison
/// would be intractable; use the SAT-based equivalence check instead).
pub fn exhaustively_equivalent(a: &Circuit, b: &Circuit) -> Result<bool, NetlistError> {
    assert!(
        a.num_inputs() <= 24,
        "exhaustive comparison limited to 24 inputs"
    );
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return Err(NetlistError::Transform(
            "interface widths differ between compared circuits".into(),
        ));
    }
    let sim_a = Simulator::new(a)?;
    let sim_b = Simulator::new(b)?;
    let n = a.num_inputs();
    let total = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        let lanes = (total - base).min(64);
        let valid = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        let words = exhaustive_input_words(base, n);
        let out_a = sim_a.run_words(&words)?;
        let out_b = sim_b.run_words(&words)?;
        if out_a
            .iter()
            .zip(&out_b)
            .any(|(&wa, &wb)| (wa ^ wb) & valid != 0)
        {
            return Ok(false);
        }
        base += 64;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateType;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let cin = c.add_input("cin").unwrap();
        let s1 = c.add_gate(GateType::Xor, "s1", &[a, b]).unwrap();
        let sum = c.add_gate(GateType::Xor, "sum", &[s1, cin]).unwrap();
        let c1 = c.add_gate(GateType::And, "c1", &[a, b]).unwrap();
        let c2 = c.add_gate(GateType::And, "c2", &[s1, cin]).unwrap();
        let cout = c.add_gate(GateType::Or, "cout", &[c1, c2]).unwrap();
        c.mark_output(sum);
        c.mark_output(cout);
        c
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u32..8 {
            let a = pattern & 1 != 0;
            let b = pattern & 2 != 0;
            let cin = pattern & 4 != 0;
            let expected_sum = (a as u32 + b as u32 + cin as u32) & 1 != 0;
            let expected_cout = (a as u32 + b as u32 + cin as u32) >= 2;
            let out = sim.run(&[a, b, cin]).unwrap();
            assert_eq!(out, vec![expected_sum, expected_cout], "pattern {pattern}");
        }
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        // Pack the 8 possible patterns into the low bits of the words.
        let mut words = vec![0u64; 3];
        for pattern in 0u64..8 {
            for (i, word) in words.iter_mut().enumerate() {
                if pattern >> i & 1 != 0 {
                    *word |= 1 << pattern;
                }
            }
        }
        let out_words = sim.run_words(&words).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let scalar = sim.run(&bits).unwrap();
            for (o, &word) in out_words.iter().enumerate() {
                assert_eq!(word >> pattern & 1 != 0, scalar[o]);
            }
        }
    }

    #[test]
    fn schedule_is_cached_and_invalidated_by_mutation() {
        let mut c = full_adder();
        let first = c.schedule().unwrap();
        let second = c.schedule().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second fetch hits the cache");
        assert_eq!(first.num_ops(), c.num_gates());
        assert_eq!(first.num_inputs(), 3);

        // Mutating the circuit must drop the cached schedule.
        let s1 = c.find_net("s1").unwrap();
        let extra = c.add_gate(GateType::Not, "extra", &[s1]).unwrap();
        c.mark_output(extra);
        let third = c.schedule().unwrap();
        assert!(!Arc::ptr_eq(&first, &third), "mutation invalidates");
        assert_eq!(third.num_ops(), c.num_gates());
        assert_eq!(third.num_nets(), c.num_nets());
        let sim = Simulator::new(&c).unwrap();
        assert_eq!(
            sim.run(&[true, false, false]).unwrap(),
            vec![true, false, false]
        );
    }

    #[test]
    fn batch_matches_scalar_rows() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let patterns: Vec<Vec<bool>> = (0u64..8)
            .map(|p| (0..3).map(|i| p >> i & 1 != 0).collect())
            .collect();
        let rows = sim.run_batch(&patterns).unwrap();
        assert_eq!(rows.len(), 8);
        for (pattern, row) in patterns.iter().zip(&rows) {
            assert_eq!(row, &sim.run(pattern).unwrap());
        }
        assert!(sim.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![true, false, true],
            vec![false, false, true],
            vec![true, true, false],
        ];
        let words = pack_patterns(&patterns);
        assert_eq!(words.len(), 3);
        assert_eq!(unpack_words(&words, patterns.len()), patterns);
    }

    #[test]
    fn exhaustive_input_words_cover_all_patterns() {
        for width in [3usize, 7] {
            let total = 1u64 << width;
            let mut seen = std::collections::HashSet::new();
            let mut base = 0;
            while base < total {
                let words = exhaustive_input_words(base, width);
                let lanes = (total - base).min(64);
                for row in unpack_words(&words, lanes as usize) {
                    let index: u64 = row
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| u64::from(b) << i)
                        .sum();
                    seen.insert(index);
                }
                base += 64;
            }
            assert_eq!(seen.len() as u64, total, "width {width}");
        }
    }

    #[test]
    fn width_mismatch_is_reported() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        assert!(matches!(
            sim.run(&[true, false]),
            Err(NetlistError::InputWidthMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            sim.run_words(&[0, 0, 0, 0]),
            Err(NetlistError::InputWidthMismatch {
                expected: 3,
                got: 4
            })
        ));
        assert!(sim.run_batch(&[vec![true]]).is_err());
    }

    #[test]
    fn run_assignment_defaults_unset_inputs_to_zero() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let a = c.find_net("a").unwrap();
        let out = sim.run_assignment(&[(a, true)]).unwrap();
        assert_eq!(out, vec![true, false]); // 1 + 0 + 0 = sum 1, carry 0
    }

    proptest::proptest! {
        /// On random circuits, one 64-lane packed sweep is bit-for-bit equal
        /// to 64 scalar evaluations of the same patterns — for every output
        /// *and* every internal net.
        #[test]
        fn prop_packed_evaluation_matches_scalar(seed in 0u64..200) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(format!("rand{seed}"));
            let n_inputs = rng.gen_range(2..8usize);
            let mut nets: Vec<crate::circuit::NetId> = (0..n_inputs)
                .map(|i| c.add_input(format!("i{i}")).unwrap())
                .collect();
            let n_gates = rng.gen_range(1..40usize);
            for g in 0..n_gates {
                let ty = GateType::ALL[rng.gen_range(0..GateType::ALL.len())];
                let arity = match ty {
                    GateType::Const0 | GateType::Const1 => 0,
                    GateType::Not | GateType::Buf => 1,
                    _ => rng.gen_range(1..5usize),
                };
                let ins: Vec<crate::circuit::NetId> = (0..arity)
                    .map(|_| nets[rng.gen_range(0..nets.len())])
                    .collect();
                let out = c.add_gate(ty, format!("g{g}"), &ins).unwrap();
                nets.push(out);
            }
            c.mark_output(*nets.last().unwrap());
            let sim = Simulator::new(&c).unwrap();

            // 64 random patterns, packed column-wise.
            let patterns: Vec<Vec<bool>> = (0..64)
                .map(|_| (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let words = pack_patterns(&patterns);
            let packed_nets = sim.run_words_full(&words).unwrap();
            for (lane, pattern) in patterns.iter().enumerate() {
                let scalar_nets = sim.run_full(pattern).unwrap();
                for (&word, &scalar) in packed_nets.iter().zip(&scalar_nets) {
                    proptest::prop_assert_eq!(word >> lane & 1 != 0, scalar);
                }
            }
        }
    }

    #[test]
    fn exhaustive_equivalence_detects_difference() {
        let c = full_adder();
        let mut d = full_adder();
        assert!(exhaustively_equivalent(&c, &d).unwrap());
        // Turn the carry OR into XOR: differs when both AND terms are 1,
        // which never happens for a full adder, so still equivalent.
        // Instead, break the sum: swap XOR for XNOR.
        let s1 = d.find_net("s1").unwrap();
        let cin = d.find_net("cin").unwrap();
        let bad = d.add_gate(GateType::Xnor, "bad_sum", &[s1, cin]).unwrap();
        d.replace_output_at(0, bad);
        assert!(!exhaustively_equivalent(&c, &d).unwrap());
    }
}
