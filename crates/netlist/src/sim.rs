//! Circuit simulation: single-pattern and 64-way bit-parallel evaluation.

use crate::analysis;
use crate::circuit::{Circuit, NetId};
use crate::NetlistError;

/// A reusable simulator for one circuit.
///
/// Building a `Simulator` computes the topological gate order once; the
/// `run*` methods can then be called for many patterns, which matters for the
/// oracle queries of the oracle-guided attacks and for the SCOPE feature
/// analysis.
///
/// ```
/// use kratt_netlist::{Circuit, GateType};
/// use kratt_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), kratt_netlist::NetlistError> {
/// let mut c = Circuit::new("and2");
/// let a = c.add_input("a")?;
/// let b = c.add_input("b")?;
/// let o = c.add_gate(GateType::And, "o", &[a, b])?;
/// c.mark_output(o);
/// let sim = Simulator::new(&c)?;
/// assert_eq!(sim.run(&[true, true])?, vec![true]);
/// assert_eq!(sim.run(&[true, false])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    topo: Vec<crate::circuit::GateId>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator, computing the topological order of the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is cyclic.
    pub fn new(circuit: &'a Circuit) -> Result<Self, NetlistError> {
        let topo = analysis::topological_order(circuit)?;
        Ok(Simulator { circuit, topo })
    }

    /// The circuit this simulator evaluates.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Evaluates one input pattern (ordered as [`Circuit::inputs`]) and
    /// returns the primary-output values (ordered as [`Circuit::outputs`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if the pattern width does
    /// not match the number of primary inputs.
    pub fn run(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.run_full(inputs)?;
        Ok(self
            .circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect())
    }

    /// Evaluates one input pattern and returns the value of *every* net,
    /// indexed by [`NetId::index`]. Floating nets evaluate to `false`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_full(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let expected = self.circuit.num_inputs();
        if inputs.len() != expected {
            return Err(NetlistError::InputWidthMismatch {
                expected,
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.circuit.num_nets()];
        for (pos, &net) in self.circuit.inputs().iter().enumerate() {
            values[net.index()] = inputs[pos];
        }
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for &gid in &self.topo {
            let gate = self.circuit.gate(gid);
            scratch.clear();
            scratch.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.ty.eval(&scratch);
        }
        Ok(values)
    }

    /// Evaluates 64 input patterns at once. Each entry of `inputs` packs the
    /// value of that primary input across the 64 patterns (bit *i* of the
    /// word is pattern *i*). Returns the packed primary-output words.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_words(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let values = self.run_words_full(inputs)?;
        Ok(self
            .circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect())
    }

    /// 64-way parallel version of [`Simulator::run_full`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn run_words_full(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let expected = self.circuit.num_inputs();
        if inputs.len() != expected {
            return Err(NetlistError::InputWidthMismatch {
                expected,
                got: inputs.len(),
            });
        }
        let mut values = vec![0u64; self.circuit.num_nets()];
        for (pos, &net) in self.circuit.inputs().iter().enumerate() {
            values[net.index()] = inputs[pos];
        }
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &gid in &self.topo {
            let gate = self.circuit.gate(gid);
            scratch.clear();
            scratch.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.ty.eval_word(&scratch);
        }
        Ok(values)
    }

    /// Evaluates the circuit on the pattern described by `(net, value)`
    /// assignments for the primary inputs; unassigned inputs default to
    /// `false`. Convenient when only a subset of inputs (e.g. only key
    /// inputs) is of interest.
    ///
    /// # Errors
    ///
    /// Propagates width errors from [`Simulator::run`]; assignments to nets
    /// that are not primary inputs are ignored.
    pub fn run_assignment(&self, assignment: &[(NetId, bool)]) -> Result<Vec<bool>, NetlistError> {
        let mut pattern = vec![false; self.circuit.num_inputs()];
        for &(net, value) in assignment {
            if let Some(pos) = self.circuit.input_position(net) {
                pattern[pos] = value;
            }
        }
        self.run(&pattern)
    }
}

/// Exhaustively compares two circuits with identical input/output widths on
/// all `2^n` patterns (intended for small `n` in tests). Returns `true` when
/// every output of `a` matches the corresponding output of `b` on every
/// pattern.
///
/// # Errors
///
/// Returns an error if either circuit cannot be simulated or the interface
/// widths differ.
///
/// # Panics
///
/// Panics if the circuits have more than 24 inputs (exhaustive comparison
/// would be intractable; use the SAT-based equivalence check instead).
pub fn exhaustively_equivalent(a: &Circuit, b: &Circuit) -> Result<bool, NetlistError> {
    assert!(
        a.num_inputs() <= 24,
        "exhaustive comparison limited to 24 inputs"
    );
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return Err(NetlistError::Transform(
            "interface widths differ between compared circuits".into(),
        ));
    }
    let sim_a = Simulator::new(a)?;
    let sim_b = Simulator::new(b)?;
    let n = a.num_inputs();
    for pattern in 0u64..(1u64 << n) {
        let bits: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
        if sim_a.run(&bits)? != sim_b.run(&bits)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateType;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let cin = c.add_input("cin").unwrap();
        let s1 = c.add_gate(GateType::Xor, "s1", &[a, b]).unwrap();
        let sum = c.add_gate(GateType::Xor, "sum", &[s1, cin]).unwrap();
        let c1 = c.add_gate(GateType::And, "c1", &[a, b]).unwrap();
        let c2 = c.add_gate(GateType::And, "c2", &[s1, cin]).unwrap();
        let cout = c.add_gate(GateType::Or, "cout", &[c1, c2]).unwrap();
        c.mark_output(sum);
        c.mark_output(cout);
        c
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u32..8 {
            let a = pattern & 1 != 0;
            let b = pattern & 2 != 0;
            let cin = pattern & 4 != 0;
            let expected_sum = (a as u32 + b as u32 + cin as u32) & 1 != 0;
            let expected_cout = (a as u32 + b as u32 + cin as u32) >= 2;
            let out = sim.run(&[a, b, cin]).unwrap();
            assert_eq!(out, vec![expected_sum, expected_cout], "pattern {pattern}");
        }
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        // Pack the 8 possible patterns into the low bits of the words.
        let mut words = vec![0u64; 3];
        for pattern in 0u64..8 {
            for (i, word) in words.iter_mut().enumerate() {
                if pattern >> i & 1 != 0 {
                    *word |= 1 << pattern;
                }
            }
        }
        let out_words = sim.run_words(&words).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let scalar = sim.run(&bits).unwrap();
            for (o, &word) in out_words.iter().enumerate() {
                assert_eq!(word >> pattern & 1 != 0, scalar[o]);
            }
        }
    }

    #[test]
    fn width_mismatch_is_reported() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        assert!(matches!(
            sim.run(&[true, false]),
            Err(NetlistError::InputWidthMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            sim.run_words(&[0, 0, 0, 0]),
            Err(NetlistError::InputWidthMismatch {
                expected: 3,
                got: 4
            })
        ));
    }

    #[test]
    fn run_assignment_defaults_unset_inputs_to_zero() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let a = c.find_net("a").unwrap();
        let out = sim.run_assignment(&[(a, true)]).unwrap();
        assert_eq!(out, vec![true, false]); // 1 + 0 + 0 = sum 1, carry 0
    }

    #[test]
    fn exhaustive_equivalence_detects_difference() {
        let c = full_adder();
        let mut d = full_adder();
        assert!(exhaustively_equivalent(&c, &d).unwrap());
        // Turn the carry OR into XOR: differs when both AND terms are 1,
        // which never happens for a full adder, so still equivalent.
        // Instead, break the sum: swap XOR for XNOR.
        let s1 = d.find_net("s1").unwrap();
        let cin = d.find_net("cin").unwrap();
        let bad = d.add_gate(GateType::Xnor, "bad_sum", &[s1, cin]).unwrap();
        d.replace_output_at(0, bad);
        assert!(!exhaustively_equivalent(&c, &d).unwrap());
    }
}
