//! Gate-level combinational netlist infrastructure for the KRATT reproduction.
//!
//! This crate is the substrate every other crate builds on. It provides:
//!
//! * [`Circuit`] — a gate-level combinational netlist with named nets, primary
//!   inputs/outputs and a key-input naming convention (`keyinput*`), mirroring
//!   how locked ISCAS'85 / ITC'99 benchmarks are distributed.
//! * [`GateType`] — the Boolean gate library used by the ISCAS `.bench` format.
//! * `.bench` parsing and writing ([`bench`]) and structural gate-level
//!   Verilog parsing and writing ([`verilog`]).
//! * Single-pattern and 64-way bit-parallel simulation ([`sim`]).
//! * The structurally-hashed And-Inverter-Graph core IR ([`aig`]):
//!   complemented edges, constant folding, `Circuit ↔ Aig` lowering/raising
//!   that preserves the primary interface, packed node simulation and
//!   AIG-side miters — the shared substrate of resynthesis, CNF encoding
//!   and fraig-style equivalence checking.
//! * Structural analysis: topological ordering, fan-in/fan-out cones, logic
//!   levels, and circuit statistics ([`analysis`]).
//! * Functionality-preserving and key-aware transformations: constant
//!   propagation, cone extraction, input substitution and cone removal
//!   ([`transform`]) — the building blocks of KRATT's *logic removal* and
//!   *circuit modification* steps as well as of the resynthesis engine.
//!
//! # Example
//!
//! ```
//! use kratt_netlist::{Circuit, GateType};
//!
//! # fn main() -> Result<(), kratt_netlist::NetlistError> {
//! // Build a 3-input majority gate: maj = ab + ax + bx.
//! let mut c = Circuit::new("majority");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let x = c.add_input("x")?;
//! let ab = c.add_gate(GateType::And, "ab", &[a, b])?;
//! let ax = c.add_gate(GateType::And, "ax", &[a, x])?;
//! let bx = c.add_gate(GateType::And, "bx", &[b, x])?;
//! let maj = c.add_gate(GateType::Or, "maj", &[ab, ax, bx])?;
//! c.mark_output(maj);
//! assert_eq!(c.simulate(&[true, true, false])?, vec![true]);
//! assert_eq!(c.simulate(&[true, false, false])?, vec![false]);
//! # Ok(())
//! # }
//! ```

pub mod aig;
pub mod analysis;
pub mod bench;
pub mod circuit;
pub mod error;
pub mod gate;
pub mod rewrite;
mod rewrite_table;
pub mod sim;
pub mod transform;
pub mod verilog;

pub use aig::{Aig, AigLit, AigStats, AigViolation};
pub use circuit::{Circuit, GateId, NetId};
pub use error::NetlistError;
pub use gate::GateType;

/// Default prefix used to recognise key inputs among the primary inputs of a
/// locked netlist (`keyinput0`, `keyinput1`, ...). This follows the naming
/// convention of the public locked ISCAS/ITC benchmark suites used in the
/// paper's evaluation.
pub const KEY_INPUT_PREFIX: &str = "keyinput";
