//! Logic locking techniques evaluated in the KRATT paper.
//!
//! The paper groups the state-of-the-art SAT-resilient techniques into two
//! families (its Fig. 1):
//!
//! * **SFLTs** (single flip locking techniques) — a locking unit computes a
//!   critical signal `cs1` from the protected primary inputs and the key
//!   inputs and XORs it into an original primary output. For the secret key
//!   the critical signal is constant, so the circuit is unmodified.
//!   Implemented here: [`SarLock`], [`AntiSat`], [`CasLock`], [`GenAntiSat`].
//! * **DFLTs** (double flip locking techniques) — a perturb unit corrupts the
//!   original circuit on a *hard-wired* protected input pattern (producing the
//!   functionality-stripped circuit, FSC) and a restore unit flips the output
//!   back when the key matches. Implemented here: [`TtLock`], [`Cac`],
//!   [`SfllHd`].
//! * The paper's §V "challenging" schemes, whose restore tables are meant to
//!   sit in read-proof hardware: [`SfllFlex`] and [`LutLock`] ([`flex`]).
//! * [`RandomXorLocking`] (RLL) is additionally provided as the classic
//!   pre-SAT-attack baseline, useful for testing the oracle-guided attacks.
//!
//! Every technique implements the [`LockingTechnique`] trait: given an
//! original circuit and a [`SecretKey`], it returns a [`LockedCircuit`]
//! carrying the locked netlist plus the metadata an evaluation harness needs
//! (which inputs are protected, which output was corrupted, what the secret
//! is).
//!
//! # Example
//!
//! ```
//! use kratt_locking::{LockingTechnique, SarLock, SecretKey};
//! use kratt_netlist::{Circuit, GateType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-input majority circuit, locked with a 3-bit SARLock unit.
//! let mut c = Circuit::new("majority");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let x = c.add_input("x")?;
//! let ab = c.add_gate(GateType::And, "ab", &[a, b])?;
//! let ax = c.add_gate(GateType::And, "ax", &[a, x])?;
//! let bx = c.add_gate(GateType::And, "bx", &[b, x])?;
//! let maj = c.add_gate(GateType::Or, "maj", &[ab, ax, bx])?;
//! c.mark_output(maj);
//!
//! let key = SecretKey::from_u64(0b101, 3);
//! let locked = SarLock::new(3).lock(&c, &key)?;
//! assert_eq!(locked.circuit.key_inputs().len(), 3);
//! // With the correct key the locked circuit matches the original.
//! let unlocked = locked.apply_key(&key)?;
//! assert!(kratt_netlist::sim::exhaustively_equivalent(&c, &unlocked)?);
//! # Ok(())
//! # }
//! ```

pub mod common;
pub mod dflt;
pub mod error;
pub mod flex;
pub mod metrics;
pub mod rll;
pub mod scheme;
pub mod sflt;

pub use common::{apply_key, LockedCircuit, LockingTechnique, SecretKey, TechniqueKind};
pub use dflt::{Cac, SfllHd, TtLock};
pub use error::LockError;
pub use flex::{LutLock, SfllFlex};
pub use metrics::{corruption_profile, CorruptionReport};
pub use rll::RandomXorLocking;
pub use scheme::{derive_secret, scheme_registry, SchemeRegistry, SchemeSpec};
pub use sflt::{AntiSat, CasLock, GenAntiSat, SarLock};

/// All paper-evaluated techniques with a given key length, in the order the
/// paper's tables list them (Anti-SAT, SARLock, CAC, TTLock). Useful for
/// experiment sweeps.
pub fn table_techniques(key_bits: usize) -> Vec<Box<dyn LockingTechnique>> {
    vec![
        Box::new(AntiSat::new(key_bits)),
        Box::new(SarLock::new(key_bits)),
        Box::new(Cac::new(key_bits)),
        Box::new(TtLock::new(key_bits)),
    ]
}
