//! Single flip locking techniques (SFLTs): SARLock, Anti-SAT, CAS-Lock and
//! Gen-Anti-SAT.
//!
//! All four follow the template of the paper's Fig. 1(a): a locking unit
//! computes a critical signal from the protected primary inputs and the key
//! inputs, and that signal is XORed into one primary output. For the secret
//! key the critical signal is constant 0, so the circuit behaves exactly like
//! the original; for a wrong key it flips the output on (at least) one
//! protected input pattern, which is what makes the techniques resilient to
//! the SAT-based attack.

use crate::common::{
    choose_protected_inputs, choose_target_output, clone_with_key_inputs, comparator,
    corrupt_output, hardwired_comparator, mixed_reduction_tree, reduction_tree, LockedCircuit,
    LockingTechnique, SecretKey, TechniqueKind,
};
use crate::LockError;
use kratt_netlist::{Circuit, GateType, NetId};

/// SARLock: a comparator between the protected inputs and the key, masked so
/// the hard-wired secret never flips the output.
///
/// The flip signal is `(PPI == K) AND (K != secret)`: a wrong key corrupts
/// exactly the one input pattern equal to that key, so each DIP of the
/// SAT-based attack eliminates a single wrong key (the paper's Fig. 2).
#[derive(Debug, Clone)]
pub struct SarLock {
    key_bits: usize,
    target_output: Option<usize>,
}

impl SarLock {
    /// SARLock with `key_bits` key inputs (and as many protected inputs).
    pub fn new(key_bits: usize) -> Self {
        SarLock {
            key_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }
}

impl LockingTechnique for SarLock {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::SarLock
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.key_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits, "sarlock")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|n| locked.find_net(n).expect("cloned input"))
            .collect();

        let matches_key = comparator(&mut locked, &ppis, &keys, "sar_cmp")?;
        let is_secret = hardwired_comparator(&mut locked, &keys, secret.bits(), "sar_mask")?;
        let not_secret = locked.add_gate_auto(GateType::Not, "sar_maskn", &[is_secret])?;
        let flip = locked.add_gate_auto(GateType::And, "sar_flip", &[matches_key, not_secret])?;
        corrupt_output(&mut locked, target_output, flip)?;

        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::SarLock,
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

/// Anti-SAT: two complementary AND-tree functions over key-XORed protected
/// inputs; their conjunction is constant 0 exactly for the correct keys.
///
/// Each protected input is associated with *two* key inputs (`keyinput{i}`
/// and `keyinput{i + n}`), as in the paper's Fig. 3(b). The polarity of the
/// second block is chosen so that the caller's secret key is a correct key.
#[derive(Debug, Clone)]
pub struct AntiSat {
    key_bits: usize,
    target_output: Option<usize>,
}

impl AntiSat {
    /// Anti-SAT with `key_bits` key inputs (`key_bits / 2` protected inputs).
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is odd: Anti-SAT always uses key pairs.
    pub fn new(key_bits: usize) -> Self {
        assert!(
            key_bits.is_multiple_of(2),
            "Anti-SAT requires an even number of key bits"
        );
        AntiSat {
            key_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }

    fn build_blocks(
        &self,
        locked: &mut Circuit,
        ppis: &[NetId],
        keys: &[NetId],
        secret: &SecretKey,
        mixed: bool,
    ) -> Result<NetId, LockError> {
        let n = ppis.len();
        let (left_keys, right_keys) = keys.split_at(n);
        let (left_secret, right_secret) = secret.bits().split_at(n);

        // Left block: a_i = ppi_i XOR kl_i.
        let left_bits: Vec<NetId> = ppis
            .iter()
            .zip(left_keys)
            .map(|(&p, &k)| locked.add_gate_auto(GateType::Xor, "as_l", &[p, k]))
            .collect::<Result<_, _>>()?;
        // Right block: b_i = ppi_i XOR kr_i XOR beta_i where beta = sl XOR sr,
        // so that for the caller's secret the two blocks see identical
        // vectors and the conjunction below is constant 0.
        let right_bits: Vec<NetId> = ppis
            .iter()
            .zip(right_keys)
            .zip(left_secret.iter().zip(right_secret))
            .map(|((&p, &k), (&sl, &sr))| {
                let ty = if sl ^ sr {
                    GateType::Xnor
                } else {
                    GateType::Xor
                };
                locked.add_gate_auto(ty, "as_r", &[p, k])
            })
            .collect::<Result<_, _>>()?;

        let (g, gb) = if mixed {
            (
                mixed_reduction_tree(locked, GateType::And, GateType::Or, &left_bits, "cas_g")?,
                mixed_reduction_tree(locked, GateType::And, GateType::Or, &right_bits, "cas_gb")?,
            )
        } else {
            (
                reduction_tree(locked, GateType::And, &left_bits, "as_g")?,
                reduction_tree(locked, GateType::And, &right_bits, "as_gb")?,
            )
        };
        let not_gb = locked.add_gate_auto(GateType::Not, "as_gbn", &[gb])?;
        Ok(locked.add_gate_auto(GateType::And, "as_flip", &[g, not_gb])?)
    }
}

impl LockingTechnique for AntiSat {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::AntiSat
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        lock_anti_sat_family(self, original, secret, false, TechniqueKind::AntiSat)
    }
}

/// CAS-Lock: the Anti-SAT construction with a mixed AND/OR reduction tree,
/// trading corruption for SAT resilience as described in the paper.
#[derive(Debug, Clone)]
pub struct CasLock {
    inner: AntiSat,
}

impl CasLock {
    /// CAS-Lock with `key_bits` key inputs (`key_bits / 2` protected inputs).
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is odd.
    pub fn new(key_bits: usize) -> Self {
        CasLock {
            inner: AntiSat::new(key_bits),
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.inner = self.inner.with_target_output(index);
        self
    }
}

impl LockingTechnique for CasLock {
    fn key_bits(&self) -> usize {
        self.inner.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::CasLock
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        lock_anti_sat_family(&self.inner, original, secret, true, TechniqueKind::CasLock)
    }
}

fn lock_anti_sat_family(
    technique: &AntiSat,
    original: &Circuit,
    secret: &SecretKey,
    mixed: bool,
    kind: TechniqueKind,
) -> Result<LockedCircuit, LockError> {
    if secret.len() != technique.key_bits {
        return Err(LockError::KeyWidthMismatch {
            expected: technique.key_bits,
            got: secret.len(),
        });
    }
    let n = technique.key_bits / 2;
    let target_output = choose_target_output(original, technique.target_output)?;
    let ppis = choose_protected_inputs(original, n)?;
    let ppi_names = original.net_names(&ppis);
    let (mut locked, keys) = clone_with_key_inputs(
        original,
        technique.key_bits,
        &kind.to_string().to_lowercase(),
    )?;
    let ppis: Vec<NetId> = ppi_names
        .iter()
        .map(|nm| locked.find_net(nm).expect("cloned input"))
        .collect();
    let flip = technique.build_blocks(&mut locked, &ppis, &keys, secret, mixed)?;
    corrupt_output(&mut locked, target_output, flip)?;
    Ok(LockedCircuit {
        circuit: locked,
        technique: kind,
        secret: secret.clone(),
        protected_inputs: ppi_names,
        target_output,
    })
}

/// Gen-Anti-SAT: the generalization of Anti-SAT that replaces the
/// complementary function pair by *non-complementary* functions (here a
/// one-point AND tree and a wide-on-set OR tree), increasing output
/// corruption for wrong keys.
#[derive(Debug, Clone)]
pub struct GenAntiSat {
    key_bits: usize,
    target_output: Option<usize>,
}

impl GenAntiSat {
    /// Gen-Anti-SAT with `key_bits` key inputs (`key_bits / 2` protected
    /// inputs).
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is odd.
    pub fn new(key_bits: usize) -> Self {
        assert!(
            key_bits.is_multiple_of(2),
            "Gen-Anti-SAT requires an even number of key bits"
        );
        GenAntiSat {
            key_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }
}

impl LockingTechnique for GenAntiSat {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::GenAntiSat
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        let n = self.key_bits / 2;
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, n)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits, "genantisat")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        let (left_keys, right_keys) = keys.split_at(n);
        let (left_secret, right_secret) = secret.bits().split_at(n);

        // g1: one-point AND tree over ppi XOR kl — true only when the
        // protected inputs equal the bitwise complement of the left key.
        let left_bits: Vec<NetId> = ppis
            .iter()
            .zip(left_keys)
            .map(|(&p, &k)| locked.add_gate_auto(GateType::Xor, "gas_l", &[p, k]))
            .collect::<Result<_, _>>()?;
        let g1 = reduction_tree(&mut locked, GateType::And, &left_bits, "gas_g1")?;

        // g2: wide OR tree over ppi XOR kr XOR beta with beta chosen so the
        // caller's secret is a correct key: the two on-sets must be disjoint,
        // i.e. beta_i = NOT (sl_i XOR sr_i).
        let right_bits: Vec<NetId> = ppis
            .iter()
            .zip(right_keys)
            .zip(left_secret.iter().zip(right_secret))
            .map(|((&p, &k), (&sl, &sr))| {
                let beta = !(sl ^ sr);
                let ty = if beta { GateType::Xnor } else { GateType::Xor };
                locked.add_gate_auto(ty, "gas_r", &[p, k])
            })
            .collect::<Result<_, _>>()?;
        let g2 = reduction_tree(&mut locked, GateType::Or, &right_bits, "gas_g2")?;

        let flip = locked.add_gate_auto(GateType::And, "gas_flip", &[g1, g2])?;
        corrupt_output(&mut locked, target_output, flip)?;
        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::GenAntiSat,
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::verify_key_by_simulation;
    use kratt_netlist::sim::{exhaustively_equivalent, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority() -> Circuit {
        let mut c = Circuit::new("majority");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_input("x").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let ax = c.add_gate(GateType::And, "ax", &[a, x]).unwrap();
        let bx = c.add_gate(GateType::And, "bx", &[b, x]).unwrap();
        let maj = c.add_gate(GateType::Or, "maj", &[ab, ax, bx]).unwrap();
        c.mark_output(maj);
        c
    }

    fn adder4() -> Circuit {
        // 4-bit ripple-carry adder: 9 inputs (a0..3, b0..3, cin), 5 outputs.
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    fn exhaustive_wrong_key_corrupts(
        original: &Circuit,
        locked: &LockedCircuit,
        wrong: &SecretKey,
    ) -> bool {
        // Returns true if the wrong key corrupts at least one input pattern.
        let unlocked = locked.apply_key(wrong).unwrap();
        !exhaustively_equivalent(original, &unlocked).unwrap()
    }

    #[test]
    fn sarlock_correct_key_restores_function() {
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        assert_eq!(locked.circuit.key_inputs().len(), 3);
        assert_eq!(locked.protected_inputs, vec!["a", "b", "x"]);
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn sarlock_wrong_keys_corrupt_exactly_one_pattern() {
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let sim_orig = Simulator::new(&original).unwrap();
        for wrong in 0u64..8 {
            if wrong == secret.to_u64() {
                continue;
            }
            let unlocked = locked.apply_key(&SecretKey::from_u64(wrong, 3)).unwrap();
            let sim_bad = Simulator::new(&unlocked).unwrap();
            let mut differing = 0;
            for pattern in 0u64..8 {
                let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
                if sim_orig.run(&bits).unwrap() != sim_bad.run(&bits).unwrap() {
                    differing += 1;
                }
            }
            assert_eq!(
                differing, 1,
                "wrong key {wrong:03b} must corrupt exactly one pattern"
            );
        }
    }

    #[test]
    fn anti_sat_correct_key_restores_function() {
        let original = adder4();
        let mut rng = StdRng::seed_from_u64(7);
        let secret = SecretKey::random(&mut rng, 8);
        let locked = AntiSat::new(8).lock(&original, &secret).unwrap();
        assert_eq!(locked.circuit.key_inputs().len(), 8);
        assert_eq!(locked.protected_inputs.len(), 4);
        assert!(
            verify_key_by_simulation(&original, &locked.circuit, &secret, 64, &mut rng).unwrap()
        );
        // Exhaustive check on the small majority circuit too.
        let original = majority();
        let secret = SecretKey::from_u64(0b10_11, 4);
        let locked = AntiSat::new(4).lock(&original, &secret).unwrap();
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn anti_sat_some_wrong_key_corrupts() {
        let original = majority();
        let secret = SecretKey::from_u64(0b01_10, 4);
        let locked = AntiSat::new(4).lock(&original, &secret).unwrap();
        // A key whose left/right difference differs from the secret's must
        // corrupt at least one pattern.
        let wrong = SecretKey::from_u64(0b00_11 ^ 0b00_01, 4);
        assert!(exhaustive_wrong_key_corrupts(&original, &locked, &wrong));
    }

    #[test]
    fn cas_lock_correct_key_restores_function() {
        let original = adder4();
        let mut rng = StdRng::seed_from_u64(11);
        let secret = SecretKey::random(&mut rng, 8);
        let locked = CasLock::new(8).lock(&original, &secret).unwrap();
        assert_eq!(locked.technique, TechniqueKind::CasLock);
        assert!(
            verify_key_by_simulation(&original, &locked.circuit, &secret, 64, &mut rng).unwrap()
        );
        let original = majority();
        let secret = SecretKey::from_u64(0b11_01, 4);
        let locked = CasLock::new(4).lock(&original, &secret).unwrap();
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn gen_anti_sat_correct_key_restores_and_wrong_key_corrupts() {
        let original = majority();
        let secret = SecretKey::from_u64(0b01_11, 4);
        let locked = GenAntiSat::new(4).lock(&original, &secret).unwrap();
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
        // Flip one bit of the right half: the on-sets now intersect.
        let wrong = SecretKey::from_u64(secret.to_u64() ^ 0b10_00, 4);
        assert!(exhaustive_wrong_key_corrupts(&original, &locked, &wrong));
    }

    #[test]
    fn wrong_key_width_is_rejected() {
        let original = majority();
        let secret = SecretKey::from_u64(0, 2);
        assert!(matches!(
            SarLock::new(3).lock(&original, &secret),
            Err(LockError::KeyWidthMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            AntiSat::new(8).lock(&original, &SecretKey::from_u64(0, 8)),
            Err(LockError::NotEnoughInputs {
                available: 3,
                needed: 4
            })
        ));
    }

    #[test]
    fn locked_netlists_keep_the_original_interface_plus_keys() {
        let original = adder4();
        let secret = SecretKey::from_u64(0x1ff & 0xab, 9);
        let locked = SarLock::new(9).lock(&original, &secret).unwrap();
        assert_eq!(locked.circuit.num_outputs(), original.num_outputs());
        assert_eq!(
            locked.circuit.num_inputs(),
            original.num_inputs() + 9,
            "inputs = original + key bits"
        );
        // The corrupted output keeps its name.
        let target = locked.target_output;
        assert_eq!(
            locked.circuit.net_name(locked.circuit.outputs()[target]),
            original.net_name(original.outputs()[target])
        );
    }

    proptest::proptest! {
        /// For every SFLT, the configured secret key always restores the
        /// original function (checked exhaustively on an 8-input adder).
        #[test]
        fn prop_sflt_correct_key_is_functional(seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let original = adder4();
            let techniques: Vec<Box<dyn LockingTechnique>> = vec![
                Box::new(SarLock::new(6)),
                Box::new(AntiSat::new(6)),
                Box::new(CasLock::new(6)),
                Box::new(GenAntiSat::new(6)),
            ];
            for technique in techniques {
                let secret = SecretKey::random(&mut rng, technique.key_bits());
                let locked = technique.lock(&original, &secret).unwrap();
                let unlocked = locked.apply_key(&secret).unwrap();
                proptest::prop_assert!(
                    exhaustively_equivalent(&original, &unlocked).unwrap(),
                    "{} failed with secret {}", technique.kind(), secret
                );
            }
        }
    }
}
