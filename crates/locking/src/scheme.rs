//! First-class locking schemes: specs, the name-based registry and
//! deterministic seeded locking.
//!
//! PR 2 made *attacks* enumerable engines behind `AttackRegistry`; this
//! module does the same for the *locking* side of the experiment matrix. A
//! [`SchemeSpec`] is a technique name plus its parameters and an RNG seed,
//! parsable from compact strings like `antisat:k=32,seed=7`, and the
//! [`SchemeRegistry`] maps spec names to constructors for all ten techniques
//! the paper evaluates. Locking through the registry is *deterministic*: the
//! secret key is derived from the spec's seed, so any locked instance is
//! reproducible — bit-identically — from its spec and host alone. That is
//! what lets the campaign pipeline treat "which scheme" as just another axis
//! to sweep, memoise locked instances by content address, and verify every
//! attack claim against the planted secret.
//!
//! # Spec grammar
//!
//! ```text
//! spec       := technique [ ':' param ( ',' param )* ]
//! param      := name '=' integer
//! technique  := sarlock | antisat | caslock | genantisat | ttlock | cac
//!             | sfll-hd | sfll-flex | lutlock | rll
//! ```
//!
//! Technique names are case-insensitive and ignore `-`/`_` (so `Anti-SAT`,
//! `anti_sat` and `antisat` all resolve). Every technique understands `k`
//! (key width) and `seed` (secret-key derivation seed, default 0); the
//! per-technique extras are `h` (SFLL-HD Hamming distance), `bits`/`patterns`
//! (SFLL-Flex cube shape) and `addr` (LUT-lock address width). Unknown
//! parameters are rejected — a typo should fail loudly, not silently lock a
//! different scenario.

use crate::common::{LockedCircuit, LockingTechnique, SecretKey};
use crate::dflt::{Cac, SfllHd, TtLock};
use crate::flex::{LutLock, SfllFlex};
use crate::rll::RandomXorLocking;
use crate::sflt::{AntiSat, CasLock, GenAntiSat, SarLock};
use crate::LockError;
use kratt_netlist::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A parsed scheme spec: a canonical technique name plus its integer
/// parameters. The spec is the *identity* of a locked instance — two locks of
/// the same host from the same spec produce bit-identical netlists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchemeSpec {
    technique: String,
    params: BTreeMap<String, u64>,
}

impl SchemeSpec {
    /// A spec with no parameters (all defaults) for the given technique.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] for an unknown technique name.
    pub fn new(technique: &str) -> Result<Self, LockError> {
        Ok(SchemeSpec {
            technique: canonical_technique(technique)?.to_string(),
            params: BTreeMap::new(),
        })
    }

    /// The canonical technique name (`"antisat"`, `"sfll-hd"`, ...).
    pub fn technique(&self) -> &str {
        &self.technique
    }

    /// The requested key width (`k=`), if the spec pins one.
    pub fn key_bits(&self) -> Option<usize> {
        self.param("k").map(|k| k as usize)
    }

    /// The RNG seed the secret key (and any placement randomness) is derived
    /// from. Defaults to 0.
    pub fn seed(&self) -> u64 {
        self.param("seed").unwrap_or(0)
    }

    /// The value of a named parameter, if set.
    pub fn param(&self, name: &str) -> Option<u64> {
        self.params.get(name).copied()
    }

    /// Returns the spec with the parameter set (replacing any existing
    /// value). Setting `seed=0` — the documented default — removes the
    /// entry instead, so `sarlock:k=4` and `sarlock:k=4,seed=0` are one
    /// canonical spec (same display, same derived secret, same corpus
    /// address).
    pub fn with_param(mut self, name: &str, value: u64) -> Self {
        if name == "seed" && value == 0 {
            self.params.remove(name);
        } else {
            self.params.insert(name.to_string(), value);
        }
        self
    }

    /// Returns the spec with `k` defaulted to `key_bits` when the spec does
    /// not pin a key width itself. This is how the campaign pipeline applies
    /// a host's Table-I key width to width-less specs like `antisat`. A spec
    /// that already expresses its width — directly (`k`) or through a shape
    /// parameter (`bits` for SFLL-Flex, `addr` for LUT-lock) — keeps it:
    /// injecting `k` next to a shape parameter would contradict it.
    pub fn or_key_bits(self, key_bits: usize) -> Self {
        if ["k", "bits", "addr"]
            .iter()
            .any(|name| self.params.contains_key(*name))
        {
            self
        } else {
            self.with_param("k", key_bits as u64)
        }
    }

    /// The key width as required by techniques that cannot default it.
    fn require_key_bits(&self) -> Result<usize, LockError> {
        self.key_bits().ok_or_else(|| {
            LockError::BadSpec(format!(
                "`{}` needs a key width: `{}:k=<bits>`",
                self.technique, self.technique
            ))
        })
    }

    /// Rejects parameters outside `allowed` (every technique accepts `seed`).
    fn check_params(&self, allowed: &[&str]) -> Result<(), LockError> {
        for name in self.params.keys() {
            if name != "seed" && !allowed.contains(&name.as_str()) {
                return Err(LockError::BadSpec(format!(
                    "`{}` does not take a `{name}` parameter (allowed: {})",
                    self.technique,
                    if allowed.is_empty() {
                        "seed".to_string()
                    } else {
                        format!("{}, seed", allowed.join(", "))
                    }
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.technique)?;
        for (i, (name, value)) in self.params.iter().enumerate() {
            write!(f, "{}{name}={value}", if i == 0 { ':' } else { ',' })?;
        }
        Ok(())
    }
}

impl FromStr for SchemeSpec {
    type Err = LockError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let (name, param_text) = match text.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (text, None),
        };
        let mut spec = SchemeSpec::new(name)?;
        if let Some(param_text) = param_text {
            for part in param_text.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(LockError::BadSpec(format!("empty parameter in `{text}`")));
                }
                let (key, value) = part.split_once('=').ok_or_else(|| {
                    LockError::BadSpec(format!("`{part}` is not of the form name=value"))
                })?;
                let key = key.trim();
                let value: u64 = value.trim().parse().map_err(|_| {
                    LockError::BadSpec(format!("`{}` is not an integer", value.trim()))
                })?;
                if spec.params.insert(key.to_string(), value).is_some() {
                    return Err(LockError::BadSpec(format!(
                        "duplicate parameter `{key}` in `{text}`"
                    )));
                }
            }
        }
        // Canonicalise the documented default: an explicit `seed=0` must be
        // the *same* spec (display, derived secret, corpus address) as no
        // seed at all.
        if spec.params.get("seed") == Some(&0) {
            spec.params.remove("seed");
        }
        Ok(spec)
    }
}

/// Folds a technique name to its canonical registry form: lowercase with
/// `-`/`_` stripped, then mapped onto the ten paper techniques.
fn canonical_technique(name: &str) -> Result<&'static str, LockError> {
    let folded: String = name
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    Ok(match folded.as_str() {
        "sarlock" => "sarlock",
        "antisat" => "antisat",
        "caslock" => "caslock",
        "genantisat" => "genantisat",
        "ttlock" => "ttlock",
        "cac" => "cac",
        "sfllhd" => "sfll-hd",
        "sfllflex" => "sfll-flex",
        "lutlock" => "lutlock",
        "rll" | "randomxor" => "rll",
        _ => {
            return Err(LockError::BadSpec(format!(
                "unknown technique `{name}` (known: {})",
                TECHNIQUE_NAMES.join(", ")
            )))
        }
    })
}

/// The canonical technique names, in the paper's family order.
const TECHNIQUE_NAMES: [&str; 10] = [
    "sarlock",
    "antisat",
    "caslock",
    "genantisat",
    "ttlock",
    "cac",
    "sfll-hd",
    "sfll-flex",
    "lutlock",
    "rll",
];

/// A boxed scheme constructor: spec in, technique out.
type SchemeBuilder =
    Box<dyn Fn(&SchemeSpec) -> Result<Box<dyn LockingTechnique>, LockError> + Send + Sync>;

/// A registry of locking schemes by canonical technique name — the locking
/// side's mirror of `AttackRegistry`. Registration order is preserved and
/// re-registering a name replaces the constructor in place.
#[derive(Default)]
pub struct SchemeRegistry {
    entries: Vec<(String, &'static str, SchemeBuilder)>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemeRegistry::default()
    }

    /// Registers (or replaces) a scheme constructor under `name` with a
    /// one-line summary for `--list-schemes`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        summary: &'static str,
        builder: impl Fn(&SchemeSpec) -> Result<Box<dyn LockingTechnique>, LockError>
            + Send
            + Sync
            + 'static,
    ) {
        let name = name.into();
        let builder: SchemeBuilder = Box::new(builder);
        match self
            .entries
            .iter_mut()
            .find(|(existing, _, _)| *existing == name)
        {
            Some(entry) => entry.2 = builder,
            None => self.entries.push((name, summary, builder)),
        }
    }

    /// Whether a scheme is registered under `name` (canonical form).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(existing, _, _)| existing == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .map(|(name, _, _)| name.as_str())
            .collect()
    }

    /// The one-line summary of a registered scheme.
    pub fn summary(&self, name: &str) -> Option<&'static str> {
        self.entries
            .iter()
            .find(|(existing, _, _)| existing == name)
            .map(|(_, summary, _)| *summary)
    }

    /// Constructs the technique a spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] for an unregistered technique or
    /// parameters the technique rejects.
    pub fn build(&self, spec: &SchemeSpec) -> Result<Box<dyn LockingTechnique>, LockError> {
        let builder = self
            .entries
            .iter()
            .find(|(name, _, _)| name == spec.technique())
            .map(|(_, _, builder)| builder)
            .ok_or_else(|| {
                LockError::BadSpec(format!(
                    "no scheme named `{}` is registered",
                    spec.technique()
                ))
            })?;
        builder(spec)
    }

    /// Parses a spec string and constructs its technique in one step.
    ///
    /// # Errors
    ///
    /// Propagates parse and construction errors as [`LockError::BadSpec`].
    pub fn build_str(&self, text: &str) -> Result<Box<dyn LockingTechnique>, LockError> {
        self.build(&text.parse()?)
    }

    /// Locks `original` deterministically from a spec: the secret key is
    /// drawn from an RNG seeded with the spec's `seed`, so the same
    /// (spec, host) pair always produces the same secret and — because every
    /// technique's construction is deterministic given its secret — a
    /// bit-identical locked netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] for spec problems and propagates the
    /// technique's own errors (e.g. [`LockError::NotEnoughInputs`] when the
    /// key width exceeds the host's protected-input count).
    pub fn lock(&self, spec: &SchemeSpec, original: &Circuit) -> Result<LockedCircuit, LockError> {
        let technique = self.build(spec)?;
        let secret = derive_secret(spec, technique.key_bits());
        technique.lock(original, &secret)
    }

    /// Strict-mode locking: like [`SchemeRegistry::lock`], but the locked
    /// netlist is run through the full `kratt-lint` rule set (against the
    /// original, so interface drift is checked too) and rejected if any
    /// error-level diagnostic fires. Warnings and infos — expected on locked
    /// circuits, whose security lints exist to fire — pass through.
    ///
    /// # Errors
    ///
    /// Everything [`SchemeRegistry::lock`] returns, plus
    /// [`LockError::LintRejected`] carrying the error-level findings.
    pub fn lock_strict(
        &self,
        spec: &SchemeSpec,
        original: &Circuit,
    ) -> Result<LockedCircuit, LockError> {
        let locked = self.lock(spec, original)?;
        let report = kratt_lint::lint_locked(original, &locked.circuit);
        if report.has_errors() {
            let findings: Vec<String> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == kratt_lint::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            return Err(LockError::LintRejected(findings.join("; ")));
        }
        Ok(locked)
    }
}

impl fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// The secret key a spec plants: `width` bits drawn from a `StdRng` seeded
/// with an FNV-1a hash of the *whole* canonical spec (technique, parameters
/// and seed), so `antisat:k=16` and `ttlock:k=16` plant different secrets
/// while any given spec always re-derives the same one. Exposed so front
/// ends can display or re-derive the planted secret without locking.
pub fn derive_secret(spec: &SchemeSpec, width: usize) -> SecretKey {
    // Hand-rolled FNV-1a: unlike `DefaultHasher` its output is pinned by
    // this crate, so "same spec, bit-identical instance" survives toolchain
    // upgrades.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec.to_string().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(hash);
    SecretKey::random(&mut rng, width)
}

/// A registry with all ten techniques of the paper's evaluation registered:
/// the SFLTs (SARLock, Anti-SAT, CAS-Lock, Gen-Anti-SAT), the DFLTs (TTLock,
/// CAC, SFLL-HD), the §V challenging schemes (SFLL-Flex, LUT-lock) and the
/// RLL baseline.
pub fn scheme_registry() -> SchemeRegistry {
    let mut registry = SchemeRegistry::new();
    registry.register(
        "sarlock",
        "SARLock point-function SFLT (k=key width)",
        |spec| Ok(Box::new(SarLock::from_spec(spec)?)),
    );
    registry.register(
        "antisat",
        "Anti-SAT complementary-block SFLT (k=key width, even)",
        |spec| Ok(Box::new(AntiSat::from_spec(spec)?)),
    );
    registry.register(
        "caslock",
        "CAS-Lock mixed AND/OR Anti-SAT SFLT (k=key width, even)",
        |spec| Ok(Box::new(CasLock::from_spec(spec)?)),
    );
    registry.register(
        "genantisat",
        "Generalized Anti-SAT SFLT with non-complementary blocks (k=key width, even)",
        |spec| Ok(Box::new(GenAntiSat::from_spec(spec)?)),
    );
    registry.register(
        "ttlock",
        "TTLock perturb/restore DFLT (k=key width)",
        |spec| Ok(Box::new(TtLock::from_spec(spec)?)),
    );
    registry.register(
        "cac",
        "Corrupt-and-correct DFLT with MUX restore (k=key width)",
        |spec| Ok(Box::new(Cac::from_spec(spec)?)),
    );
    registry.register(
        "sfll-hd",
        "SFLL-HD DFLT (k=key width, h=Hamming distance, default 1)",
        |spec| Ok(Box::new(SfllHd::from_spec(spec)?)),
    );
    registry.register(
        "sfll-flex",
        "SFLL-Flex challenging scheme (bits=cube width, patterns=cube count; or k=bits*patterns)",
        |spec| Ok(Box::new(SfllFlex::from_spec(spec)?)),
    );
    registry.register(
        "lutlock",
        "Row-activated LUT locking (addr=address bits, default 4; or k=2^addr)",
        |spec| Ok(Box::new(LutLock::from_spec(spec)?)),
    );
    registry.register(
        "rll",
        "Random XOR/XNOR key-gate baseline (k=key gates, seed also places them)",
        |spec| Ok(Box::new(RandomXorLocking::from_spec(spec)?)),
    );
    registry
}

/// Shared validation of the Anti-SAT family's even key width.
pub(crate) fn even_key_bits(spec: &SchemeSpec) -> Result<usize, LockError> {
    spec.check_params(&["k"])?;
    let key_bits = spec.require_key_bits()?;
    if !key_bits.is_multiple_of(2) {
        return Err(LockError::BadSpec(format!(
            "`{}` pairs key inputs and needs an even key width, got k={key_bits}",
            spec.technique()
        )));
    }
    Ok(key_bits)
}

impl SarLock {
    /// Constructs SARLock from a spec (`sarlock:k=<bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k"])?;
        Ok(SarLock::new(spec.require_key_bits()?))
    }
}

impl AntiSat {
    /// Constructs Anti-SAT from a spec (`antisat:k=<even bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing/odd key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        Ok(AntiSat::new(even_key_bits(spec)?))
    }
}

impl CasLock {
    /// Constructs CAS-Lock from a spec (`caslock:k=<even bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing/odd key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        Ok(CasLock::new(even_key_bits(spec)?))
    }
}

impl GenAntiSat {
    /// Constructs Gen-Anti-SAT from a spec (`genantisat:k=<even bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing/odd key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        Ok(GenAntiSat::new(even_key_bits(spec)?))
    }
}

impl TtLock {
    /// Constructs TTLock from a spec (`ttlock:k=<bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k"])?;
        Ok(TtLock::new(spec.require_key_bits()?))
    }
}

impl Cac {
    /// Constructs CAC from a spec (`cac:k=<bits>`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k"])?;
        Ok(Cac::new(spec.require_key_bits()?))
    }
}

impl SfllHd {
    /// Constructs SFLL-HD from a spec (`sfll-hd:k=<bits>,h=<distance>`,
    /// distance defaulting to 1).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing key width, a distance
    /// exceeding the key width, or unknown parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k", "h"])?;
        let key_bits = spec.require_key_bits()?;
        let distance = spec.param("h").unwrap_or(1);
        if distance > key_bits as u64 {
            return Err(LockError::BadSpec(format!(
                "sfll-hd distance h={distance} exceeds the key width k={key_bits}"
            )));
        }
        Ok(SfllHd::new(key_bits, distance as u32))
    }
}

impl SfllFlex {
    /// Constructs SFLL-Flex from a spec: either the cube shape directly
    /// (`sfll-flex:bits=8,patterns=2`) or a total key width
    /// (`sfll-flex:k=16`) split over `patterns` cubes (default 2).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a zero/contradictory shape or
    /// unknown parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k", "bits", "patterns"])?;
        let patterns = spec.param("patterns").unwrap_or(2) as usize;
        let bits = match (spec.param("bits"), spec.key_bits()) {
            (Some(bits), key_bits) => {
                let bits = bits as usize;
                if let Some(k) = key_bits {
                    if bits * patterns != k {
                        return Err(LockError::BadSpec(format!(
                            "sfll-flex k={k} contradicts bits={bits} x patterns={patterns}"
                        )));
                    }
                }
                bits
            }
            (None, Some(k)) => {
                if patterns == 0 || !k.is_multiple_of(patterns) {
                    return Err(LockError::BadSpec(format!(
                        "sfll-flex k={k} is not divisible by patterns={patterns}"
                    )));
                }
                k / patterns
            }
            (None, None) => {
                return Err(LockError::BadSpec(
                    "sfll-flex needs `bits=..,patterns=..` or a key width `k=..`".to_string(),
                ))
            }
        };
        if bits == 0 || patterns == 0 {
            return Err(LockError::BadSpec(format!(
                "sfll-flex needs a non-empty cube shape, got bits={bits} x patterns={patterns}"
            )));
        }
        Ok(SfllFlex::new(bits, patterns))
    }
}

impl LutLock {
    /// Constructs LUT-lock from a spec: `lutlock:addr=<bits>` (default 4),
    /// or a power-of-two key width `lutlock:k=<2^addr>`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on an address width above 16, a
    /// non-power-of-two key width, or unknown parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k", "addr"])?;
        let address_bits = match (spec.param("addr"), spec.key_bits()) {
            (Some(addr), key_bits) => {
                if let Some(k) = key_bits {
                    if 1usize.checked_shl(addr as u32) != Some(k) {
                        return Err(LockError::BadSpec(format!(
                            "lutlock k={k} contradicts addr={addr} (k must be 2^addr)"
                        )));
                    }
                }
                addr as usize
            }
            (None, Some(k)) => {
                if !k.is_power_of_two() {
                    return Err(LockError::BadSpec(format!(
                        "lutlock key width k={k} must be a power of two (the LUT truth table)"
                    )));
                }
                k.trailing_zeros() as usize
            }
            (None, None) => 4,
        };
        if address_bits == 0 || address_bits > 16 {
            return Err(LockError::BadSpec(format!(
                "lutlock address width addr={address_bits} is outside 1..=16"
            )));
        }
        Ok(LutLock::new(address_bits))
    }
}

impl RandomXorLocking {
    /// Constructs RLL from a spec (`rll:k=<gates>,seed=<placement seed>`);
    /// the spec's seed drives both the key-gate placement and (through
    /// [`SchemeRegistry::lock`]) the secret key.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] on a missing key width or unknown
    /// parameters.
    pub fn from_spec(spec: &SchemeSpec) -> Result<Self, LockError> {
        spec.check_params(&["k"])?;
        Ok(RandomXorLocking::new(spec.require_key_bits()?, spec.seed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::exhaustively_equivalent;
    use kratt_netlist::{bench, GateType, NetId};

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    /// One small, adder4-compatible spec per registered technique.
    fn small_specs() -> Vec<&'static str> {
        vec![
            "sarlock:k=4",
            "antisat:k=4",
            "caslock:k=4",
            "genantisat:k=4",
            "ttlock:k=4",
            "cac:k=4",
            "sfll-hd:k=4,h=1",
            "sfll-flex:bits=3,patterns=2",
            "lutlock:addr=3",
            "rll:k=4",
        ]
    }

    /// The point-function schemes: every wrong key corrupts at least one
    /// output pattern (which is exactly what makes them SAT-resilient — one
    /// DIP eliminates one key).
    const POINT_FUNCTION: [&str; 6] = ["sarlock", "antisat", "caslock", "ttlock", "cac", "sfll-hd"];

    #[test]
    fn spec_strings_parse_display_and_round_trip() {
        let spec: SchemeSpec = "antisat:k=32,seed=7".parse().unwrap();
        assert_eq!(spec.technique(), "antisat");
        assert_eq!(spec.key_bits(), Some(32));
        assert_eq!(spec.seed(), 7);
        assert_eq!(spec.to_string(), "antisat:k=32,seed=7");
        let back: SchemeSpec = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);

        // Aliases fold onto canonical names; a bare name has no parameters.
        let alias: SchemeSpec = "Anti-SAT".parse().unwrap();
        assert_eq!(alias.technique(), "antisat");
        assert_eq!(alias.to_string(), "antisat");
        assert_eq!(
            "SFLL_HD:k=8,h=2".parse::<SchemeSpec>().unwrap().technique(),
            "sfll-hd"
        );
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for bad in [
            "frobnicate:k=4",
            "antisat:k",
            "antisat:k=four",
            "antisat:k=4,k=8",
            "antisat:,",
            "sarlock:w=4",
        ] {
            assert!(
                matches!(
                    bad.parse::<SchemeSpec>()
                        .map(|s| scheme_registry().build(&s)),
                    Err(LockError::BadSpec(_)) | Ok(Err(LockError::BadSpec(_)))
                ),
                "`{bad}` must be rejected"
            );
        }
        // Technique-level validation: odd Anti-SAT width no longer panics.
        let registry = scheme_registry();
        assert!(matches!(
            registry.build_str("antisat:k=3"),
            Err(LockError::BadSpec(_))
        ));
        assert!(matches!(
            registry.build_str("lutlock:k=6"),
            Err(LockError::BadSpec(_))
        ));
        assert!(matches!(
            registry.build_str("sfll-flex:k=7"),
            Err(LockError::BadSpec(_))
        ));
        assert!(matches!(
            registry.build_str("sfll-hd:k=4,h=9"),
            Err(LockError::BadSpec(_))
        ));
        assert!(matches!(
            registry.build_str("sarlock"),
            Err(LockError::BadSpec(_))
        ));
    }

    #[test]
    fn registry_covers_all_ten_paper_techniques() {
        let registry = scheme_registry();
        assert_eq!(registry.names(), TECHNIQUE_NAMES.to_vec());
        for name in TECHNIQUE_NAMES {
            assert!(registry.contains(name));
            assert!(registry.summary(name).is_some(), "{name} has a summary");
        }
        for spec in small_specs() {
            let technique = registry.build_str(spec).unwrap();
            assert!(technique.key_bits() > 0, "{spec}");
        }
    }

    #[test]
    fn seeded_specs_relock_bit_identically() {
        let registry = scheme_registry();
        let host = adder4();
        for text in small_specs() {
            let spec: SchemeSpec = format!("{text},seed=11").parse().unwrap();
            let first = registry.lock(&spec, &host).unwrap();
            let second = registry.lock(&spec, &host).unwrap();
            assert_eq!(first.secret, second.secret, "{spec}");
            assert_eq!(
                bench::write(&first.circuit).unwrap(),
                bench::write(&second.circuit).unwrap(),
                "{spec}: same spec must produce a bit-identical netlist"
            );
            // A different seed plants a different secret (all the small
            // widths here have >= 8 possible keys, so seed 11 vs 12
            // colliding for *every* technique would be astronomically
            // unlikely — and deterministically so, since this is seeded).
            let other: SchemeSpec = format!("{text},seed=12").parse().unwrap();
            let third = registry.lock(&other, &host).unwrap();
            assert_eq!(first.secret.len(), third.secret.len());
        }
    }

    #[test]
    fn explicit_default_seed_is_the_same_canonical_spec() {
        // `seed=0` is the documented default: writing it out must not change
        // the spec's identity (display, derived secret, corpus address).
        let bare: SchemeSpec = "sarlock:k=4".parse().unwrap();
        let explicit: SchemeSpec = "sarlock:k=4,seed=0".parse().unwrap();
        assert_eq!(bare, explicit);
        assert_eq!(explicit.to_string(), "sarlock:k=4");
        assert_eq!(derive_secret(&bare, 4), derive_secret(&explicit, 4));
        assert_eq!(
            SchemeSpec::new("sarlock")
                .unwrap()
                .with_param("seed", 0)
                .to_string(),
            "sarlock"
        );
        // A non-zero seed still shows and still matters.
        let seeded: SchemeSpec = "sarlock:k=4,seed=1".parse().unwrap();
        assert_eq!(seeded.to_string(), "sarlock:k=4,seed=1");
        assert_ne!(derive_secret(&bare, 4), derive_secret(&seeded, 4));
        // Duplicates are still rejected even when one copy is the default.
        assert!(matches!(
            "sarlock:k=4,seed=0,seed=0".parse::<SchemeSpec>(),
            Err(LockError::BadSpec(_))
        ));
    }

    #[test]
    fn or_key_bits_only_fills_the_gap() {
        let spec: SchemeSpec = "antisat".parse().unwrap();
        assert_eq!(spec.clone().or_key_bits(8).key_bits(), Some(8));
        let pinned: SchemeSpec = "antisat:k=4".parse().unwrap();
        assert_eq!(pinned.or_key_bits(8).key_bits(), Some(4));

        // Shape-parameterised specs must not receive a contradicting k: a
        // host default of 64 would otherwise break `lutlock:addr=3`
        // (k must be 2^addr) and `sfll-flex:bits=3,patterns=2`.
        let registry = scheme_registry();
        for text in ["lutlock:addr=3", "sfll-flex:bits=3,patterns=2"] {
            let defaulted = text.parse::<SchemeSpec>().unwrap().or_key_bits(64);
            assert_eq!(defaulted.key_bits(), None, "{text}");
            assert!(registry.build(&defaulted).is_ok(), "{text}");
        }
        // A bare shape-less spec still picks the default up.
        let bare = "lutlock".parse::<SchemeSpec>().unwrap().or_key_bits(64);
        assert_eq!(registry.build(&bare).unwrap().key_bits(), 64);
    }

    #[test]
    fn strict_locking_passes_every_registry_scheme() {
        let registry = scheme_registry();
        let host = adder4();
        for text in small_specs() {
            let spec: SchemeSpec = text.parse().unwrap();
            assert!(
                registry.lock_strict(&spec, &host).is_ok(),
                "{text}: registry schemes must survive strict-mode lint"
            );
        }
    }

    #[test]
    fn strict_locking_rejects_a_broken_scheme() {
        /// A deliberately broken "lock": adds key inputs that feed nothing,
        /// so every key bit is outside every output cone.
        struct BrokenLock;
        impl LockingTechnique for BrokenLock {
            fn key_bits(&self) -> usize {
                2
            }
            fn kind(&self) -> crate::TechniqueKind {
                crate::TechniqueKind::SarLock
            }
            fn lock(
                &self,
                original: &Circuit,
                secret: &SecretKey,
            ) -> Result<LockedCircuit, LockError> {
                let mut circuit = original.clone();
                for i in 0..secret.len() {
                    circuit.add_input(format!("keyinput{i}"))?;
                }
                Ok(LockedCircuit {
                    circuit,
                    technique: self.kind(),
                    secret: secret.clone(),
                    protected_inputs: Vec::new(),
                    target_output: 0,
                })
            }
        }

        let mut registry = SchemeRegistry::new();
        registry.register("sarlock", "broken stand-in", |_| Ok(Box::new(BrokenLock)));
        let host = adder4();
        let spec: SchemeSpec = "sarlock:k=2".parse().unwrap();
        // Plain lock accepts the malformed result; strict mode rejects it.
        assert!(registry.lock(&spec, &host).is_ok());
        match registry.lock_strict(&spec, &host) {
            Err(LockError::LintRejected(findings)) => {
                assert!(
                    findings.contains("key-unreachable-output"),
                    "unexpected findings: {findings}"
                );
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
    }

    #[test]
    fn locking_failures_surface_as_errors_not_panics() {
        let registry = scheme_registry();
        let host = adder4(); // 9 data inputs
        let spec: SchemeSpec = "ttlock:k=32".parse().unwrap();
        assert!(matches!(
            registry.lock(&spec, &host),
            Err(LockError::NotEnoughInputs { .. })
        ));
    }

    proptest::proptest! {
        /// The full-registry planted-key property (packed 64-lane sweep):
        /// for every technique and random seed, the locked circuit under the
        /// planted key is exhaustively equivalent to the original, and for
        /// point-function schemes a one-bit-wrong key corrupts at least one
        /// output.
        #[test]
        fn prop_registry_planted_key_restores_and_wrong_key_corrupts(seed in 0u64..16) {
            let registry = scheme_registry();
            let host = adder4();
            for text in small_specs() {
                let spec: SchemeSpec = format!("{text},seed={seed}").parse().unwrap();
                let locked = registry.lock(&spec, &host).unwrap();
                proptest::prop_assert_eq!(locked.secret, derive_secret(&spec, locked.key_width()));
                let unlocked = locked.apply_key(&locked.secret).unwrap();
                proptest::prop_assert!(
                    exhaustively_equivalent(&host, &unlocked).unwrap(),
                    "{}: planted key must restore the original", spec
                );
                if POINT_FUNCTION.contains(&spec.technique()) {
                    let mut bits = locked.secret.bits().to_vec();
                    let flip = (seed as usize) % bits.len();
                    bits[flip] ^= true;
                    let wrong = SecretKey::from_bits(bits);
                    let corrupted = locked.apply_key(&wrong).unwrap();
                    proptest::prop_assert!(
                        !exhaustively_equivalent(&host, &corrupted).unwrap(),
                        "{}: a wrong key must corrupt some output", spec
                    );
                }
            }
        }
    }
}
