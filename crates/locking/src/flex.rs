//! The paper's §V "challenging" techniques: SFLL-Flex and row-activated LUT
//! locking.
//!
//! Both schemes strip the original functionality on a *set* of protected
//! primary input patterns and correct it with a restore unit whose contents
//! (the key) are meant to live in read-proof hardware [Tuyls et al., CHES'06].
//! Because the association between protected inputs and key inputs is hidden
//! from the adversary, no attack — KRATT included — can recover the key bits
//! themselves. What KRATT's structural analysis *can* do (paper §V) is
//! recover every protected pattern and rebuild the original circuit by adding
//! the patterns back into the functionality-stripped circuit with a
//! comparator and XOR logic; see `kratt::reconstruct`.
//!
//! The reproduction still materialises the restore unit in the locked netlist
//! (driven by ordinary `keyinput*` nets) so that [`LockedCircuit::apply_key`]
//! and the equivalence-based tests work; treat the restore cone as the model
//! of the tamper-proof memory.

use crate::common::{
    choose_protected_inputs, choose_target_output, clone_with_key_inputs, comparator,
    corrupt_output, hardwired_comparator, reduction_tree, LockedCircuit, LockingTechnique,
    SecretKey, TechniqueKind,
};
use crate::LockError;
use kratt_netlist::{Circuit, GateType, NetId};

/// SFLL-Flex(k×c): stripped-functionality locking that protects `k` input
/// patterns ("cubes") of `c` protected bits each.
///
/// The perturb unit flips the target output whenever the protected inputs
/// match *any* of the `k` hard-wired patterns; the restore unit flips it back
/// whenever they match any of the `k` patterns stored in the key. The key is
/// the concatenation of the `k` patterns (row 0 in bits `0..c`, row 1 in bits
/// `c..2c`, ...), i.e. `k * c` key bits in total.
#[derive(Debug, Clone)]
pub struct SfllFlex {
    pattern_bits: usize,
    num_patterns: usize,
    target_output: Option<usize>,
}

impl SfllFlex {
    /// SFLL-Flex protecting `num_patterns` patterns of `pattern_bits` bits.
    pub fn new(pattern_bits: usize, num_patterns: usize) -> Self {
        SfllFlex {
            pattern_bits,
            num_patterns,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }

    /// Number of protected bits per pattern.
    pub fn pattern_bits(&self) -> usize {
        self.pattern_bits
    }

    /// Number of protected patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Splits a flat key into its `num_patterns` rows.
    fn rows<'a>(&self, bits: &'a [bool]) -> impl Iterator<Item = &'a [bool]> + 'a {
        bits.chunks(self.pattern_bits)
    }
}

impl LockingTechnique for SfllFlex {
    fn key_bits(&self) -> usize {
        self.pattern_bits * self.num_patterns
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::SfllFlex(self.num_patterns as u32)
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if self.num_patterns == 0 || self.pattern_bits == 0 {
            return Err(LockError::NotEnoughInputs {
                available: 0,
                needed: 1,
            });
        }
        if secret.len() != self.key_bits() {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits(),
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.pattern_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits(), "sfll_flex")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        // Perturb unit: OR over the hard-wired pattern comparators (the FSC).
        let perturb_rows: Vec<NetId> = self
            .rows(secret.bits())
            .map(|row| hardwired_comparator(&mut locked, &ppis, row, "flex_pert"))
            .collect::<Result<_, _>>()?;
        let perturb = reduction_tree(&mut locked, GateType::Or, &perturb_rows, "flex_pert_or")?;
        corrupt_output(&mut locked, target_output, perturb)?;

        // Restore unit: OR over the key-row comparators (models the
        // tamper-proof pattern memory).
        let restore_rows: Vec<NetId> = keys
            .chunks(self.pattern_bits)
            .map(|row| comparator(&mut locked, &ppis, row, "flex_rest"))
            .collect::<Result<_, _>>()?;
        let restore = reduction_tree(&mut locked, GateType::Or, &restore_rows, "flex_rest_or")?;
        corrupt_output(&mut locked, target_output, restore)?;

        Ok(LockedCircuit {
            circuit: locked,
            technique: self.kind(),
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

/// Row-activated LUT locking: the correction logic is a look-up table
/// addressed by the protected primary inputs whose contents are the key.
///
/// The perturb unit flips the target output on every protected pattern whose
/// secret LUT entry is 1; the restore unit is the LUT itself (one AND of a
/// hard-wired address comparator with the corresponding key bit per row,
/// OR-reduced). The key therefore has `2^address_bits` bits — the truth table
/// of the correction function — and the correct key is the secret truth
/// table.
#[derive(Debug, Clone)]
pub struct LutLock {
    address_bits: usize,
    target_output: Option<usize>,
}

impl LutLock {
    /// LUT locking addressed by `address_bits` protected inputs
    /// (`2^address_bits` key bits).
    ///
    /// # Panics
    ///
    /// Panics if `address_bits` exceeds 16 — the key would have more than
    /// 65 536 bits, which is far beyond any published configuration and would
    /// only exhaust memory.
    pub fn new(address_bits: usize) -> Self {
        assert!(
            address_bits <= 16,
            "LUT locking with more than 16 address bits is not supported"
        );
        LutLock {
            address_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }

    /// Number of LUT address bits (protected inputs).
    pub fn address_bits(&self) -> usize {
        self.address_bits
    }

    fn address_pattern(&self, address: usize) -> Vec<bool> {
        (0..self.address_bits)
            .map(|bit| address >> bit & 1 != 0)
            .collect()
    }
}

impl LockingTechnique for LutLock {
    fn key_bits(&self) -> usize {
        1 << self.address_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::LutLock
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if self.address_bits == 0 {
            return Err(LockError::NotEnoughInputs {
                available: 0,
                needed: 1,
            });
        }
        if secret.len() != self.key_bits() {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits(),
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.address_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits(), "lut_lock")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        // Perturb unit: OR of the address comparators whose secret entry is 1.
        let mut perturb_rows: Vec<NetId> = Vec::new();
        for (address, &entry) in secret.bits().iter().enumerate() {
            if entry {
                let pattern = self.address_pattern(address);
                perturb_rows.push(hardwired_comparator(
                    &mut locked,
                    &ppis,
                    &pattern,
                    "lut_pert",
                )?);
            }
        }
        let perturb = reduction_tree(&mut locked, GateType::Or, &perturb_rows, "lut_pert_or")?;
        corrupt_output(&mut locked, target_output, perturb)?;

        // Restore unit: the LUT — row select AND key bit, OR-reduced.
        let mut restore_rows: Vec<NetId> = Vec::with_capacity(self.key_bits());
        for (address, &key) in keys.iter().enumerate() {
            let pattern = self.address_pattern(address);
            let select = hardwired_comparator(&mut locked, &ppis, &pattern, "lut_sel")?;
            restore_rows.push(locked.add_gate_auto(GateType::And, "lut_row", &[select, key])?);
        }
        let restore = reduction_tree(&mut locked, GateType::Or, &restore_rows, "lut_rest_or")?;
        corrupt_output(&mut locked, target_output, restore)?;

        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::LutLock,
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::{exhaustively_equivalent, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    /// Patterns (over all primary inputs) on which the keyed circuit differs
    /// from the original.
    fn corrupted_patterns(original: &Circuit, locked: &LockedCircuit, key: &SecretKey) -> Vec<u64> {
        let unlocked = locked.apply_key(key).unwrap();
        let sim_a = Simulator::new(original).unwrap();
        let sim_b = Simulator::new(&unlocked).unwrap();
        let n = original.num_inputs();
        (0u64..(1 << n))
            .filter(|&p| {
                let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
                sim_a.run(&bits).unwrap() != sim_b.run(&bits).unwrap()
            })
            .collect()
    }

    #[test]
    fn sfll_flex_correct_key_restores_the_function() {
        let original = adder4();
        // Two protected patterns of 3 bits: 0b101 and 0b010.
        let secret = SecretKey::from_bits(vec![true, false, true, false, true, false]);
        let locked = SfllFlex::new(3, 2).lock(&original, &secret).unwrap();
        assert_eq!(locked.key_width(), 6);
        assert!(corrupted_patterns(&original, &locked, &secret).is_empty());
    }

    #[test]
    fn sfll_flex_wrong_key_corrupts_every_unmatched_protected_pattern() {
        let original = adder4();
        let secret = SecretKey::from_bits(vec![true, false, true, false, true, false]);
        let locked = SfllFlex::new(3, 2).lock(&original, &secret).unwrap();
        // A key whose rows match neither protected pattern corrupts all input
        // patterns whose protected bits equal 0b101 or 0b010, plus the ones
        // matching the wrong rows.
        let wrong = SecretKey::from_bits(vec![false, false, false, true, true, true]);
        let corrupted = corrupted_patterns(&original, &locked, &wrong);
        assert!(!corrupted.is_empty());
        // Every input whose low 3 bits are a protected pattern must differ.
        let n = original.num_inputs();
        for input in 0u64..(1 << n) {
            let protected = input & 0b111;
            if protected == 0b101 || protected == 0b010 {
                assert!(
                    corrupted.contains(&input),
                    "pattern {input:b} should stay corrupted"
                );
            }
        }
    }

    #[test]
    fn sfll_flex_key_rows_are_order_insensitive() {
        // Storing the same set of patterns in a different row order is still
        // the correct key: the restore unit only checks set membership.
        let original = adder4();
        let secret = SecretKey::from_bits(vec![true, false, true, false, true, false]);
        let locked = SfllFlex::new(3, 2).lock(&original, &secret).unwrap();
        let swapped = SecretKey::from_bits(vec![false, true, false, true, false, true]);
        assert!(corrupted_patterns(&original, &locked, &swapped).is_empty());
        let unlocked = locked.apply_key(&swapped).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn sfll_flex_parameter_validation() {
        let original = adder4();
        assert!(matches!(
            SfllFlex::new(3, 2).lock(&original, &SecretKey::from_u64(0, 5)),
            Err(LockError::KeyWidthMismatch {
                expected: 6,
                got: 5
            })
        ));
        assert!(matches!(
            SfllFlex::new(0, 2).lock(&original, &SecretKey::from_u64(0, 0)),
            Err(LockError::NotEnoughInputs { .. })
        ));
        assert!(matches!(
            SfllFlex::new(12, 1).lock(&original, &SecretKey::from_u64(0, 12)),
            Err(LockError::NotEnoughInputs { .. })
        ));
    }

    #[test]
    fn lut_lock_correct_key_restores_the_function() {
        let original = adder4();
        // 3 address bits -> 8 key bits; protect addresses {1, 6}.
        let secret = SecretKey::from_u64(0b0100_0010, 8);
        let locked = LutLock::new(3).lock(&original, &secret).unwrap();
        assert_eq!(locked.key_width(), 8);
        assert!(corrupted_patterns(&original, &locked, &secret).is_empty());
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn lut_lock_wrong_key_corrupts_exactly_the_mismatched_rows() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b0000_0010, 8); // protect address 1
        let locked = LutLock::new(3).lock(&original, &secret).unwrap();
        // Wrong key that protects address 2 instead: inputs whose protected
        // bits decode to address 1 (still stripped) or address 2 (wrongly
        // flipped) are corrupted, everything else is untouched.
        let wrong = SecretKey::from_u64(0b0000_0100, 8);
        let corrupted = corrupted_patterns(&original, &locked, &wrong);
        assert!(!corrupted.is_empty());
        for input in corrupted {
            let address = input & 0b111;
            assert!(
                address == 1 || address == 2,
                "unexpected corrupted address {address}"
            );
        }
    }

    #[test]
    fn lut_lock_all_zero_secret_locks_nothing() {
        // An all-zero truth table means the perturb unit never fires; the
        // all-zero key is then correct and the circuit is never corrupted.
        let original = adder4();
        let secret = SecretKey::from_u64(0, 8);
        let locked = LutLock::new(3).lock(&original, &secret).unwrap();
        assert!(corrupted_patterns(&original, &locked, &secret).is_empty());
    }

    #[test]
    fn lut_lock_parameter_validation() {
        let original = adder4();
        assert!(matches!(
            LutLock::new(3).lock(&original, &SecretKey::from_u64(0, 4)),
            Err(LockError::KeyWidthMismatch {
                expected: 8,
                got: 4
            })
        ));
        assert!(matches!(
            LutLock::new(0).lock(&original, &SecretKey::from_u64(0, 1)),
            Err(LockError::NotEnoughInputs { .. })
        ));
    }

    #[test]
    fn kinds_are_reported_as_dflts() {
        assert!(TechniqueKind::SfllFlex(4).is_dflt());
        assert!(TechniqueKind::LutLock.is_dflt());
        assert!(!TechniqueKind::SfllFlex(4).is_sflt());
        assert_eq!(SfllFlex::new(3, 2).kind(), TechniqueKind::SfllFlex(2));
        assert_eq!(LutLock::new(4).kind(), TechniqueKind::LutLock);
        assert_eq!(SfllFlex::new(3, 2).key_bits(), 6);
        assert_eq!(LutLock::new(4).key_bits(), 16);
    }

    proptest::proptest! {
        /// Both §V techniques restore the original function under the secret
        /// key for random secrets.
        #[test]
        fn prop_flex_and_lut_correct_key_is_functional(seed in 0u64..12) {
            let mut rng = StdRng::seed_from_u64(seed);
            let original = adder4();
            let flex = SfllFlex::new(4, 2);
            let secret = SecretKey::random(&mut rng, flex.key_bits());
            let locked = flex.lock(&original, &secret).unwrap();
            let unlocked = locked.apply_key(&secret).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&original, &unlocked).unwrap());

            let lut = LutLock::new(3);
            let secret = SecretKey::random(&mut rng, lut.key_bits());
            let locked = lut.lock(&original, &secret).unwrap();
            let unlocked = locked.apply_key(&secret).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
        }
    }
}
