//! Shared types and circuit gadgets used by every locking technique.

use crate::LockError;
use kratt_netlist::analysis::fanin_cone_gates;
use kratt_netlist::transform::set_inputs_constant;
use kratt_netlist::{Circuit, GateType, NetId, KEY_INPUT_PREFIX};
use rand::Rng;
use std::fmt;

/// A secret key: the bit vector the locking technique hard-wires into its
/// corruption logic and that the attacks try to recover.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SecretKey {
    bits: Vec<bool>,
}

impl SecretKey {
    /// Builds a key from explicit bits (index 0 = `keyinput0`).
    pub fn from_bits(bits: Vec<bool>) -> Self {
        SecretKey { bits }
    }

    /// Builds a key from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        SecretKey {
            bits: (0..width).map(|i| value >> i & 1 != 0).collect(),
        }
    }

    /// Samples a uniformly random key of the given width.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: usize) -> Self {
        SecretKey {
            bits: (0..width).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// The key bits (index 0 = `keyinput0`).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The key packed into a `u64` (low bit = bit 0).
    ///
    /// # Panics
    ///
    /// Panics if the key is wider than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(self.bits.len() <= 64, "key too wide for u64");
        self.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    /// Renders the key as a width-preserving Verilog-style hex literal,
    /// e.g. `5'h17` for the 5-bit key `10111`. Unlike the binary
    /// [`Display`](fmt::Display) form this stays readable for the 128-bit
    /// keys of the paper's larger benchmarks, so it is what the JSON reports
    /// carry.
    pub fn to_hex(&self) -> String {
        let mut digits = String::with_capacity(self.bits.len().div_ceil(4));
        for nibble_index in (0..self.bits.len().div_ceil(4)).rev() {
            let mut nibble = 0u8;
            for offset in 0..4 {
                let bit = nibble_index * 4 + offset;
                if self.bits.get(bit).copied().unwrap_or(false) {
                    nibble |= 1 << offset;
                }
            }
            digits.push(char::from_digit(u32::from(nibble), 16).expect("nibble < 16"));
        }
        if digits.is_empty() {
            digits.push('0');
        }
        format!("{}'h{}", self.bits.len(), digits)
    }

    /// Parses the width-preserving hex form produced by [`SecretKey::to_hex`]
    /// (`<width>'h<digits>`, most significant digit first).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadSpec`] if the string is not of that form, a
    /// digit is not hexadecimal, or the digits set a bit at or above `width`.
    pub fn from_hex(text: &str) -> Result<Self, LockError> {
        let bad = |message: String| LockError::BadSpec(message);
        let (width_text, digits) = text
            .split_once("'h")
            .ok_or_else(|| bad(format!("`{text}` is not of the form <width>'h<digits>")))?;
        let width: usize = width_text
            .parse()
            .map_err(|_| bad(format!("`{width_text}` is not a key width")))?;
        if digits.is_empty() {
            return Err(bad(format!("`{text}` has no hex digits")));
        }
        let mut bits = vec![false; width];
        for (nibble_index, c) in digits.chars().rev().enumerate() {
            let nibble = c
                .to_digit(16)
                .ok_or_else(|| bad(format!("`{c}` is not a hex digit")))?;
            for offset in 0..4 {
                if nibble >> offset & 1 != 0 {
                    let bit = nibble_index * 4 + offset;
                    if bit >= width {
                        return Err(bad(format!(
                            "hex digits of `{text}` overflow the {width}-bit width"
                        )));
                    }
                    bits[bit] = true;
                }
            }
        }
        Ok(SecretKey { bits })
    }

    /// Number of bit positions on which `self` and `other` agree (compared up
    /// to the shorter length).
    pub fn matching_bits(&self, other: &SecretKey) -> usize {
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Most-significant bit first, as the paper writes k3k2k1.
        for &bit in self.bits.iter().rev() {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

/// The family / name of a locking technique, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// SARLock (SFLT).
    SarLock,
    /// Anti-SAT (SFLT).
    AntiSat,
    /// CAS-Lock (SFLT).
    CasLock,
    /// Generalized Anti-SAT (SFLT, non-complementary functions).
    GenAntiSat,
    /// TTLock (DFLT).
    TtLock,
    /// Corrupt-and-correct (DFLT).
    Cac,
    /// Stripped-functionality logic locking with Hamming distance `h` (DFLT).
    SfllHd(u32),
    /// SFLL-Flex protecting `k` input patterns whose restore table is meant to
    /// live in read-proof hardware (paper §V).
    SfllFlex(u32),
    /// Row-activated LUT locking: the correction LUT contents are the key
    /// (paper §V).
    LutLock,
    /// Random XOR/XNOR key-gate insertion (pre-SAT-attack baseline).
    RandomXor,
}

impl TechniqueKind {
    /// Whether the technique is a single flip locking technique.
    pub fn is_sflt(self) -> bool {
        matches!(
            self,
            TechniqueKind::SarLock
                | TechniqueKind::AntiSat
                | TechniqueKind::CasLock
                | TechniqueKind::GenAntiSat
        )
    }

    /// Whether the technique is a double flip locking technique.
    pub fn is_dflt(self) -> bool {
        matches!(
            self,
            TechniqueKind::TtLock
                | TechniqueKind::Cac
                | TechniqueKind::SfllHd(_)
                | TechniqueKind::SfllFlex(_)
                | TechniqueKind::LutLock
        )
    }
}

impl fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechniqueKind::SarLock => write!(f, "SARLock"),
            TechniqueKind::AntiSat => write!(f, "Anti-SAT"),
            TechniqueKind::CasLock => write!(f, "CAS-Lock"),
            TechniqueKind::GenAntiSat => write!(f, "Gen-Anti-SAT"),
            TechniqueKind::TtLock => write!(f, "TTLock"),
            TechniqueKind::Cac => write!(f, "CAC"),
            TechniqueKind::SfllHd(h) => write!(f, "SFLL-HD({h})"),
            TechniqueKind::SfllFlex(k) => write!(f, "SFLL-Flex({k})"),
            TechniqueKind::LutLock => write!(f, "LUT-Lock"),
            TechniqueKind::RandomXor => write!(f, "RLL"),
        }
    }
}

/// The result of locking a circuit: the locked netlist plus the metadata an
/// evaluation needs to score attacks against it.
#[derive(Debug, Clone)]
pub struct LockedCircuit {
    /// The locked netlist (key inputs named `keyinput*`).
    pub circuit: Circuit,
    /// The technique that produced it.
    pub technique: TechniqueKind,
    /// The secret key.
    pub secret: SecretKey,
    /// Names of the protected primary inputs, in key-association order (for
    /// Anti-SAT style techniques, protected input `i` is associated with key
    /// inputs `i` and `i + n`).
    pub protected_inputs: Vec<String>,
    /// Index of the corrupted primary output.
    pub target_output: usize,
}

impl LockedCircuit {
    /// Applies a key by tying the key inputs to constants and simplifying,
    /// producing an ordinary unlocked netlist with the original interface.
    ///
    /// # Errors
    ///
    /// Returns an error if the key width does not match the circuit's key
    /// inputs.
    pub fn apply_key(&self, key: &SecretKey) -> Result<Circuit, LockError> {
        apply_key(&self.circuit, key)
    }

    /// Number of key inputs in the locked netlist.
    pub fn key_width(&self) -> usize {
        self.circuit.key_inputs().len()
    }
}

/// Ties the key inputs of a locked netlist to the given key bits and
/// simplifies the result.
///
/// # Errors
///
/// Returns [`LockError::KeyWidthMismatch`] if the key width differs from the
/// number of key inputs.
pub fn apply_key(locked: &Circuit, key: &SecretKey) -> Result<Circuit, LockError> {
    let key_inputs = locked.key_inputs();
    if key_inputs.len() != key.len() {
        return Err(LockError::KeyWidthMismatch {
            expected: key_inputs.len(),
            got: key.len(),
        });
    }
    let assignment: Vec<(NetId, bool)> = key_inputs
        .iter()
        .copied()
        .zip(key.bits().iter().copied())
        .collect();
    Ok(set_inputs_constant(locked, &assignment)?)
}

/// Interface implemented by every locking technique.
pub trait LockingTechnique {
    /// The number of key bits the technique will insert for its configured
    /// parameters.
    fn key_bits(&self) -> usize;

    /// The technique's kind (for reporting).
    fn kind(&self) -> TechniqueKind;

    /// Locks `original` with `secret`, producing the locked netlist and its
    /// metadata.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit is too small for the configured
    /// parameters or the key width is wrong.
    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError>;
}

/// Chooses the primary output to corrupt: the one with the largest fan-in
/// cone (a proxy for "the most functionally significant output"), unless the
/// technique was configured with an explicit index.
pub(crate) fn choose_target_output(
    circuit: &Circuit,
    requested: Option<usize>,
) -> Result<usize, LockError> {
    if circuit.num_outputs() == 0 {
        return Err(LockError::NoOutputs);
    }
    match requested {
        Some(index) if index < circuit.num_outputs() => Ok(index),
        Some(index) => Err(LockError::BadTargetOutput(index)),
        None => {
            let mut best = 0;
            let mut best_size = 0;
            for (i, &o) in circuit.outputs().iter().enumerate() {
                let size = fanin_cone_gates(circuit, &[o]).len();
                if size > best_size {
                    best_size = size;
                    best = i;
                }
            }
            Ok(best)
        }
    }
}

/// Chooses the protected primary inputs: the first `n` data (non-key) inputs.
pub(crate) fn choose_protected_inputs(
    circuit: &Circuit,
    n: usize,
) -> Result<Vec<NetId>, LockError> {
    let data = circuit.data_inputs();
    if data.len() < n {
        return Err(LockError::NotEnoughInputs {
            available: data.len(),
            needed: n,
        });
    }
    Ok(data[..n].to_vec())
}

/// Starts a locked copy of `original`: clones the netlist, appends `key_bits`
/// fresh key inputs named `keyinput0..` and returns them.
pub(crate) fn clone_with_key_inputs(
    original: &Circuit,
    key_bits: usize,
    technique: &str,
) -> Result<(Circuit, Vec<NetId>), LockError> {
    let mut locked = original.clone();
    locked.set_name(format!("{}_{}", original.name(), technique));
    let mut keys = Vec::with_capacity(key_bits);
    for i in 0..key_bits {
        keys.push(locked.add_input(format!("{KEY_INPUT_PREFIX}{i}"))?);
    }
    Ok((locked, keys))
}

/// Builds a bit-wise equality comparator `AND_i (a_i XNOR b_i)` and returns
/// its output net.
pub(crate) fn comparator(
    circuit: &mut Circuit,
    a: &[NetId],
    b: &[NetId],
    prefix: &str,
) -> Result<NetId, LockError> {
    debug_assert_eq!(a.len(), b.len());
    let eqs: Vec<NetId> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| circuit.add_gate_auto(GateType::Xnor, &format!("{prefix}_eq"), &[x, y]))
        .collect::<Result<_, _>>()?;
    Ok(reduction_tree(
        circuit,
        GateType::And,
        &eqs,
        &format!("{prefix}_and"),
    )?)
}

/// Builds a comparator between nets and a hard-wired constant pattern:
/// `AND_i (a_i == pattern_i)` (inverters on the zero bits).
pub(crate) fn hardwired_comparator(
    circuit: &mut Circuit,
    a: &[NetId],
    pattern: &[bool],
    prefix: &str,
) -> Result<NetId, LockError> {
    debug_assert_eq!(a.len(), pattern.len());
    let terms: Vec<NetId> = a
        .iter()
        .zip(pattern)
        .map(|(&net, &bit)| {
            if bit {
                Ok(net)
            } else {
                circuit.add_gate_auto(GateType::Not, &format!("{prefix}_inv"), &[net])
            }
        })
        .collect::<Result<Vec<_>, kratt_netlist::NetlistError>>()?;
    Ok(reduction_tree(
        circuit,
        GateType::And,
        &terms,
        &format!("{prefix}_and"),
    )?)
}

/// Builds a balanced binary reduction tree of two-input gates of type `ty`
/// over `nets` and returns the root. A single net is passed through a buffer
/// so the result is always a gate output (which keeps unit-extraction logic
/// simple).
pub(crate) fn reduction_tree(
    circuit: &mut Circuit,
    ty: GateType,
    nets: &[NetId],
    prefix: &str,
) -> Result<NetId, kratt_netlist::NetlistError> {
    match nets.len() {
        0 => circuit.add_gate_auto(
            if ty == GateType::And {
                GateType::Const1
            } else {
                GateType::Const0
            },
            prefix,
            &[],
        ),
        1 => circuit.add_gate_auto(GateType::Buf, prefix, &[nets[0]]),
        _ => {
            let mut level: Vec<NetId> = nets.to_vec();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(circuit.add_gate_auto(ty, prefix, pair)?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

/// Like [`reduction_tree`] but alternates between two gate types level by
/// level (the CAS-Lock construction mixes AND and OR gates in its tree).
pub(crate) fn mixed_reduction_tree(
    circuit: &mut Circuit,
    first: GateType,
    second: GateType,
    nets: &[NetId],
    prefix: &str,
) -> Result<NetId, kratt_netlist::NetlistError> {
    if nets.len() <= 1 {
        return reduction_tree(circuit, first, nets, prefix);
    }
    let mut level: Vec<NetId> = nets.to_vec();
    let mut use_first = true;
    while level.len() > 1 {
        let ty = if use_first { first } else { second };
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(circuit.add_gate_auto(ty, prefix, pair)?);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        use_first = !use_first;
    }
    Ok(level[0])
}

/// XORs `flip` into the primary output at `target_output`, preserving the
/// output's original name on the new locked output net (the original net is
/// renamed with an `$enc` suffix). Returns the net that now carries the
/// locked output.
pub(crate) fn corrupt_output(
    circuit: &mut Circuit,
    target_output: usize,
    flip: NetId,
) -> Result<NetId, LockError> {
    let original = circuit.outputs()[target_output];
    let name = circuit.net_name(original).to_string();
    let renamed = circuit.fresh_net_name(&format!("{name}$enc"));
    circuit.rename_net(original, renamed)?;
    let locked = circuit.add_gate(GateType::Xor, name, &[original, flip])?;
    circuit.replace_output_at(target_output, locked);
    Ok(locked)
}

/// Checks a candidate key against the original circuit by simulating
/// `patterns` random input vectors (and the all-zero / all-one vectors).
/// Returns `true` when every simulated pattern agrees. This is a cheap,
/// probabilistic check; the `kratt-synth` crate provides the exact SAT-based
/// equivalence check.
pub fn verify_key_by_simulation<R: Rng + ?Sized>(
    original: &Circuit,
    locked: &Circuit,
    key: &SecretKey,
    patterns: usize,
    rng: &mut R,
) -> Result<bool, LockError> {
    let unlocked = apply_key(locked, key)?;
    let sim_orig = kratt_netlist::sim::Simulator::new(original).map_err(LockError::Netlist)?;
    let sim_unlocked = kratt_netlist::sim::Simulator::new(&unlocked).map_err(LockError::Netlist)?;
    let width = original.num_inputs();
    let mut vectors: Vec<Vec<bool>> = vec![vec![false; width], vec![true; width]];
    for _ in 0..patterns {
        vectors.push((0..width).map(|_| rng.gen_bool(0.5)).collect());
    }
    for vector in vectors {
        let a = sim_orig.run(&vector).map_err(LockError::Netlist)?;
        let b = sim_unlocked.run(&vector).map_err(LockError::Netlist)?;
        if a != b {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secret_key_round_trips() {
        let key = SecretKey::from_u64(0b1011, 4);
        assert_eq!(key.bits(), &[true, true, false, true]);
        assert_eq!(key.to_u64(), 0b1011);
        assert_eq!(key.len(), 4);
        assert_eq!(key.to_string(), "1011");
        let other = SecretKey::from_u64(0b1001, 4);
        assert_eq!(key.matching_bits(&other), 3);
    }

    #[test]
    fn secret_key_hex_round_trips_and_preserves_width() {
        // 5 bits: the top nibble is partial, which is exactly where a naive
        // encoding would lose the width.
        let key = SecretKey::from_u64(0b10111, 5);
        assert_eq!(key.to_hex(), "5'h17");
        assert_eq!(SecretKey::from_hex("5'h17").unwrap(), key);

        // Wide keys (beyond u64) round-trip too.
        let mut rng = StdRng::seed_from_u64(9);
        for width in [0usize, 1, 4, 7, 64, 128, 131] {
            let key = SecretKey::random(&mut rng, width);
            let hex = key.to_hex();
            let back = SecretKey::from_hex(&hex).unwrap();
            assert_eq!(back, key, "width {width} via {hex}");
            assert_eq!(back.len(), width);
        }
        assert_eq!(SecretKey::from_u64(0, 0).to_hex(), "0'h0");

        // Malformed forms are structured errors, not panics.
        for bad in ["", "17", "5h17", "x'h17", "5'h", "5'hg", "3'hf"] {
            assert!(
                matches!(SecretKey::from_hex(bad), Err(LockError::BadSpec(_))),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn random_keys_have_requested_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = SecretKey::random(&mut rng, 128);
        assert_eq!(key.len(), 128);
        assert!(!key.is_empty());
    }

    #[test]
    fn technique_kind_families() {
        assert!(TechniqueKind::SarLock.is_sflt());
        assert!(TechniqueKind::GenAntiSat.is_sflt());
        assert!(!TechniqueKind::SarLock.is_dflt());
        assert!(TechniqueKind::TtLock.is_dflt());
        assert!(TechniqueKind::SfllHd(2).is_dflt());
        assert!(!TechniqueKind::RandomXor.is_sflt());
        assert_eq!(TechniqueKind::SfllHd(2).to_string(), "SFLL-HD(2)");
    }

    #[test]
    fn reduction_trees_compute_expected_functions() {
        let mut c = Circuit::new("tree");
        let ins: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let and_root = reduction_tree(&mut c, GateType::And, &ins, "and").unwrap();
        let or_root = reduction_tree(&mut c, GateType::Or, &ins, "or").unwrap();
        c.mark_output(and_root);
        c.mark_output(or_root);
        let sim = kratt_netlist::sim::Simulator::new(&c).unwrap();
        for pattern in 0u64..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            let out = sim.run(&bits).unwrap();
            assert_eq!(out[0], bits.iter().all(|&b| b));
            assert_eq!(out[1], bits.iter().any(|&b| b));
        }
    }

    #[test]
    fn comparators_detect_equality() {
        let mut c = Circuit::new("cmp");
        let xs: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("x{i}")).unwrap())
            .collect();
        let ys: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("y{i}")).unwrap())
            .collect();
        let eq = comparator(&mut c, &xs, &ys, "cmp").unwrap();
        let fixed = hardwired_comparator(&mut c, &xs, &[true, false, true], "hw").unwrap();
        c.mark_output(eq);
        c.mark_output(fixed);
        let sim = kratt_netlist::sim::Simulator::new(&c).unwrap();
        for x in 0u64..8 {
            for y in 0u64..8 {
                let mut bits: Vec<bool> = (0..3).map(|i| x >> i & 1 != 0).collect();
                bits.extend((0..3).map(|i| y >> i & 1 != 0));
                let out = sim.run(&bits).unwrap();
                assert_eq!(out[0], x == y, "x={x} y={y}");
                assert_eq!(out[1], x == 0b101, "x={x}");
            }
        }
    }

    #[test]
    fn corrupt_output_preserves_name_and_interface() {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_gate(GateType::And, "o", &[a, b]).unwrap();
        c.mark_output(o);
        let flip = c.add_gate(GateType::Xor, "flip", &[a, b]).unwrap();
        corrupt_output(&mut c, 0, flip).unwrap();
        assert_eq!(c.num_outputs(), 1);
        let out = c.outputs()[0];
        assert_eq!(c.net_name(out), "o");
        assert!(c.nets().any(|n| c.net_name(n).starts_with("o$enc")));
    }

    #[test]
    fn apply_key_rejects_wrong_width() {
        let mut c = Circuit::new("locked");
        let a = c.add_input("a").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[a, k]).unwrap();
        c.mark_output(o);
        let bad = SecretKey::from_u64(0, 2);
        assert!(matches!(
            apply_key(&c, &bad),
            Err(LockError::KeyWidthMismatch {
                expected: 1,
                got: 2
            })
        ));
        let good = SecretKey::from_u64(0, 1);
        let unlocked = apply_key(&c, &good).unwrap();
        assert_eq!(unlocked.key_inputs().len(), 0);
    }

    #[test]
    fn choose_target_output_prefers_largest_cone() {
        let mut c = Circuit::new("outs");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let small = c.add_gate(GateType::Buf, "small", &[a]).unwrap();
        let t1 = c.add_gate(GateType::And, "t1", &[a, b]).unwrap();
        let t2 = c.add_gate(GateType::Or, "t2", &[t1, a]).unwrap();
        c.mark_output(small);
        c.mark_output(t2);
        assert_eq!(choose_target_output(&c, None).unwrap(), 1);
        assert_eq!(choose_target_output(&c, Some(0)).unwrap(), 0);
        assert!(matches!(
            choose_target_output(&c, Some(5)),
            Err(LockError::BadTargetOutput(5))
        ));
    }
}
