//! Output-corruption metrics for locked circuits.
//!
//! The paper's Fig. 2 illustrates *why* point-function locking resists the
//! SAT attack: every wrong key corrupts the output on (almost) exactly one
//! input pattern, so each distinguishing input pattern eliminates a single
//! wrong key. The flip side — and the motivation for Gen-Anti-SAT and the
//! DFLT family — is that such low corruption barely protects the design in
//! practice. This module quantifies that trade-off with the two standard
//! metrics of the logic-locking literature:
//!
//! * **output error rate** of a single (wrong) key — the fraction of input
//!   patterns on which the keyed circuit differs from the original;
//! * **output corruptibility** — the error rate averaged over sampled wrong
//!   keys.
//!
//! Both are estimated by seeded Monte-Carlo sampling using the 64-way
//! bit-parallel simulator, with an exact exhaustive variant for small
//! circuits (used heavily in tests).

use crate::common::{apply_key, LockedCircuit, SecretKey};
use crate::LockError;
use kratt_netlist::sim::Simulator;
use kratt_netlist::Circuit;
use rand::Rng;

/// The corruption profile of a locked circuit: per-key output error rates
/// plus their aggregate, as produced by [`corruption_profile`].
#[derive(Debug, Clone)]
pub struct CorruptionReport {
    /// Input patterns evaluated per key.
    pub patterns_per_key: u64,
    /// `(key, output error rate)` for every evaluated key.
    pub per_key: Vec<(SecretKey, f64)>,
}

impl CorruptionReport {
    /// Mean output error rate over the evaluated keys (the literature's
    /// "output corruptibility").
    pub fn mean_error_rate(&self) -> f64 {
        if self.per_key.is_empty() {
            return 0.0;
        }
        self.per_key.iter().map(|(_, rate)| rate).sum::<f64>() / self.per_key.len() as f64
    }

    /// Largest per-key output error rate.
    pub fn max_error_rate(&self) -> f64 {
        self.per_key
            .iter()
            .map(|(_, rate)| *rate)
            .fold(0.0, f64::max)
    }

    /// Number of evaluated keys whose error rate is exactly zero (keys that
    /// unlock the design on every sampled pattern).
    pub fn zero_error_keys(&self) -> usize {
        self.per_key.iter().filter(|(_, rate)| *rate == 0.0).count()
    }
}

/// Estimates the output error rate of `key` on a locked circuit: the
/// fraction of sampled input patterns on which the keyed netlist disagrees
/// with `original` on at least one output.
///
/// `samples` is rounded up to a multiple of 64 (the bit-parallel simulation
/// width). Sampling is driven by `rng`, so a seeded generator gives
/// reproducible numbers.
///
/// # Errors
///
/// Returns an error if the key width is wrong or either circuit cannot be
/// simulated.
pub fn error_rate<R: Rng + ?Sized>(
    original: &Circuit,
    locked: &Circuit,
    key: &SecretKey,
    samples: u64,
    rng: &mut R,
) -> Result<f64, LockError> {
    let keyed = apply_key(locked, key)?;
    let sim_original = Simulator::new(original).map_err(LockError::Netlist)?;
    let sim_keyed = Simulator::new(&keyed).map_err(LockError::Netlist)?;
    let width = original.num_inputs();
    let rounds = samples.div_ceil(64).max(1);
    let mut differing = 0u64;
    for _ in 0..rounds {
        let words: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
        let a = sim_original.run_words(&words).map_err(LockError::Netlist)?;
        let b = sim_keyed.run_words(&words).map_err(LockError::Netlist)?;
        let mut diff_mask = 0u64;
        for (&wa, &wb) in a.iter().zip(&b) {
            diff_mask |= wa ^ wb;
        }
        differing += u64::from(diff_mask.count_ones());
    }
    Ok(differing as f64 / (rounds * 64) as f64)
}

/// Exact output error rate of `key`, computed over **all** `2^n` input
/// patterns of the original circuit in 64-wide bit-parallel sweeps.
/// Intended for the small circuits used in tests and the paper's running
/// example.
///
/// # Errors
///
/// Returns an error if the key width is wrong or simulation fails.
///
/// # Panics
///
/// Panics if the original circuit has more than 24 inputs.
pub fn exact_error_rate(
    original: &Circuit,
    locked: &Circuit,
    key: &SecretKey,
) -> Result<f64, LockError> {
    let n = original.num_inputs();
    assert!(n <= 24, "exact corruption analysis limited to 24 inputs");
    let keyed = apply_key(locked, key)?;
    let sim_original = Simulator::new(original).map_err(LockError::Netlist)?;
    let sim_keyed = Simulator::new(&keyed).map_err(LockError::Netlist)?;
    let total = 1u64 << n;
    let mut differing = 0u64;
    let mut base = 0u64;
    while base < total {
        let lanes = (total - base).min(64);
        let valid = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        let words = kratt_netlist::sim::exhaustive_input_words(base, n);
        let a = sim_original.run_words(&words).map_err(LockError::Netlist)?;
        let b = sim_keyed.run_words(&words).map_err(LockError::Netlist)?;
        let mut diff_mask = 0u64;
        for (&wa, &wb) in a.iter().zip(&b) {
            diff_mask |= wa ^ wb;
        }
        differing += u64::from((diff_mask & valid).count_ones());
        base += 64;
    }
    Ok(differing as f64 / total as f64)
}

/// Number of input patterns a wrong key corrupts, computed exactly. For the
/// paper's Fig. 2 (point-function locking) this is 1 for SFLTs and 2 for
/// TTLock-style DFLTs on every wrong key.
///
/// # Errors
///
/// Returns an error if the key width is wrong or simulation fails.
///
/// # Panics
///
/// Panics if the original circuit has more than 24 inputs.
pub fn exact_corrupted_patterns(
    original: &Circuit,
    locked: &Circuit,
    key: &SecretKey,
) -> Result<u64, LockError> {
    let n = original.num_inputs();
    let rate = exact_error_rate(original, locked, key)?;
    Ok((rate * (1u64 << n) as f64).round() as u64)
}

/// Builds the corruption profile of a locked circuit: the output error rate
/// of the secret key (always first in the report) and of `wrong_keys`
/// uniformly sampled wrong keys, each estimated on `samples` input patterns.
///
/// # Errors
///
/// Returns an error if the circuit cannot be simulated.
pub fn corruption_profile<R: Rng + ?Sized>(
    original: &Circuit,
    locked: &LockedCircuit,
    wrong_keys: usize,
    samples: u64,
    rng: &mut R,
) -> Result<CorruptionReport, LockError> {
    let width = locked.key_width();
    let mut per_key = Vec::with_capacity(wrong_keys + 1);
    let secret_rate = error_rate(original, &locked.circuit, &locked.secret, samples, rng)?;
    per_key.push((locked.secret.clone(), secret_rate));
    let mut produced = 0usize;
    while produced < wrong_keys {
        let candidate = SecretKey::random(rng, width);
        if candidate == locked.secret {
            continue;
        }
        let rate = error_rate(original, &locked.circuit, &candidate, samples, rng)?;
        per_key.push((candidate, rate));
        produced += 1;
    }
    Ok(CorruptionReport {
        patterns_per_key: samples.div_ceil(64).max(1) * 64,
        per_key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::LockingTechnique;
    use crate::dflt::TtLock;
    use crate::rll::RandomXorLocking;
    use crate::sflt::{GenAntiSat, SarLock};
    use kratt_netlist::{GateType, NetId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority() -> Circuit {
        let mut c = Circuit::new("majority");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_input("x").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let ax = c.add_gate(GateType::And, "ax", &[a, x]).unwrap();
        let bx = c.add_gate(GateType::And, "bx", &[b, x]).unwrap();
        let maj = c.add_gate(GateType::Or, "maj", &[ab, ax, bx]).unwrap();
        c.mark_output(maj);
        c
    }

    fn adder6() -> Circuit {
        let mut c = Circuit::new("adder6");
        let a: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_gate(GateType::Const0, "c0", &[]).unwrap();
        for i in 0..3 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn secret_key_has_zero_error_rate() {
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        assert_eq!(
            exact_error_rate(&original, &locked.circuit, &secret).unwrap(),
            0.0
        );
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            error_rate(&original, &locked.circuit, &secret, 256, &mut rng).unwrap(),
            0.0
        );
    }

    #[test]
    fn sarlock_wrong_keys_corrupt_exactly_one_pattern() {
        // The Fig. 2 property of point-function SFLTs.
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        for wrong in 0u64..8 {
            if wrong == secret.to_u64() {
                continue;
            }
            let key = SecretKey::from_u64(wrong, 3);
            assert_eq!(
                exact_corrupted_patterns(&original, &locked.circuit, &key).unwrap(),
                1,
                "wrong key {wrong:03b}"
            );
        }
    }

    #[test]
    fn ttlock_wrong_keys_corrupt_exactly_two_patterns() {
        let original = majority();
        let secret = SecretKey::from_u64(0b010, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        for wrong in 0u64..8 {
            if wrong == secret.to_u64() {
                continue;
            }
            let key = SecretKey::from_u64(wrong, 3);
            assert_eq!(
                exact_corrupted_patterns(&original, &locked.circuit, &key).unwrap(),
                2,
                "wrong key {wrong:03b}"
            );
        }
    }

    #[test]
    fn gen_anti_sat_corrupts_more_than_sarlock() {
        // Gen-Anti-SAT's non-complementary functions exist precisely to raise
        // output corruption above the one-pattern floor of SARLock.
        let original = adder6();
        let mut rng = StdRng::seed_from_u64(11);
        let sar_secret = SecretKey::random(&mut rng, 3);
        let sar = SarLock::new(3).lock(&original, &sar_secret).unwrap();
        let gen_secret = SecretKey::random(&mut rng, 6);
        let gen = GenAntiSat::new(6).lock(&original, &gen_secret).unwrap();
        let sar_profile = corruption_profile(&original, &sar, 8, 4096, &mut rng).unwrap();
        let gen_profile = corruption_profile(&original, &gen, 8, 4096, &mut rng).unwrap();
        assert!(
            gen_profile.mean_error_rate() > sar_profile.mean_error_rate(),
            "Gen-Anti-SAT ({}) should corrupt more than SARLock ({})",
            gen_profile.mean_error_rate(),
            sar_profile.mean_error_rate()
        );
    }

    #[test]
    fn random_xor_locking_has_high_corruptibility() {
        let original = adder6();
        let mut rng = StdRng::seed_from_u64(3);
        let secret = SecretKey::random(&mut rng, 4);
        let locked = RandomXorLocking::new(4, 17)
            .lock(&original, &secret)
            .unwrap();
        let profile = corruption_profile(&original, &locked, 12, 2048, &mut rng).unwrap();
        // The secret key's rate (first entry) is 0; wrong keys corrupt a lot.
        assert_eq!(profile.per_key[0].1, 0.0);
        assert!(profile.mean_error_rate() > 0.1);
        assert!(profile.max_error_rate() > profile.mean_error_rate() / 2.0);
        assert!(profile.zero_error_keys() >= 1);
        assert_eq!(profile.patterns_per_key % 64, 0);
    }

    #[test]
    fn wrong_key_width_is_an_error() {
        let original = majority();
        let locked = SarLock::new(3)
            .lock(&original, &SecretKey::from_u64(0, 3))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            error_rate(
                &original,
                &locked.circuit,
                &SecretKey::from_u64(0, 2),
                64,
                &mut rng
            ),
            Err(LockError::KeyWidthMismatch { .. })
        ));
        assert!(exact_error_rate(&original, &locked.circuit, &SecretKey::from_u64(0, 5)).is_err());
    }

    #[test]
    fn empty_report_aggregates_are_safe() {
        let report = CorruptionReport {
            patterns_per_key: 64,
            per_key: Vec::new(),
        };
        assert_eq!(report.mean_error_rate(), 0.0);
        assert_eq!(report.max_error_rate(), 0.0);
        assert_eq!(report.zero_error_keys(), 0);
    }
}
