//! Random XOR/XNOR key-gate insertion (RLL) — the classic pre-SAT-attack
//! locking baseline.
//!
//! RLL is *not* SAT-resilient: the SAT-based attack breaks it in a handful of
//! DIPs. It is included because the oracle-guided baseline attacks need a
//! technique they can actually break (for testing and for calibrating the
//! "who wins" shape of Table III), and because the paper's related-work
//! discussion starts from it.

use crate::common::{LockedCircuit, LockingTechnique, SecretKey, TechniqueKind};
use crate::LockError;
use kratt_netlist::{Circuit, GateType, NetId, KEY_INPUT_PREFIX};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Random XOR/XNOR locking with a configurable number of key gates.
///
/// Key gate `i` is inserted on a randomly chosen internal net; an XOR gate is
/// used when secret bit `i` is 0 and an XNOR gate when it is 1, so the
/// circuit computes the original function exactly for the secret key.
#[derive(Debug, Clone)]
pub struct RandomXorLocking {
    key_bits: usize,
    seed: u64,
}

impl RandomXorLocking {
    /// RLL with `key_bits` key gates, placed using the given RNG seed.
    pub fn new(key_bits: usize, seed: u64) -> Self {
        RandomXorLocking { key_bits, seed }
    }
}

impl LockingTechnique for RandomXorLocking {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::RandomXor
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        if original.num_gates() < self.key_bits {
            return Err(LockError::NotEnoughInputs {
                available: original.num_gates(),
                needed: self.key_bits,
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Choose distinct gate-output nets to break with key gates.
        let mut candidates: Vec<NetId> = original.gates().map(|(_, g)| g.output).collect();
        candidates.shuffle(&mut rng);
        let chosen: Vec<NetId> = candidates.into_iter().take(self.key_bits).collect();
        let chosen_index: HashMap<NetId, usize> =
            chosen.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        // Rebuild the circuit, splicing a key gate after each chosen net.
        let mut locked = Circuit::new(format!("{}_rll", original.name()));
        let mut map: HashMap<NetId, NetId> = HashMap::new();
        for &pi in original.inputs() {
            let new = locked.add_input(original.net_name(pi))?;
            map.insert(pi, new);
        }
        let keys: Vec<NetId> = (0..self.key_bits)
            .map(|i| locked.add_input(format!("{KEY_INPUT_PREFIX}{i}")))
            .collect::<Result<_, _>>()?;

        for gid in kratt_netlist::analysis::topological_order(original)? {
            let gate = original.gate(gid);
            let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
            let out_name = original.net_name(gate.output).to_string();
            if let Some(&key_index) = chosen_index.get(&gate.output) {
                // The original gate keeps a derived name; the key gate takes
                // the original name so downstream consumers and outputs see
                // the key-gated signal.
                let inner = locked.add_gate(gate.ty, format!("{out_name}$pre"), &inputs)?;
                let ty = if secret.bits()[key_index] {
                    GateType::Xnor
                } else {
                    GateType::Xor
                };
                let gated = locked.add_gate(ty, out_name, &[inner, keys[key_index]])?;
                map.insert(gate.output, gated);
            } else {
                let out = locked.add_gate(gate.ty, out_name, &inputs)?;
                map.insert(gate.output, out);
            }
        }
        for &o in original.outputs() {
            locked.mark_output(map[&o]);
        }

        let protected_inputs = original.net_names(&chosen);
        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::RandomXor,
            secret: secret.clone(),
            protected_inputs,
            target_output: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::exhaustively_equivalent;
    use rand::Rng;

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn correct_key_restores_function() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 42)
            .lock(&original, &secret)
            .unwrap();
        assert_eq!(locked.circuit.key_inputs().len(), 6);
        let unlocked = locked.apply_key(&secret).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn most_wrong_keys_corrupt_the_function() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b0110, 4);
        let locked = RandomXorLocking::new(4, 7)
            .lock(&original, &secret)
            .unwrap();
        let mut corrupting = 0;
        for wrong in 0u64..16 {
            if wrong == secret.to_u64() {
                continue;
            }
            let unlocked = locked.apply_key(&SecretKey::from_u64(wrong, 4)).unwrap();
            if !exhaustively_equivalent(&original, &unlocked).unwrap() {
                corrupting += 1;
            }
        }
        assert!(
            corrupting >= 12,
            "expected most wrong keys to corrupt, got {corrupting}/15"
        );
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1001, 4);
        let a = RandomXorLocking::new(4, 3)
            .lock(&original, &secret)
            .unwrap();
        let b = RandomXorLocking::new(4, 3)
            .lock(&original, &secret)
            .unwrap();
        let c = RandomXorLocking::new(4, 4)
            .lock(&original, &secret)
            .unwrap();
        assert_eq!(a.protected_inputs, b.protected_inputs);
        assert_ne!(
            a.protected_inputs, c.protected_inputs,
            "different seeds should usually pick different nets"
        );
    }

    #[test]
    fn too_many_key_gates_is_an_error() {
        let original = adder4();
        let secret = SecretKey::from_u64(0, 64);
        assert!(matches!(
            RandomXorLocking::new(64, 0).lock(&original, &secret),
            Err(LockError::NotEnoughInputs { .. })
        ));
    }

    proptest::proptest! {
        /// The secret key always restores functionality regardless of seed.
        #[test]
        fn prop_correct_key_functional(seed in 0u64..30) {
            let original = adder4();
            let mut rng = StdRng::seed_from_u64(seed);
            let width = rng.gen_range(1..8usize);
            let secret = SecretKey::random(&mut rng, width);
            let locked = RandomXorLocking::new(width, seed).lock(&original, &secret).unwrap();
            let unlocked = locked.apply_key(&secret).unwrap();
            proptest::prop_assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
        }
    }
}
