//! Error type for locking operations.

use kratt_netlist::NetlistError;
use std::fmt;

/// Errors produced while locking a circuit or applying a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The original circuit does not have enough data inputs to protect the
    /// requested number of bits.
    NotEnoughInputs {
        /// Data inputs available in the circuit.
        available: usize,
        /// Protected inputs the technique needs.
        needed: usize,
    },
    /// The key supplied has the wrong number of bits for the technique.
    KeyWidthMismatch {
        /// Bits the technique expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// The circuit has no primary outputs to corrupt.
    NoOutputs,
    /// The requested target output index is out of range.
    BadTargetOutput(usize),
    /// A scheme spec string (or the parameters it carries) is malformed for
    /// the technique it names.
    BadSpec(String),
    /// Strict-mode locking rejected the locked netlist: the post-lock lint
    /// pass found error-level structural diagnostics (the message carries
    /// them, `; `-joined).
    LintRejected(String),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotEnoughInputs { available, needed } => write!(
                f,
                "circuit has {available} data inputs but the technique needs {needed}"
            ),
            LockError::KeyWidthMismatch { expected, got } => {
                write!(f, "technique expects a {expected}-bit key, got {got} bits")
            }
            LockError::NoOutputs => write!(f, "circuit has no primary outputs to corrupt"),
            LockError::BadTargetOutput(index) => {
                write!(f, "target output index {index} is out of range")
            }
            LockError::BadSpec(message) => write!(f, "bad scheme spec: {message}"),
            LockError::LintRejected(findings) => {
                write!(f, "lint rejected the locked circuit: {findings}")
            }
            LockError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for LockError {
    fn from(e: NetlistError) -> Self {
        LockError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LockError::NotEnoughInputs {
            available: 3,
            needed: 8,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('8'));
        let e = LockError::KeyWidthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
        let e: LockError = NetlistError::UnknownNet("x".into()).into();
        assert!(e.to_string().contains('x'));
    }
}
