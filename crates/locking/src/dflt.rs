//! Double flip locking techniques (DFLTs): TTLock, CAC and SFLL-HD.
//!
//! All three follow the paper's Fig. 1(b): a *perturb unit* with the secret
//! pattern hard-wired corrupts one primary output of the original circuit
//! (yielding the functionality-stripped circuit, FSC), and a *restore unit*
//! driven by the key inputs flips the output back. With the secret key the
//! two flips cancel on exactly the protected pattern(s); with a wrong key the
//! output is corrupted on the protected pattern and possibly on the pattern
//! matching the wrong key. Because the perturbation is merged into the
//! original logic, removal attacks that strip the restore unit recover the
//! FSC — not the original circuit — which is why KRATT needs its
//! oracle-guided structural analysis for this family.

use crate::common::{
    choose_protected_inputs, choose_target_output, clone_with_key_inputs, comparator,
    corrupt_output, hardwired_comparator, LockedCircuit, LockingTechnique, SecretKey,
    TechniqueKind,
};
use crate::LockError;
use kratt_netlist::{Circuit, GateType, NetId};

/// TTLock: perturb on the single protected input pattern equal to the secret,
/// restore with a comparator between the protected inputs and the key.
/// Equivalent to SFLL-HD with Hamming distance 0.
#[derive(Debug, Clone)]
pub struct TtLock {
    key_bits: usize,
    target_output: Option<usize>,
}

impl TtLock {
    /// TTLock protecting `key_bits` inputs with `key_bits` key bits.
    pub fn new(key_bits: usize) -> Self {
        TtLock {
            key_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }
}

impl LockingTechnique for TtLock {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::TtLock
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.key_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits, "ttlock")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        // Perturb unit (hard-wired secret) builds the FSC.
        let perturb = hardwired_comparator(&mut locked, &ppis, secret.bits(), "tt_pert")?;
        corrupt_output(&mut locked, target_output, perturb)?;
        // Restore unit (key comparator) flips it back for the correct key.
        let restore = comparator(&mut locked, &ppis, &keys, "tt_rest")?;
        corrupt_output(&mut locked, target_output, restore)?;

        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::TtLock,
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

/// Corrupt-and-correct (CAC): the same perturb unit as TTLock, but the
/// restore unit drives a MUX-style correction (`sel ? NOT fsc : fsc`) instead
/// of an XOR, giving the restore logic a different structural signature.
#[derive(Debug, Clone)]
pub struct Cac {
    key_bits: usize,
    target_output: Option<usize>,
}

impl Cac {
    /// CAC protecting `key_bits` inputs with `key_bits` key bits.
    pub fn new(key_bits: usize) -> Self {
        Cac {
            key_bits,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }
}

impl LockingTechnique for Cac {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::Cac
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.key_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits, "cac")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        // Perturb unit builds the FSC.
        let perturb = hardwired_comparator(&mut locked, &ppis, secret.bits(), "cac_pert")?;
        corrupt_output(&mut locked, target_output, perturb)?;

        // Restore unit: out = restore ? NOT fsc : fsc, built from AND/OR/NOT
        // gates so its structure differs from TTLock's XOR restore.
        let fsc = locked.outputs()[target_output];
        let fsc_name = locked.net_name(fsc).to_string();
        let renamed = locked.fresh_net_name(&format!("{fsc_name}$fsc"));
        locked.rename_net(fsc, renamed)?;
        let restore = comparator(&mut locked, &ppis, &keys, "cac_rest")?;
        let not_fsc = locked.add_gate_auto(GateType::Not, "cac_nfsc", &[fsc])?;
        let not_restore = locked.add_gate_auto(GateType::Not, "cac_nrest", &[restore])?;
        let flipped = locked.add_gate_auto(GateType::And, "cac_flip", &[restore, not_fsc])?;
        let kept = locked.add_gate_auto(GateType::And, "cac_keep", &[not_restore, fsc])?;
        let corrected = locked.add_gate(GateType::Or, fsc_name, &[flipped, kept])?;
        locked.replace_output_at(target_output, corrected);

        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::Cac,
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

/// SFLL-HD: stripped-functionality logic locking with Hamming distance `h`.
/// The perturb unit flips the output for every protected input pattern at
/// Hamming distance exactly `h` from the hard-wired secret; the restore unit
/// flips it back for patterns at distance `h` from the key. TTLock is the
/// special case `h = 0`.
#[derive(Debug, Clone)]
pub struct SfllHd {
    key_bits: usize,
    distance: u32,
    target_output: Option<usize>,
}

impl SfllHd {
    /// SFLL-HD with `key_bits` protected inputs/key bits and Hamming
    /// distance `distance`.
    pub fn new(key_bits: usize, distance: u32) -> Self {
        SfllHd {
            key_bits,
            distance,
            target_output: None,
        }
    }

    /// Corrupt the given output index instead of the largest-cone output.
    pub fn with_target_output(mut self, index: usize) -> Self {
        self.target_output = Some(index);
        self
    }

    /// The configured Hamming distance.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Builds `popcount(bits) == constant` and returns the output net.
    fn popcount_equals(
        circuit: &mut Circuit,
        bits: &[NetId],
        constant: u32,
        prefix: &str,
    ) -> Result<NetId, LockError> {
        // Ripple popcount: add the bits one at a time into a binary counter.
        let mut counter: Vec<NetId> = Vec::new();
        for (index, &bit) in bits.iter().enumerate() {
            let mut carry = bit;
            for slot in counter.iter_mut() {
                let sum = circuit.add_gate_auto(
                    GateType::Xor,
                    &format!("{prefix}_s"),
                    &[*slot, carry],
                )?;
                let new_carry = circuit.add_gate_auto(
                    GateType::And,
                    &format!("{prefix}_c"),
                    &[*slot, carry],
                )?;
                *slot = sum;
                carry = new_carry;
            }
            // The counter only needs enough bits to represent `index + 1`;
            // beyond that the carry out of the ripple is always 0.
            let needed_bits = usize::BITS as usize - (index + 1).leading_zeros() as usize;
            if counter.len() < needed_bits {
                counter.push(carry);
            }
        }
        // Equality against the constant.
        let terms: Vec<NetId> = counter
            .iter()
            .enumerate()
            .map(|(i, &net)| {
                if constant >> i & 1 != 0 {
                    Ok(net)
                } else {
                    circuit.add_gate_auto(GateType::Not, &format!("{prefix}_n"), &[net])
                }
            })
            .collect::<Result<Vec<_>, kratt_netlist::NetlistError>>()?;
        Ok(crate::common::reduction_tree(
            circuit,
            GateType::And,
            &terms,
            &format!("{prefix}_eq"),
        )?)
    }

    fn hd_unit(
        circuit: &mut Circuit,
        ppis: &[NetId],
        reference: HdReference<'_>,
        distance: u32,
        prefix: &str,
    ) -> Result<NetId, LockError> {
        let diffs: Vec<NetId> = match reference {
            HdReference::Constant(bits) => ppis
                .iter()
                .zip(bits)
                .map(|(&p, &bit)| {
                    if bit {
                        circuit.add_gate_auto(GateType::Not, &format!("{prefix}_d"), &[p])
                    } else {
                        circuit.add_gate_auto(GateType::Buf, &format!("{prefix}_d"), &[p])
                    }
                })
                .collect::<Result<_, _>>()?,
            HdReference::Nets(keys) => ppis
                .iter()
                .zip(keys)
                .map(|(&p, &k)| {
                    circuit.add_gate_auto(GateType::Xor, &format!("{prefix}_d"), &[p, k])
                })
                .collect::<Result<_, _>>()?,
        };
        Self::popcount_equals(circuit, &diffs, distance, prefix)
    }
}

enum HdReference<'a> {
    Constant(&'a [bool]),
    Nets(&'a [NetId]),
}

impl LockingTechnique for SfllHd {
    fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn kind(&self) -> TechniqueKind {
        TechniqueKind::SfllHd(self.distance)
    }

    fn lock(&self, original: &Circuit, secret: &SecretKey) -> Result<LockedCircuit, LockError> {
        if secret.len() != self.key_bits {
            return Err(LockError::KeyWidthMismatch {
                expected: self.key_bits,
                got: secret.len(),
            });
        }
        let target_output = choose_target_output(original, self.target_output)?;
        let ppis = choose_protected_inputs(original, self.key_bits)?;
        let ppi_names = original.net_names(&ppis);
        let (mut locked, keys) = clone_with_key_inputs(original, self.key_bits, "sfll_hd")?;
        let ppis: Vec<NetId> = ppi_names
            .iter()
            .map(|nm| locked.find_net(nm).expect("cloned input"))
            .collect();

        let perturb = Self::hd_unit(
            &mut locked,
            &ppis,
            HdReference::Constant(secret.bits()),
            self.distance,
            "sfll_pert",
        )?;
        corrupt_output(&mut locked, target_output, perturb)?;
        let restore = Self::hd_unit(
            &mut locked,
            &ppis,
            HdReference::Nets(&keys),
            self.distance,
            "sfll_rest",
        )?;
        corrupt_output(&mut locked, target_output, restore)?;

        Ok(LockedCircuit {
            circuit: locked,
            technique: TechniqueKind::SfllHd(self.distance),
            secret: secret.clone(),
            protected_inputs: ppi_names,
            target_output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::{exhaustively_equivalent, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority() -> Circuit {
        let mut c = Circuit::new("majority");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_input("x").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let ax = c.add_gate(GateType::And, "ax", &[a, x]).unwrap();
        let bx = c.add_gate(GateType::And, "bx", &[b, x]).unwrap();
        let maj = c.add_gate(GateType::Or, "maj", &[ab, ax, bx]).unwrap();
        c.mark_output(maj);
        c
    }

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    /// Count the input patterns on which the locked circuit (with the given
    /// key) differs from the original.
    fn corruption_count(original: &Circuit, locked: &LockedCircuit, key: &SecretKey) -> usize {
        let unlocked = locked.apply_key(key).unwrap();
        let sim_a = Simulator::new(original).unwrap();
        let sim_b = Simulator::new(&unlocked).unwrap();
        let n = original.num_inputs();
        (0u64..(1 << n))
            .filter(|&p| {
                let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
                sim_a.run(&bits).unwrap() != sim_b.run(&bits).unwrap()
            })
            .count()
    }

    #[test]
    fn ttlock_correct_key_restores_and_wrong_key_corrupts_two_patterns() {
        let original = majority();
        let secret = SecretKey::from_u64(0b010, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        assert_eq!(corruption_count(&original, &locked, &secret), 0);
        // A wrong key leaves the protected pattern corrupted and corrupts the
        // pattern equal to the wrong key: exactly two differing patterns.
        let wrong = SecretKey::from_u64(0b111, 3);
        assert_eq!(corruption_count(&original, &locked, &wrong), 2);
    }

    #[test]
    fn ttlock_fsc_differs_from_original_exactly_on_the_protected_pattern() {
        // The functionality-stripped circuit is the locked circuit with the
        // restore contribution removed; equivalently, with a key whose
        // comparator never fires... which does not exist for TTLock (every
        // key value restores *some* pattern). Instead check the paper's
        // Fig. 5(d) property: with the correct key the circuit is the
        // original, and with any wrong key the output at the protected
        // pattern is flipped.
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        let sim_orig = Simulator::new(&original).unwrap();
        for wrong in 0u64..8 {
            if wrong == secret.to_u64() {
                continue;
            }
            let unlocked = locked.apply_key(&SecretKey::from_u64(wrong, 3)).unwrap();
            let sim_bad = Simulator::new(&unlocked).unwrap();
            let protected: Vec<bool> = (0..3).map(|i| secret.to_u64() >> i & 1 != 0).collect();
            assert_ne!(
                sim_orig.run(&protected).unwrap(),
                sim_bad.run(&protected).unwrap(),
                "wrong key {wrong:03b} must corrupt the protected pattern"
            );
        }
    }

    #[test]
    fn cac_correct_key_restores_function() {
        let original = majority();
        let secret = SecretKey::from_u64(0b011, 3);
        let locked = Cac::new(3).lock(&original, &secret).unwrap();
        assert_eq!(corruption_count(&original, &locked, &secret), 0);
        let wrong = SecretKey::from_u64(0b000, 3);
        assert!(corruption_count(&original, &locked, &wrong) > 0);
    }

    #[test]
    fn cac_on_multi_output_circuit() {
        let original = adder4();
        let mut rng = StdRng::seed_from_u64(3);
        let secret = SecretKey::random(&mut rng, 6);
        let locked = Cac::new(6).lock(&original, &secret).unwrap();
        assert_eq!(locked.circuit.num_outputs(), original.num_outputs());
        assert!(crate::common::verify_key_by_simulation(
            &original,
            &locked.circuit,
            &secret,
            128,
            &mut rng
        )
        .unwrap());
    }

    #[test]
    fn sfll_hd_zero_matches_ttlock_semantics() {
        let original = majority();
        let secret = SecretKey::from_u64(0b101, 3);
        let sfll = SfllHd::new(3, 0).lock(&original, &secret).unwrap();
        assert_eq!(corruption_count(&original, &sfll, &secret), 0);
        let wrong = SecretKey::from_u64(0b110, 3);
        assert_eq!(corruption_count(&original, &sfll, &wrong), 2);
    }

    #[test]
    fn sfll_hd_one_protects_a_distance_one_sphere() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = SfllHd::new(4, 1).lock(&original, &secret).unwrap();
        // Correct key: fully restored.
        assert_eq!(corruption_count(&original, &locked, &secret), 0);
        // Wrong key at Hamming distance 2 from the secret: the perturbed and
        // restored spheres intersect only partially, so some patterns stay
        // corrupted.
        let wrong = SecretKey::from_u64(0b1001, 4);
        assert!(corruption_count(&original, &locked, &wrong) > 0);
    }

    #[test]
    fn sfll_popcount_equality_is_correct() {
        let mut c = Circuit::new("popcnt");
        let bits: Vec<NetId> = (0..5)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let eq2 = SfllHd::popcount_equals(&mut c, &bits, 2, "pc").unwrap();
        let eq0 = SfllHd::popcount_equals(&mut c, &bits, 0, "pc0").unwrap();
        let eq5 = SfllHd::popcount_equals(&mut c, &bits, 5, "pc5").unwrap();
        c.mark_output(eq2);
        c.mark_output(eq0);
        c.mark_output(eq5);
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u64..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            let ones = bits.iter().filter(|&&b| b).count();
            let out = sim.run(&bits).unwrap();
            assert_eq!(out[0], ones == 2);
            assert_eq!(out[1], ones == 0);
            assert_eq!(out[2], ones == 5);
        }
    }

    #[test]
    fn dflt_key_width_and_input_checks() {
        let original = majority();
        assert!(matches!(
            TtLock::new(4).lock(&original, &SecretKey::from_u64(0, 4)),
            Err(LockError::NotEnoughInputs { .. })
        ));
        assert!(matches!(
            Cac::new(3).lock(&original, &SecretKey::from_u64(0, 2)),
            Err(LockError::KeyWidthMismatch { .. })
        ));
    }

    proptest::proptest! {
        /// Every DFLT restores the original function under its secret key.
        #[test]
        fn prop_dflt_correct_key_is_functional(seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let original = adder4();
            let techniques: Vec<Box<dyn LockingTechnique>> = vec![
                Box::new(TtLock::new(5)),
                Box::new(Cac::new(5)),
                Box::new(SfllHd::new(5, 1)),
                Box::new(SfllHd::new(5, 2)),
            ];
            for technique in techniques {
                let secret = SecretKey::random(&mut rng, technique.key_bits());
                let locked = technique.lock(&original, &secret).unwrap();
                let unlocked = locked.apply_key(&secret).unwrap();
                proptest::prop_assert!(
                    exhaustively_equivalent(&original, &unlocked).unwrap(),
                    "{} failed with secret {}", technique.kind(), secret
                );
            }
        }
    }
}
