//! Benchmark circuit generators.
//!
//! The paper evaluates on ISCAS'85, ITC'99 and HeLLO: CTF'22 circuits. Those
//! bench files are external data this reproduction does not ship; instead,
//! this crate generates synthetic circuits with the *same interface widths*
//! (Table I / Table V of the paper) and comparable gate counts, so every
//! attack exercises the same code paths at the same scale:
//!
//! * [`small`] — tiny canonical circuits (majority, full adder, c17, parity)
//!   used by unit tests and by the paper's running example (Fig. 5).
//! * [`arith`] — structured arithmetic generators; the 16×16 array
//!   multiplier is the stand-in for c6288, which *is* a 16×16 multiplier.
//! * [`random_logic`] — seeded random control-logic generator used to match
//!   the interface/gate counts of the remaining ISCAS/ITC circuits.
//! * [`iscas`], [`itc`] — named generators matched to Table I (and Table IV).
//! * [`hello_ctf`] — SFLL-locked large circuits matched to Table V.
//!
//! Because everything accepts/produces ordinary [`kratt_netlist::Circuit`]s
//! and `.bench` files, real ISCAS/ITC netlists can be dropped into the same
//! pipeline when available.

pub mod arith;
pub mod hello_ctf;
pub mod iscas;
pub mod itc;
pub mod random_logic;
pub mod small;

pub use iscas::IscasCircuit;
pub use itc::ItcCircuit;

use kratt_netlist::Circuit;

/// One row of the paper's Table I: a benchmark circuit and the key length it
/// is locked with in the evaluation.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name as the paper writes it (e.g. `"c2670"`).
    pub name: &'static str,
    /// The generated circuit.
    pub circuit: Circuit,
    /// Number of key inputs used when locking this circuit (Table I).
    pub key_bits: usize,
}

/// Generates all six circuits of the paper's Table I with their key lengths.
///
/// Pass `scale` < 1.0 to produce proportionally smaller circuits (with the
/// same interface widths) for quick runs; `1.0` reproduces the paper-scale
/// gate counts.
pub fn table1_circuits(scale: f64) -> Vec<Table1Row> {
    vec![
        Table1Row {
            name: "c2670",
            circuit: iscas::IscasCircuit::C2670.generate_scaled(scale),
            key_bits: 64,
        },
        Table1Row {
            name: "c5315",
            circuit: iscas::IscasCircuit::C5315.generate_scaled(scale),
            key_bits: 64,
        },
        Table1Row {
            name: "c6288",
            circuit: iscas::IscasCircuit::C6288.generate_scaled(scale),
            key_bits: 32,
        },
        Table1Row {
            name: "b14_C",
            circuit: itc::ItcCircuit::B14C.generate_scaled(scale),
            key_bits: 128,
        },
        Table1Row {
            name: "b15_C",
            circuit: itc::ItcCircuit::B15C.generate_scaled(scale),
            key_bits: 128,
        },
        Table1Row {
            name: "b20_C",
            circuit: itc::ItcCircuit::B20C.generate_scaled(scale),
            key_bits: 128,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_interfaces_match_the_paper() {
        // Scaled-down gate counts, but the interface widths must match
        // Table I exactly.
        let rows = table1_circuits(0.05);
        let expected: &[(&str, usize, usize, usize)] = &[
            ("c2670", 157, 64, 64),
            ("c5315", 178, 123, 64),
            ("c6288", 32, 32, 32),
            ("b14_C", 277, 299, 128),
            ("b15_C", 485, 519, 128),
            ("b20_C", 522, 512, 128),
        ];
        assert_eq!(rows.len(), expected.len());
        for (row, &(name, inputs, outputs, keys)) in rows.iter().zip(expected) {
            assert_eq!(row.name, name);
            assert_eq!(row.circuit.num_inputs(), inputs, "{name} inputs");
            assert_eq!(row.circuit.num_outputs(), outputs, "{name} outputs");
            assert_eq!(row.key_bits, keys, "{name} key bits");
        }
    }
}
