//! ISCAS'85 analog circuits matched to the paper's Table I.

use crate::{arith, random_logic::RandomLogicSpec};
use kratt_netlist::Circuit;

/// The three ISCAS'85 circuits used in the paper's first experiment set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IscasCircuit {
    /// c2670: 157 inputs, 64 outputs, 1193 gates (ALU and controller).
    C2670,
    /// c5315: 178 inputs, 123 outputs, 2307 gates (ALU and selector).
    C5315,
    /// c6288: 32 inputs, 32 outputs, 2416 gates (16×16 array multiplier).
    C6288,
}

impl IscasCircuit {
    /// All three circuits, in Table I order.
    pub const ALL: [IscasCircuit; 3] = [
        IscasCircuit::C2670,
        IscasCircuit::C5315,
        IscasCircuit::C6288,
    ];

    /// The circuit's name as written in the paper.
    pub fn name(self) -> &'static str {
        match self {
            IscasCircuit::C2670 => "c2670",
            IscasCircuit::C5315 => "c5315",
            IscasCircuit::C6288 => "c6288",
        }
    }

    /// `(inputs, outputs, gates)` as listed in Table I.
    pub fn paper_interface(self) -> (usize, usize, usize) {
        match self {
            IscasCircuit::C2670 => (157, 64, 1193),
            IscasCircuit::C5315 => (178, 123, 2307),
            IscasCircuit::C6288 => (32, 32, 2416),
        }
    }

    /// Number of key inputs the paper locks this circuit with (Table I).
    pub fn paper_key_bits(self) -> usize {
        match self {
            IscasCircuit::C2670 | IscasCircuit::C5315 => 64,
            IscasCircuit::C6288 => 32,
        }
    }

    /// Generates the full-size analog circuit (paper-scale gate count).
    pub fn generate(self) -> Circuit {
        self.generate_scaled(1.0)
    }

    /// Generates the analog circuit with the gate budget scaled by `scale`
    /// (interface widths are never scaled). c6288 is always the exact 16×16
    /// array multiplier regardless of scale, because that is what c6288 is.
    pub fn generate_scaled(self, scale: f64) -> Circuit {
        let scale = scale.clamp(0.01, 1.0);
        let (inputs, outputs, gates) = self.paper_interface();
        match self {
            IscasCircuit::C6288 => {
                let mut c = arith::array_multiplier(16).expect("valid width");
                c.set_name("c6288");
                c
            }
            IscasCircuit::C2670 => RandomLogicSpec::new(
                "c2670",
                inputs,
                outputs,
                ((gates as f64 * scale) as usize).max(outputs),
                0x2670,
            )
            .generate(),
            IscasCircuit::C5315 => RandomLogicSpec::new(
                "c5315",
                inputs,
                outputs,
                ((gates as f64 * scale) as usize).max(outputs),
                0x5315,
            )
            .generate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_match_table1() {
        for circuit in IscasCircuit::ALL {
            let generated = circuit.generate_scaled(0.1);
            let (inputs, outputs, _) = circuit.paper_interface();
            assert_eq!(generated.num_inputs(), inputs, "{}", circuit.name());
            assert_eq!(generated.num_outputs(), outputs, "{}", circuit.name());
            assert_eq!(generated.name(), circuit.name());
        }
    }

    #[test]
    fn full_scale_gate_counts_are_in_the_right_ballpark() {
        for circuit in IscasCircuit::ALL {
            let generated = circuit.generate();
            let (_, _, gates) = circuit.paper_interface();
            let ratio = generated.num_gates() as f64 / gates as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: generated {} gates, paper lists {}",
                circuit.name(),
                generated.num_gates(),
                gates
            );
        }
    }

    #[test]
    fn key_bits_match_table1() {
        assert_eq!(IscasCircuit::C2670.paper_key_bits(), 64);
        assert_eq!(IscasCircuit::C5315.paper_key_bits(), 64);
        assert_eq!(IscasCircuit::C6288.paper_key_bits(), 32);
    }
}
