//! HeLLO: CTF'22 analog circuits matched to the paper's Table V.
//!
//! The competition distributed circuits already locked with SFLL; their
//! originals and secret keys were never published. This module therefore
//! generates host circuits with the same interface widths and gate counts as
//! Table V and locks them with [`kratt_locking::SfllHd`], producing locked
//! circuits with known ground truth that exercise the same attack paths.

use crate::random_logic::RandomLogicSpec;
use kratt_locking::{LockError, LockedCircuit, LockingTechnique, SecretKey, SfllHd, TtLock};
use kratt_netlist::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three finals circuits of HeLLO: CTF'22 (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelloCtfCircuit {
    /// final_v1: 767 inputs, 757 outputs, 17144 gates, 87 key inputs.
    FinalV1,
    /// final_v2: 1452 inputs, 1445 outputs, 27440 gates, 47 key inputs.
    FinalV2,
    /// final_v3: 522 inputs, 1 output, 93 gates, 29 key inputs.
    FinalV3,
}

impl HelloCtfCircuit {
    /// All three circuits in Table V order.
    pub const ALL: [HelloCtfCircuit; 3] = [
        HelloCtfCircuit::FinalV1,
        HelloCtfCircuit::FinalV2,
        HelloCtfCircuit::FinalV3,
    ];

    /// The circuit's name as written in the paper.
    pub fn name(self) -> &'static str {
        match self {
            HelloCtfCircuit::FinalV1 => "final_v1",
            HelloCtfCircuit::FinalV2 => "final_v2",
            HelloCtfCircuit::FinalV3 => "final_v3",
        }
    }

    /// `(inputs, outputs, gates, key_inputs)` of the *locked* circuit as
    /// listed in Table V. The input count includes the key inputs.
    pub fn locked_interface(self) -> (usize, usize, usize, usize) {
        match self {
            HelloCtfCircuit::FinalV1 => (767, 757, 17144, 87),
            HelloCtfCircuit::FinalV2 => (1452, 1445, 27440, 47),
            HelloCtfCircuit::FinalV3 => (522, 1, 93, 29),
        }
    }

    /// Generates the (unlocked) host circuit with the gate budget scaled by
    /// `scale`. The host has `inputs - key_inputs` primary inputs so that the
    /// locked circuit ends up with exactly the Table V input count.
    pub fn generate_host_scaled(self, scale: f64) -> Circuit {
        let scale = scale.clamp(0.01, 1.0);
        let (inputs, outputs, gates, keys) = self.locked_interface();
        let data_inputs = inputs - keys;
        // Reserve a rough budget for the locking logic the lock step adds.
        let host_gates = (((gates as f64) * scale) as usize)
            .saturating_sub(12 * keys)
            .max(outputs.max(16));
        let seed = match self {
            HelloCtfCircuit::FinalV1 => 0xCF1,
            HelloCtfCircuit::FinalV2 => 0xCF2,
            HelloCtfCircuit::FinalV3 => 0xCF3,
        };
        RandomLogicSpec::new(
            format!("{}_host", self.name()),
            data_inputs,
            outputs,
            host_gates,
            seed,
        )
        .generate()
    }

    /// Generates the host and locks it with SFLL, reproducing a Table V
    /// challenge instance with known ground truth. `scale` scales the host
    /// gate budget; the key length always matches Table V.
    ///
    /// The large challenges use the SFLL-HD(0) construction (popcount-based
    /// restore unit); final_v3 is so small that even that logic would
    /// dominate the circuit, so it uses the plain TTLock-style comparator.
    /// Both are the single-protected-pattern SFLL flavour the paper's KRATT
    /// OG path is designed for — higher Hamming distances fall under the
    /// paper's §V out-of-scope discussion.
    ///
    /// # Errors
    ///
    /// Returns an error if locking fails, which only happens for degenerate
    /// scales that leave fewer data inputs than key bits.
    pub fn generate_locked_scaled(self, scale: f64) -> Result<(Circuit, LockedCircuit), LockError> {
        let host = self.generate_host_scaled(scale);
        let (_, _, _, keys) = self.locked_interface();
        let mut rng = StdRng::seed_from_u64(0x48454C4C4F + keys as u64);
        let secret = SecretKey::random(&mut rng, keys);
        let locked = match self {
            HelloCtfCircuit::FinalV3 => TtLock::new(keys).lock(&host, &secret)?,
            _ => SfllHd::new(keys, 0).lock(&host, &secret)?,
        };
        let mut named = locked;
        named.circuit.set_name(self.name());
        Ok((host, named))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn locked_interfaces_match_table5() {
        for circuit in HelloCtfCircuit::ALL {
            let (host, locked) = circuit.generate_locked_scaled(0.05).unwrap();
            let (inputs, outputs, _, keys) = circuit.locked_interface();
            assert_eq!(locked.circuit.num_inputs(), inputs, "{}", circuit.name());
            assert_eq!(locked.circuit.num_outputs(), outputs, "{}", circuit.name());
            assert_eq!(
                locked.circuit.key_inputs().len(),
                keys,
                "{}",
                circuit.name()
            );
            assert_eq!(host.num_inputs(), inputs - keys);
        }
    }

    #[test]
    fn correct_key_restores_the_host_function() {
        let (host, locked) = HelloCtfCircuit::FinalV3
            .generate_locked_scaled(1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(kratt_locking::common::verify_key_by_simulation(
            &host,
            &locked.circuit,
            &locked.secret,
            64,
            &mut rng
        )
        .unwrap());
    }

    #[test]
    fn a_wrong_key_corrupts_the_small_challenge() {
        let (host, locked) = HelloCtfCircuit::FinalV3
            .generate_locked_scaled(1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut wrong_bits = locked.secret.bits().to_vec();
        wrong_bits[0] = !wrong_bits[0];
        let wrong = SecretKey::from_bits(wrong_bits);
        // A wrong key may still pass a weak random-simulation check (the
        // corruption is a point function), so check the protected pattern
        // directly instead: simulate the protected input pattern.
        let unlocked = locked.apply_key(&wrong).unwrap();
        let sim_host = kratt_netlist::sim::Simulator::new(&host).unwrap();
        let sim_bad = kratt_netlist::sim::Simulator::new(&unlocked).unwrap();
        // Build the protected pattern: protected inputs take the secret bits,
        // everything else random.
        let mut pattern = vec![false; host.num_inputs()];
        for (bit_index, name) in locked.protected_inputs.iter().enumerate() {
            let net = host.find_net(name).unwrap();
            let pos = host.input_position(net).unwrap();
            pattern[pos] = locked.secret.bits()[bit_index];
        }
        for value in pattern.iter_mut().skip(locked.protected_inputs.len()) {
            *value = rng.gen_bool(0.5);
        }
        assert_ne!(
            sim_host.run(&pattern).unwrap(),
            sim_bad.run(&pattern).unwrap()
        );
    }

    #[test]
    fn full_scale_gate_counts_are_in_the_right_ballpark() {
        // Only the small challenge is generated at full scale in tests; the
        // two large ones are exercised at reduced scale elsewhere.
        let (_, locked) = HelloCtfCircuit::FinalV3
            .generate_locked_scaled(1.0)
            .unwrap();
        let (_, _, gates, _) = HelloCtfCircuit::FinalV3.locked_interface();
        let ratio = locked.circuit.num_gates() as f64 / gates as f64;
        assert!(
            (0.4..=3.0).contains(&ratio),
            "final_v3: generated {} gates, paper lists {}",
            locked.circuit.num_gates(),
            gates
        );
    }
}
