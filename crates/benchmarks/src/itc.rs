//! ITC'99 analog circuits (combinational `_C` versions) matched to the
//! paper's Table I and Table IV.

use crate::random_logic::RandomLogicSpec;
use kratt_netlist::Circuit;

/// The ITC'99 combinational benchmarks used across the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItcCircuit {
    /// b14_C: 277 inputs, 299 outputs, 9768 gates (Viper processor subset).
    B14C,
    /// b15_C: 485 inputs, 519 outputs, 8367 gates (80386 subset).
    B15C,
    /// b17_C: three copies of b15 (used in Table IV).
    B17C,
    /// b20_C: 522 inputs, 512 outputs, 19683 gates (two b14 copies).
    B20C,
    /// b21_C: two b14 copies (used in Table IV).
    B21C,
    /// b22_C: three b14 copies (used in Table IV).
    B22C,
}

impl ItcCircuit {
    /// All six circuits, in benchmark-number order.
    pub const ALL: [ItcCircuit; 6] = [
        ItcCircuit::B14C,
        ItcCircuit::B15C,
        ItcCircuit::B17C,
        ItcCircuit::B20C,
        ItcCircuit::B21C,
        ItcCircuit::B22C,
    ];

    /// The circuits that appear in Table I (first experiment set).
    pub const TABLE1: [ItcCircuit; 3] = [ItcCircuit::B14C, ItcCircuit::B15C, ItcCircuit::B20C];

    /// The circuit's name as written in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ItcCircuit::B14C => "b14_C",
            ItcCircuit::B15C => "b15_C",
            ItcCircuit::B17C => "b17_C",
            ItcCircuit::B20C => "b20_C",
            ItcCircuit::B21C => "b21_C",
            ItcCircuit::B22C => "b22_C",
        }
    }

    /// `(inputs, outputs, gates)`: Table I values where listed, published
    /// benchmark statistics for the Table IV-only circuits.
    pub fn interface(self) -> (usize, usize, usize) {
        match self {
            ItcCircuit::B14C => (277, 299, 9768),
            ItcCircuit::B15C => (485, 519, 8367),
            ItcCircuit::B17C => (1452, 1512, 27970),
            ItcCircuit::B20C => (522, 512, 19683),
            ItcCircuit::B21C => (522, 512, 20027),
            ItcCircuit::B22C => (767, 757, 29162),
        }
    }

    /// Generates the full-size analog circuit (paper-scale gate count).
    pub fn generate(self) -> Circuit {
        self.generate_scaled(1.0)
    }

    /// Generates the analog circuit with the gate budget scaled by `scale`
    /// (interface widths are never scaled).
    pub fn generate_scaled(self, scale: f64) -> Circuit {
        let scale = scale.clamp(0.01, 1.0);
        let (inputs, outputs, gates) = self.interface();
        let seed = match self {
            ItcCircuit::B14C => 0xb14,
            ItcCircuit::B15C => 0xb15,
            ItcCircuit::B17C => 0xb17,
            ItcCircuit::B20C => 0xb20,
            ItcCircuit::B21C => 0xb21,
            ItcCircuit::B22C => 0xb22,
        };
        RandomLogicSpec::new(
            self.name(),
            inputs,
            outputs,
            ((gates as f64 * scale) as usize).max(outputs),
            seed,
        )
        .generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_match_published_widths() {
        for circuit in ItcCircuit::ALL {
            let generated = circuit.generate_scaled(0.02);
            let (inputs, outputs, _) = circuit.interface();
            assert_eq!(generated.num_inputs(), inputs, "{}", circuit.name());
            assert_eq!(generated.num_outputs(), outputs, "{}", circuit.name());
        }
    }

    #[test]
    fn table1_members_are_the_paper_subset() {
        let names: Vec<&str> = ItcCircuit::TABLE1.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["b14_C", "b15_C", "b20_C"]);
    }

    #[test]
    fn scaled_generation_controls_gate_count() {
        let small = ItcCircuit::B14C.generate_scaled(0.02);
        let bigger = ItcCircuit::B14C.generate_scaled(0.08);
        assert!(small.num_gates() < bigger.num_gates());
        assert!(small.num_gates() >= 299, "at least one gate per output");
    }
}
