//! Seeded random control-logic generator.
//!
//! Used to synthesise circuits that match the interface widths and gate
//! counts of ISCAS'85 / ITC'99 benchmarks whose bench files we do not ship.
//! The generator produces connected, acyclic, reconvergent logic: every
//! primary input feeds the logic, gates draw operands with a locality bias
//! (mimicking the clustered structure of real control logic), and every
//! primary output is the root of a non-trivial cone.

use kratt_netlist::{Circuit, GateType, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one random circuit.
#[derive(Debug, Clone)]
pub struct RandomLogicSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of gates (the generator emits exactly this many).
    pub gates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomLogicSpec {
    /// Creates a spec with the given interface and size.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        gates: usize,
        seed: u64,
    ) -> Self {
        RandomLogicSpec {
            name: name.into(),
            inputs,
            outputs,
            gates,
            seed,
        }
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero, `outputs` is zero, or `gates < outputs`
    /// (each output needs at least one gate to drive it).
    pub fn generate(&self) -> Circuit {
        assert!(self.inputs > 0, "need at least one input");
        assert!(self.outputs > 0, "need at least one output");
        assert!(
            self.gates >= self.outputs,
            "need at least one gate per output"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut c = Circuit::new(self.name.clone());
        let inputs: Vec<NetId> = (0..self.inputs)
            .map(|i| c.add_input(format!("G{i}")).expect("fresh circuit"))
            .collect();

        // Gate-type distribution biased towards the NAND/NOR/AND/OR mix seen
        // in synthesised control logic, with some XOR for reconvergence.
        let kinds = [
            GateType::Nand,
            GateType::Nand,
            GateType::Nor,
            GateType::And,
            GateType::Or,
            GateType::Not,
            GateType::Xor,
            GateType::Xnor,
        ];

        let mut nets: Vec<NetId> = inputs.clone();
        // `g` is both the gate counter and, for the first `self.inputs`
        // gates, the index of the primary input that gate must consume.
        #[allow(clippy::needless_range_loop)]
        for g in 0..self.gates {
            let ty = kinds[rng.gen_range(0..kinds.len())];
            let arity = match ty {
                GateType::Not => 1,
                _ => {
                    if rng.gen_bool(0.25) {
                        3
                    } else {
                        2
                    }
                }
            };
            let mut operands: Vec<NetId> = Vec::with_capacity(arity);
            for slot in 0..arity {
                let pick = if slot == 0 && g < self.inputs {
                    // Guarantee every primary input is consumed at least once.
                    inputs[g]
                } else if rng.gen_bool(0.7) && nets.len() > self.inputs {
                    // Locality bias: prefer recently created nets.
                    let window = (nets.len() / 4).max(8).min(nets.len());
                    nets[nets.len() - 1 - rng.gen_range(0..window)]
                } else {
                    nets[rng.gen_range(0..nets.len())]
                };
                operands.push(pick);
            }
            operands.dedup();
            if operands.is_empty() {
                operands.push(nets[rng.gen_range(0..nets.len())]);
            }
            let ty = if operands.len() == 1 {
                GateType::Not
            } else {
                ty
            };
            let out = c
                .add_gate(ty, format!("n{g}"), &operands)
                .expect("fresh net");
            nets.push(out);
        }

        // Outputs: the last `outputs` gate nets, which have the deepest cones.
        let gate_nets = &nets[self.inputs..];
        let start = gate_nets.len() - self.outputs;
        for &net in &gate_nets[start..] {
            c.mark_output(net);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::analysis;

    #[test]
    fn generated_circuit_matches_the_spec() {
        let spec = RandomLogicSpec::new("rand_a", 40, 16, 300, 1);
        let c = spec.generate();
        assert_eq!(c.num_inputs(), 40);
        assert_eq!(c.num_outputs(), 16);
        assert_eq!(c.num_gates(), 300);
        // Must be acyclic and simulable.
        assert!(analysis::topological_order(&c).is_ok());
        let pattern = vec![false; 40];
        assert_eq!(c.simulate(&pattern).unwrap().len(), 16);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomLogicSpec::new("r", 20, 5, 100, 7).generate();
        let b = RandomLogicSpec::new("r", 20, 5, 100, 7).generate();
        let c = RandomLogicSpec::new("r", 20, 5, 100, 8).generate();
        assert_eq!(
            kratt_netlist::bench::write(&a).unwrap(),
            kratt_netlist::bench::write(&b).unwrap()
        );
        assert_ne!(
            kratt_netlist::bench::write(&a).unwrap(),
            kratt_netlist::bench::write(&c).unwrap()
        );
    }

    #[test]
    fn every_input_is_in_the_support_of_the_logic() {
        let c = RandomLogicSpec::new("cover", 30, 8, 200, 3).generate();
        let fanout = analysis::fanout_map(&c);
        for &pi in c.inputs() {
            assert!(
                fanout.get(&pi).map(|v| !v.is_empty()).unwrap_or(false),
                "input {} is unused",
                c.net_name(pi)
            );
        }
    }

    #[test]
    fn outputs_have_nontrivial_cones() {
        let c = RandomLogicSpec::new("cones", 30, 8, 400, 5).generate();
        for &o in c.outputs() {
            let cone = analysis::fanin_cone_gates(&c, &[o]);
            assert!(
                cone.len() >= 2,
                "output {} has a trivial cone",
                c.net_name(o)
            );
        }
    }

    #[test]
    fn outputs_are_not_constant_on_random_patterns() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let c = RandomLogicSpec::new("nonconst", 24, 6, 250, 11).generate();
        let sim = kratt_netlist::sim::Simulator::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_true = [false; 6];
        let mut seen_false = [false; 6];
        for _ in 0..256 {
            let bits: Vec<bool> = (0..24).map(|_| rng.gen_bool(0.5)).collect();
            for (i, &v) in sim.run(&bits).unwrap().iter().enumerate() {
                if v {
                    seen_true[i] = true;
                } else {
                    seen_false[i] = true;
                }
            }
        }
        let toggling = seen_true
            .iter()
            .zip(&seen_false)
            .filter(|(a, b)| **a && **b)
            .count();
        assert!(
            toggling >= 4,
            "expected most outputs to toggle, got {toggling}/6"
        );
    }
}
