//! Structured arithmetic circuit generators.
//!
//! The centerpiece is the array multiplier: ISCAS'85 c6288 *is* a 16×16
//! array multiplier (32 inputs, 32 outputs, ~2.4k gates), so
//! [`array_multiplier`]`(16)` is a faithful functional stand-in with the same
//! interface and very similar size and depth characteristics.

use kratt_netlist::{Circuit, GateType, NetId, NetlistError};

/// Builds an `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`;
/// outputs `sum0..sum{n-1}`, `cout`.
///
/// # Errors
///
/// Propagates netlist construction errors (they do not occur for valid `n`).
pub fn ripple_carry_adder(n: usize) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(format!("rca{n}"));
    let a: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let mut carry = c.add_input("cin")?;
    for i in 0..n {
        let (sum, cout) = full_adder_cell(&mut c, a[i], b[i], carry, &format!("fa{i}"))?;
        c.mark_output(sum);
        carry = cout;
    }
    c.mark_output(carry);
    Ok(c)
}

/// Builds an `n`×`n` array multiplier: inputs `a0..a{n-1}`, `b0..b{n-1}`;
/// outputs `p0..p{2n-1}`. `array_multiplier(16)` matches the c6288 interface.
///
/// # Errors
///
/// Propagates netlist construction errors (they do not occur for valid `n`).
pub fn array_multiplier(n: usize) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(format!("mul{n}x{n}"));
    let a: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;

    // Partial products pp[i][j] = a[i] AND b[j].
    let mut partial: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for (j, &bj) in b.iter().enumerate() {
        let row: Vec<NetId> = a
            .iter()
            .enumerate()
            .map(|(i, &ai)| c.add_gate(GateType::And, format!("pp_{i}_{j}"), &[ai, bj]))
            .collect::<Result<_, _>>()?;
        partial.push(row);
    }

    // Row-by-row ripple accumulation: add each shifted partial-product row
    // into a running sum, the classic array-multiplier structure of c6288.
    // `sum[w]` holds the accumulated bit of weight `w` (if any yet).
    let mut sum: Vec<Option<NetId>> = vec![None; 2 * n];
    for (row, pp) in partial.iter().enumerate() {
        let mut carry: Option<NetId> = None;
        for (i, &bit) in pp.iter().enumerate() {
            let weight = row + i;
            let prefix = format!("add_{row}_{i}");
            let (new_sum, new_carry) = match (sum[weight], carry) {
                (None, None) => (bit, None),
                (Some(existing), None) => {
                    let (s, co) = half_adder_cell(&mut c, existing, bit, &prefix)?;
                    (s, Some(co))
                }
                (None, Some(cin)) => {
                    let (s, co) = half_adder_cell(&mut c, cin, bit, &prefix)?;
                    (s, Some(co))
                }
                (Some(existing), Some(cin)) => {
                    let (s, co) = full_adder_cell(&mut c, existing, bit, cin, &prefix)?;
                    (s, Some(co))
                }
            };
            sum[weight] = Some(new_sum);
            carry = new_carry;
        }
        // Ripple the final carry of this row into the higher weights.
        let mut weight = row + n;
        while let Some(cin) = carry {
            let prefix = format!("carry_{row}_{weight}");
            match sum[weight] {
                None => {
                    sum[weight] = Some(cin);
                    carry = None;
                }
                Some(existing) => {
                    let (s, co) = half_adder_cell(&mut c, existing, cin, &prefix)?;
                    sum[weight] = Some(s);
                    carry = Some(co);
                }
            }
            weight += 1;
        }
    }

    for (i, slot) in sum.iter().enumerate() {
        // Name the product bits for readability in written bench files.
        let name = format!("p{i}");
        let bit = match slot {
            Some(net) => *net,
            None => c.add_gate(GateType::Const0, format!("pz{i}"), &[])?,
        };
        let named = if c.find_net(&name).is_none() {
            c.add_gate(GateType::Buf, name, &[bit])?
        } else {
            bit
        };
        c.mark_output(named);
    }
    Ok(c)
}

/// Builds an `n`-bit unsigned comparator: output `gt` = (a > b), `eq` = (a == b).
///
/// # Errors
///
/// Propagates netlist construction errors (they do not occur for valid `n`).
pub fn comparator(n: usize) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(format!("cmp{n}"));
    let a: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let mut eq_so_far: Option<NetId> = None;
    let mut gt_so_far: Option<NetId> = None;
    // Scan from the most significant bit down.
    for i in (0..n).rev() {
        let nb = c.add_gate_auto(GateType::Not, "cmp_nb", &[b[i]])?;
        let bit_gt = c.add_gate_auto(GateType::And, "cmp_gt", &[a[i], nb])?;
        let bit_eq = c.add_gate_auto(GateType::Xnor, "cmp_eq", &[a[i], b[i]])?;
        gt_so_far = Some(match (gt_so_far, eq_so_far) {
            (None, None) => bit_gt,
            (Some(gt), Some(eq)) => {
                let new_gt = c.add_gate_auto(GateType::And, "cmp_step", &[eq, bit_gt])?;
                c.add_gate_auto(GateType::Or, "cmp_acc", &[gt, new_gt])?
            }
            _ => unreachable!("eq and gt are set together"),
        });
        eq_so_far = Some(match eq_so_far {
            None => bit_eq,
            Some(eq) => c.add_gate_auto(GateType::And, "cmp_eacc", &[eq, bit_eq])?,
        });
    }
    let gt = c.add_gate(GateType::Buf, "gt", &[gt_so_far.expect("n >= 1")])?;
    let eq = c.add_gate(GateType::Buf, "eq", &[eq_so_far.expect("n >= 1")])?;
    c.mark_output(gt);
    c.mark_output(eq);
    Ok(c)
}

fn half_adder_cell(
    c: &mut Circuit,
    a: NetId,
    b: NetId,
    prefix: &str,
) -> Result<(NetId, NetId), NetlistError> {
    let sum = c.add_gate_auto(GateType::Xor, &format!("{prefix}_s"), &[a, b])?;
    let carry = c.add_gate_auto(GateType::And, &format!("{prefix}_c"), &[a, b])?;
    Ok((sum, carry))
}

fn full_adder_cell(
    c: &mut Circuit,
    a: NetId,
    b: NetId,
    cin: NetId,
    prefix: &str,
) -> Result<(NetId, NetId), NetlistError> {
    let s1 = c.add_gate_auto(GateType::Xor, &format!("{prefix}_s1"), &[a, b])?;
    let sum = c.add_gate_auto(GateType::Xor, &format!("{prefix}_s"), &[s1, cin])?;
    let c1 = c.add_gate_auto(GateType::And, &format!("{prefix}_c1"), &[a, b])?;
    let c2 = c.add_gate_auto(GateType::And, &format!("{prefix}_c2"), &[s1, cin])?;
    let cout = c.add_gate_auto(GateType::Or, &format!("{prefix}_co"), &[c1, c2])?;
    Ok((sum, cout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::Simulator;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 != 0).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn adder_adds() {
        let c = ripple_carry_adder(4).unwrap();
        let sim = Simulator::new(&c).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in 0u64..2 {
                    let mut bits = to_bits(a, 4);
                    bits.extend(to_bits(b, 4));
                    bits.push(cin != 0);
                    let out = sim.run(&bits).unwrap();
                    assert_eq!(from_bits(&out), a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn small_multipliers_multiply_exhaustively() {
        for n in [2usize, 3, 4] {
            let c = array_multiplier(n).unwrap();
            assert_eq!(c.num_inputs(), 2 * n);
            assert_eq!(c.num_outputs(), 2 * n);
            let sim = Simulator::new(&c).unwrap();
            for a in 0u64..(1 << n) {
                for b in 0u64..(1 << n) {
                    let mut bits = to_bits(a, n);
                    bits.extend(to_bits(b, n));
                    let out = sim.run(&bits).unwrap();
                    assert_eq!(from_bits(&out), a * b, "n={n} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn sixteen_bit_multiplier_matches_c6288_interface_and_spot_checks() {
        let c = array_multiplier(16).unwrap();
        assert_eq!(c.num_inputs(), 32, "c6288 has 32 inputs");
        assert_eq!(c.num_outputs(), 32, "c6288 has 32 outputs");
        assert!(
            c.num_gates() > 1200 && c.num_gates() < 4000,
            "gate count {} should be in the c6288 ballpark (2416)",
            c.num_gates()
        );
        let sim = Simulator::new(&c).unwrap();
        for &(a, b) in &[
            (0u64, 0u64),
            (1, 1),
            (65535, 65535),
            (12345, 54321),
            (40000, 3),
            (257, 255),
        ] {
            let mut bits = to_bits(a, 16);
            bits.extend(to_bits(b, 16));
            let out = sim.run(&bits).unwrap();
            assert_eq!(from_bits(&out), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn comparator_compares() {
        let c = comparator(4).unwrap();
        let sim = Simulator::new(&c).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut bits = to_bits(a, 4);
                bits.extend(to_bits(b, 4));
                let out = sim.run(&bits).unwrap();
                assert_eq!(out[0], a > b, "gt a={a} b={b}");
                assert_eq!(out[1], a == b, "eq a={a} b={b}");
            }
        }
    }
}
