//! Tiny canonical circuits used by tests and by the paper's running example.

use kratt_netlist::{Circuit, GateType, NetId};

/// The 3-input majority function of the paper's Fig. 5 running example
/// (inputs `x1`, `x2`, `x3`, output `f`).
pub fn majority() -> Circuit {
    let mut c = Circuit::new("majority");
    let x1 = c.add_input("x1").expect("fresh circuit");
    let x2 = c.add_input("x2").expect("fresh circuit");
    let x3 = c.add_input("x3").expect("fresh circuit");
    let a = c
        .add_gate(GateType::And, "a12", &[x1, x2])
        .expect("fresh net");
    let b = c
        .add_gate(GateType::And, "a13", &[x1, x3])
        .expect("fresh net");
    let d = c
        .add_gate(GateType::And, "a23", &[x2, x3])
        .expect("fresh net");
    let f = c
        .add_gate(GateType::Or, "f", &[a, b, d])
        .expect("fresh net");
    c.mark_output(f);
    c
}

/// A single-bit full adder (inputs `a`, `b`, `cin`; outputs `sum`, `cout`).
pub fn full_adder() -> Circuit {
    let mut c = Circuit::new("full_adder");
    let a = c.add_input("a").expect("fresh circuit");
    let b = c.add_input("b").expect("fresh circuit");
    let cin = c.add_input("cin").expect("fresh circuit");
    let s1 = c.add_gate(GateType::Xor, "s1", &[a, b]).expect("fresh net");
    let sum = c
        .add_gate(GateType::Xor, "sum", &[s1, cin])
        .expect("fresh net");
    let c1 = c.add_gate(GateType::And, "c1", &[a, b]).expect("fresh net");
    let c2 = c
        .add_gate(GateType::And, "c2", &[s1, cin])
        .expect("fresh net");
    let cout = c
        .add_gate(GateType::Or, "cout", &[c1, c2])
        .expect("fresh net");
    c.mark_output(sum);
    c.mark_output(cout);
    c
}

/// The ISCAS'85 c17 benchmark (6 NAND gates), the smallest standard circuit.
pub fn c17() -> Circuit {
    let mut c = Circuit::new("c17");
    let g1 = c.add_input("G1").expect("fresh circuit");
    let g2 = c.add_input("G2").expect("fresh circuit");
    let g3 = c.add_input("G3").expect("fresh circuit");
    let g6 = c.add_input("G6").expect("fresh circuit");
    let g7 = c.add_input("G7").expect("fresh circuit");
    let g10 = c
        .add_gate(GateType::Nand, "G10", &[g1, g3])
        .expect("fresh net");
    let g11 = c
        .add_gate(GateType::Nand, "G11", &[g3, g6])
        .expect("fresh net");
    let g16 = c
        .add_gate(GateType::Nand, "G16", &[g2, g11])
        .expect("fresh net");
    let g19 = c
        .add_gate(GateType::Nand, "G19", &[g11, g7])
        .expect("fresh net");
    let g22 = c
        .add_gate(GateType::Nand, "G22", &[g10, g16])
        .expect("fresh net");
    let g23 = c
        .add_gate(GateType::Nand, "G23", &[g16, g19])
        .expect("fresh net");
    c.mark_output(g22);
    c.mark_output(g23);
    c
}

/// An `n`-input odd-parity circuit (XOR chain).
pub fn parity(n: usize) -> Circuit {
    assert!(n >= 2, "parity needs at least two inputs");
    let mut c = Circuit::new(format!("parity{n}"));
    let inputs: Vec<NetId> = (0..n)
        .map(|i| c.add_input(format!("x{i}")).expect("fresh circuit"))
        .collect();
    let mut acc = inputs[0];
    for (i, &next) in inputs.iter().enumerate().skip(1) {
        acc = c
            .add_gate(GateType::Xor, format!("p{i}"), &[acc, next])
            .expect("fresh net");
    }
    c.mark_output(acc);
    c
}

/// An `select`-bit multiplexer tree: `2^select` data inputs, `select` select
/// inputs, one output.
pub fn mux_tree(select: usize) -> Circuit {
    assert!(
        (1..=6).contains(&select),
        "supported select widths are 1..=6"
    );
    let mut c = Circuit::new(format!("mux{select}"));
    let data: Vec<NetId> = (0..(1usize << select))
        .map(|i| c.add_input(format!("d{i}")).expect("fresh circuit"))
        .collect();
    let sel: Vec<NetId> = (0..select)
        .map(|i| c.add_input(format!("s{i}")).expect("fresh circuit"))
        .collect();
    let mut level = data;
    for (bit, &s) in sel.iter().enumerate() {
        let ns = c
            .add_gate_auto(GateType::Not, &format!("ns{bit}"), &[s])
            .expect("fresh net");
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let low = c
                .add_gate_auto(GateType::And, "m_lo", &[pair[0], ns])
                .expect("fresh net");
            let high = c
                .add_gate_auto(GateType::And, "m_hi", &[pair[1], s])
                .expect("fresh net");
            next.push(
                c.add_gate_auto(GateType::Or, "m_or", &[low, high])
                    .expect("fresh net"),
            );
        }
        level = next;
    }
    c.mark_output(level[0]);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::sim::Simulator;

    #[test]
    fn majority_truth_table() {
        let c = majority();
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let ones = bits.iter().filter(|&&b| b).count();
            assert_eq!(sim.run(&bits).unwrap(), vec![ones >= 2]);
        }
    }

    #[test]
    fn full_adder_adds() {
        let c = full_adder();
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let total = bits.iter().filter(|&&b| b).count();
            let out = sim.run(&bits).unwrap();
            assert_eq!(out[0], total % 2 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn c17_matches_published_structure() {
        let c = c17();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 6);
    }

    #[test]
    fn parity_counts_ones_mod_two() {
        let c = parity(5);
        let sim = Simulator::new(&c).unwrap();
        for pattern in 0u64..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 != 0).collect();
            let ones = bits.iter().filter(|&&b| b).count();
            assert_eq!(sim.run(&bits).unwrap(), vec![ones % 2 == 1]);
        }
    }

    #[test]
    fn mux_selects_the_addressed_data_input() {
        let c = mux_tree(2);
        let sim = Simulator::new(&c).unwrap();
        for data in 0u64..16 {
            for sel in 0u64..4 {
                let mut bits: Vec<bool> = (0..4).map(|i| data >> i & 1 != 0).collect();
                bits.extend((0..2).map(|i| sel >> i & 1 != 0));
                let expected = data >> sel & 1 != 0;
                assert_eq!(
                    sim.run(&bits).unwrap(),
                    vec![expected],
                    "data {data:04b} sel {sel}"
                );
            }
        }
    }
}
