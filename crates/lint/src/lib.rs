//! `kratt-lint`: static structural analysis and diagnostics over the
//! suite's [`Circuit`] and [`Aig`] representations.
//!
//! The crate mirrors the registry pattern used by the locking schemes and
//! attacks: a [`RuleRegistry`] holds [`Rule`]s, each producing
//! [`Diagnostic`]s collected into a [`LintReport`] with text and JSON
//! renders. Three rule families ship by default:
//!
//! * **Well-formedness** ([`wellformed`]) — the structural contract the
//!   rest of the suite assumes: every net driven exactly once, no floating
//!   outputs, no dead logic, no unused key inputs, no combinational cycles
//!   (reported with the full cycle path), and no interface drift between an
//!   original circuit and its locked version.
//! * **AIG invariants** ([`aig_rules`]) — topological fanin order, strash
//!   consistency (no two live nodes with equal fanins) and dangling nodes,
//!   surfaced from [`Aig::check_invariants`] as diagnostics.
//! * **Security lints** ([`security`]) — powered by the abstract
//!   domains of [`kratt_dataflow`] (ternary constants, key support,
//!   unateness, signal probability and observability don't-cares): key
//!   bits that reach no output (broken locks), key bits whose value is
//!   statically forced (SCOPE-style leaks found without a SAT call),
//!   unate or cofactor-constant key leaks, dead key logic and
//!   probability-skewed comparator trees, plus exposed point-function
//!   unit shapes.
//!
//! Severity semantics are fixed suite-wide (see [`Severity`]): `error`
//! means structurally malformed and is rejected by strict-mode locking and
//! the CI corpus gate; `warning` means well-formed but suspicious;
//! `info` is a structure note.
//!
//! # Example
//!
//! ```
//! use kratt_lint::lint_circuit;
//! use kratt_netlist::{Circuit, GateType};
//!
//! # fn main() -> Result<(), kratt_netlist::NetlistError> {
//! let mut c = Circuit::new("toy");
//! let a = c.add_input("a")?;
//! let k = c.add_input("keyinput0")?;
//! let o = c.add_gate(GateType::Xor, "o", &[a, k])?;
//! c.mark_output(o);
//! let report = lint_circuit(&c);
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```

pub mod aig_rules;
pub mod diagnostic;
pub mod rule;
pub mod security;
pub mod wellformed;

pub use diagnostic::{Diagnostic, LintReport, Severity};
pub use rule::{LintContext, Rule, RuleRegistry};

use kratt_netlist::{Aig, Circuit};

/// Runs the default rule set over a standalone circuit.
pub fn lint_circuit(circuit: &Circuit) -> LintReport {
    RuleRegistry::with_default_rules().run(&LintContext::for_circuit(circuit))
}

/// Runs the default rule set over a locked circuit together with the
/// original it was locked from (enables the interface-drift rule).
pub fn lint_locked(original: &Circuit, locked: &Circuit) -> LintReport {
    RuleRegistry::with_default_rules().run(&LintContext::for_locked(original, locked))
}

/// Runs the default rule set over a bare AIG (only the AIG and security
/// rules apply).
pub fn lint_aig(aig: &Aig) -> LintReport {
    RuleRegistry::with_default_rules().run(&LintContext::for_aig(aig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    #[test]
    fn convenience_entry_points_agree_with_the_registry() {
        let mut c = Circuit::new("conv");
        let a = c.add_input("a").unwrap();
        let o = c.add_gate(GateType::Not, "o", &[a]).unwrap();
        c.mark_output(o);
        assert!(lint_circuit(&c).is_clean());
        assert!(lint_locked(&c, &c).is_clean());
        let aig = Aig::from_circuit(&c).unwrap();
        assert!(lint_aig(&aig).is_clean());
    }
}
