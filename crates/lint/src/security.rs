//! Security lints over locked circuits, powered by the abstract domains of
//! [`kratt_dataflow`]: structural leaks an attacker reads off the
//! netlist without ever calling a SAT solver.

use crate::diagnostic::{Diagnostic, Severity};
use crate::rule::{LintContext, Rule};
use kratt_dataflow::{
    lit_value, propagate, KeySupport, ObservabilityAnalysis, ProbabilityAnalysis, Ternary,
    Unateness, UnatenessAnalysis,
};
use kratt_netlist::{Aig, AigLit};

/// Every security rule, in catalogue order.
pub(crate) fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(KeyUnreachableOutput),
        Box::new(KeyForcedBit),
        Box::new(ExposedPointFunction),
        Box::new(KeyUnateOutput),
        Box::new(OdcDeadKeyGate),
        Box::new(ProbabilitySkewedComparator),
        Box::new(TernaryCofactorConstant),
    ]
}

/// `key-unreachable-output` (error): a key input outside the cone of every
/// output. A key bit that reaches no output cannot corrupt anything — the
/// lock is broken for that bit, whatever the scheme intended.
pub struct KeyUnreachableOutput;

impl Rule for KeyUnreachableOutput {
    fn id(&self) -> &'static str {
        "key-unreachable-output"
    }
    fn summary(&self) -> &'static str {
        "key input is outside every output cone (broken lock)"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        support
            .keys()
            .filter(|&(node, _)| !cone[node as usize])
            .map(|(_, name)| {
                Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    name,
                    "key input reaches no primary output; this key bit cannot lock anything",
                )
            })
            .collect()
    }
}

/// `key-forced-bit` (warning): a key bit whose correct value the ternary
/// engine pins down statically, SCOPE-style.
///
/// The detector looks for *key-only guards*: AND nodes in an output cone
/// whose support is two or more key bits and no data input — the shape a
/// comparator hardwired against the secret takes (e.g. SARLock's mask).
/// For each key bit `k` the engine propagates twice, pinning only `k`: if a
/// guard depending on `k` is constant `Zero` under one polarity but unknown
/// under the other, the guard can only ever activate when `k` holds that
/// other polarity — so the hardwired secret fixes `k` to it. The verdict is
/// purely static; the test suite confirms reported bits with a SAT miter.
pub struct KeyForcedBit;

impl Rule for KeyForcedBit {
    fn id(&self) -> &'static str {
        "key-forced-bit"
    }
    fn summary(&self) -> &'static str {
        "ternary propagation statically forces this key bit's value"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        let guards: Vec<u32> = (1..aig.num_nodes() as u32)
            .filter(|&n| {
                aig.is_and(n)
                    && cone[n as usize]
                    && support.is_key_only(n)
                    && support.key_count(n) >= 2
            })
            .collect();
        if guards.is_empty() {
            return Vec::new();
        }
        let mut found = Vec::new();
        for (bit, (node, name)) in support.keys().enumerate() {
            let zero = propagate(aig, &[(node, false)]);
            let one = propagate(aig, &[(node, true)]);
            let verdict = guards
                .iter()
                .filter(|&&g| support.depends_on(g, bit))
                .find_map(|&g| {
                    match (zero[g as usize], one[g as usize]) {
                        // The guard survives exactly one polarity of this bit.
                        (Ternary::X, Ternary::Zero) => Some((g, false)),
                        (Ternary::Zero, Ternary::X) => Some((g, true)),
                        _ => None,
                    }
                });
            if let Some((guard, forced)) = verdict {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    name,
                    format!(
                        "statically forced to {}: the key-only guard at node {guard} \
                         is constant zero whenever this bit is {}",
                        u8::from(forced),
                        u8::from(!forced)
                    ),
                ));
            }
        }
        found
    }
}

/// `exposed-point-function` (info): an AND tree whose leaves are mostly key
/// comparisons — the unit shape of a point function. Comparator-based
/// schemes (SARLock, Anti-SAT, TTLock, the SFLL family) all instantiate
/// one, and spotting it identifies the locking family and hands structural
/// attacks their starting point.
pub struct ExposedPointFunction;

impl ExposedPointFunction {
    /// Marks every node computing the canonical AIG XOR shape:
    /// `n = AND(!(a AND b), !(!a AND !b))` for some literals `a`, `b` (this
    /// also covers XNOR, which is a complemented edge into the same node).
    fn xor_shapes(aig: &Aig) -> Vec<bool> {
        let mut shape = vec![false; aig.num_nodes()];
        for node in 1..aig.num_nodes() as u32 {
            if !aig.is_and(node) {
                continue;
            }
            let (l0, l1) = aig.fanins(node);
            if !l0.is_complemented()
                || !l1.is_complemented()
                || !aig.is_and(l0.node())
                || !aig.is_and(l1.node())
            {
                continue;
            }
            let (a0, b0) = aig.fanins(l0.node());
            let (a1, b1) = aig.fanins(l1.node());
            let (a1, b1) = (a1.complement(), b1.complement());
            if (a0 == a1 && b0 == b1) || (a0 == b1 && b0 == a1) {
                shape[node as usize] = true;
            }
        }
        shape
    }

    /// Whether a tree walk descends through this edge: a plain
    /// (uncomplemented) edge into an AND node that is not itself an XOR
    /// shape stays inside the same AND tree.
    fn is_tree_edge(aig: &Aig, shape: &[bool], lit: AigLit) -> bool {
        !lit.is_complemented() && aig.is_and(lit.node()) && !shape[lit.node() as usize]
    }
}

impl Rule for ExposedPointFunction {
    fn id(&self) -> &'static str {
        "exposed-point-function"
    }
    fn summary(&self) -> &'static str {
        "AND tree over key comparisons exposes a point-function unit"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        let shape = Self::xor_shapes(aig);
        // A root is an in-cone AND tree nobody absorbs into a larger tree.
        let mut absorbed = vec![false; aig.num_nodes()];
        for node in 1..aig.num_nodes() as u32 {
            if !aig.is_and(node) || !cone[node as usize] || shape[node as usize] {
                continue;
            }
            let (l0, l1) = aig.fanins(node);
            for lit in [l0, l1] {
                if Self::is_tree_edge(aig, &shape, lit) {
                    absorbed[lit.node() as usize] = true;
                }
            }
        }
        let mut found = Vec::new();
        for root in 1..aig.num_nodes() as u32 {
            if !aig.is_and(root)
                || !cone[root as usize]
                || shape[root as usize]
                || absorbed[root as usize]
            {
                continue;
            }
            // Collect the leaves of the maximal AND tree rooted here.
            let mut leaves: Vec<AigLit> = Vec::new();
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let (l0, l1) = aig.fanins(node);
                for lit in [l0, l1] {
                    if Self::is_tree_edge(aig, &shape, lit) {
                        stack.push(lit.node());
                    } else {
                        leaves.push(lit);
                    }
                }
            }
            let comparisons = leaves
                .iter()
                .filter(|lit| {
                    let node = lit.node();
                    support.key_count(node) >= 1 && (shape[node as usize] || aig.is_input(node))
                })
                .count();
            if comparisons >= 2 && comparisons * 2 >= leaves.len() {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Info,
                    format!("node {root}"),
                    format!(
                        "AND tree over {} leaves, {comparisons} of them key comparisons — \
                         a point-function unit shape",
                        leaves.len()
                    ),
                ));
            }
        }
        found
    }
}

/// `key-unate-output` (warning): a primary output that is structurally
/// unate in a key bit. An XOR-style lock makes every output binate in its
/// key (the comparison can flip either way); a unate dependence means the
/// locked function is monotone in the bit, so an attacker can order the two
/// key values from plain cofactor simulation without any oracle. LUT-style
/// configuration bits take exactly this shape. The claim is sound: every
/// structural unateness is a functional unateness, and the test suite
/// confirms each verdict with a cofactor miter.
pub struct KeyUnateOutput;

impl Rule for KeyUnateOutput {
    fn id(&self) -> &'static str {
        "key-unate-output"
    }
    fn summary(&self) -> &'static str {
        "a primary output is unate in this key bit (monotone key leak)"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let unate = UnatenessAnalysis::compute(aig);
        if unate.num_keys() == 0 {
            return Vec::new();
        }
        let mut found = Vec::new();
        for (bit, (_, name)) in unate.keys().enumerate() {
            // One finding per key bit: the first output it is unate in.
            let leak = aig
                .outputs()
                .iter()
                .zip(aig.output_names())
                .find_map(|(&olit, oname)| match unate.of_lit(olit, bit) {
                    Unateness::Positive => Some((oname, "non-decreasing")),
                    Unateness::Negative => Some((oname, "non-increasing")),
                    _ => None,
                });
            if let Some((oname, direction)) = leak {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    name,
                    format!(
                        "output `{oname}` is monotone {direction} in this key bit: \
                         cofactor simulation orders its two values without an oracle"
                    ),
                ));
            }
        }
        found
    }
}

/// `odc-dead-key-gate` (warning): a key input that no output can observe
/// whenever some *other* key bit takes one fixed value. A healthy scheme
/// keeps every key bit observable under every restriction of the others;
/// key logic gated behind another key bit sits entirely inside an
/// observability don't-care and is removal-attack material (strip the
/// masked cone, pin the masking bit). The test suite confirms each verdict
/// with an equivalence check between the two cofactors of the masked bit.
pub struct OdcDeadKeyGate;

impl Rule for OdcDeadKeyGate {
    fn id(&self) -> &'static str {
        "odc-dead-key-gate"
    }
    fn summary(&self) -> &'static str {
        "a key input goes unobservable under one value of another key bit"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() < 2 {
            return Vec::new();
        }
        // Only bits observable with nothing pinned count: a never-observable
        // key is `key-unreachable-output` territory, not an ODC finding.
        let baseline = ObservabilityAnalysis::compute(aig, &[]);
        let mut found = Vec::new();
        for (bit, (node, name)) in support.keys().enumerate() {
            for value in [false, true] {
                let restricted = ObservabilityAnalysis::compute(aig, &[(node, value)]);
                for (cbit, (cnode, cname)) in support.keys().enumerate() {
                    if cbit == bit
                        || !baseline.is_observable(cnode)
                        || restricted.is_observable(cnode)
                    {
                        continue;
                    }
                    found.push(Diagnostic::at(
                        self.id(),
                        Severity::Warning,
                        cname,
                        format!(
                            "masked whenever `{name}` is {}: under that cofactor no \
                             primary output can observe this key bit, so its cone is \
                             removable",
                            u8::from(value)
                        ),
                    ));
                }
            }
        }
        found
    }
}

/// `probability-skewed-comparator` (info): an in-cone AND node over three
/// or more key bits whose signal probability has collapsed geometrically —
/// the activation profile of a point-function trigger. A `w`-bit
/// comparator fires on one input pattern in `2^w`; under the engine's
/// independence model each XNOR leaf lands at 7/16, so a tree over four or
/// more comparisons crosses the `2^-4` detector threshold. Complements the
/// shape-based `exposed-point-function`: this detector needs no
/// recognisable XOR shape, only the probability signature. Only *minimal*
/// qualifying nodes are reported — the roots of the collapse, not every
/// downstream conjunction the rare signal flows into (the XOR re-injecting
/// a trigger into the datapath builds such conjunctions).
pub struct ProbabilitySkewedComparator;

impl ProbabilitySkewedComparator {
    /// Detector threshold: anything at or below `2^-4` is point-function
    /// territory (a 4-bit comparator under the independence model sits at
    /// `(7/16)^4 ≈ 0.037`).
    const THRESHOLD: f64 = 0.0625;
}

impl Rule for ProbabilitySkewedComparator {
    fn id(&self) -> &'static str {
        "probability-skewed-comparator"
    }
    fn summary(&self) -> &'static str {
        "an AND tree over key bits activates with vanishing probability"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        let prob = ProbabilityAnalysis::compute(aig);
        let qualifies = |node: u32| {
            aig.is_and(node)
                && cone[node as usize]
                && support.key_count(node) >= 3
                && prob.of_node(node) <= Self::THRESHOLD
        };
        let mut found = Vec::new();
        for node in 1..aig.num_nodes() as u32 {
            if !qualifies(node) {
                continue;
            }
            // Minimality: the collapse must originate here, not upstream.
            let (l0, l1) = aig.fanins(node);
            if qualifies(l0.node()) || qualifies(l1.node()) {
                continue;
            }
            found.push(Diagnostic::at(
                self.id(),
                Severity::Info,
                format!("node {node}"),
                format!(
                    "activates with probability {:.1e} over {} key bits — \
                     a point-function trigger profile",
                    prob.of_node(node),
                    support.key_count(node)
                ),
            ));
        }
        found
    }
}

/// `ternary-cofactor-constant` (warning): a primary output that collapses
/// to a constant under one polarity of a key bit while staying
/// data-dependent under the other. The bit alone gates the output: an
/// attacker learns its correct value by simulating two patterns (a
/// constant output is wrong for any useful circuit). The test suite
/// confirms each verdict by SAT on the cofactored circuit.
pub struct TernaryCofactorConstant;

impl Rule for TernaryCofactorConstant {
    fn id(&self) -> &'static str {
        "ternary-cofactor-constant"
    }
    fn summary(&self) -> &'static str {
        "an output collapses to a constant under one value of this key bit"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let mut found = Vec::new();
        for (node, name) in support.keys() {
            let zero = propagate(aig, &[(node, false)]);
            let one = propagate(aig, &[(node, true)]);
            for (&olit, oname) in aig.outputs().iter().zip(aig.output_names()) {
                let collapse = match (
                    lit_value(&zero, olit).constant(),
                    lit_value(&one, olit).constant(),
                ) {
                    (Some(c), None) => Some((c, false)),
                    (None, Some(c)) => Some((c, true)),
                    _ => None,
                };
                if let Some((constant, pin)) = collapse {
                    found.push(Diagnostic::at(
                        self.id(),
                        Severity::Warning,
                        name,
                        format!(
                            "output `{oname}` is constant {} whenever this key bit is {}, \
                             but data-dependent under the opposite value — the bit gates \
                             the output outright",
                            u8::from(constant),
                            u8::from(pin)
                        ),
                    ));
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::{Circuit, GateType};

    fn run(rule: &dyn Rule, aig: &Aig) -> Vec<Diagnostic> {
        rule.check(&LintContext::for_aig(aig))
    }

    /// A benign locked circuit: o = a XOR k0 (XOR-style locking, no guard).
    fn xor_locked() -> Aig {
        let mut aig = Aig::new("xorlock");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let o = aig.xor(a, k0);
        aig.add_output("o", o);
        aig
    }

    /// A SARLock-style miniature: flip = match(x, k) AND NOT(secret(k)),
    /// o = (x0 AND x1) XOR flip, with the secret hardwired to k = 0b10.
    fn sarlock_like() -> Aig {
        let mut aig = Aig::new("sarlike");
        let x0 = aig.add_input("x0");
        let x1 = aig.add_input("x1");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let m0 = aig.xor(x0, k0).complement(); // XNOR(x0, k0)
        let m1 = aig.xor(x1, k1).complement();
        let matches_key = aig.and(m0, m1);
        // secret = 0b10: k0 must be 0, k1 must be 1.
        let is_secret = aig.and(k0.complement(), k1);
        let flip = aig.and(matches_key, is_secret.complement());
        let func = aig.and(x0, x1);
        let o = aig.xor(func, flip);
        aig.add_output("o", o);
        aig
    }

    #[test]
    fn benign_lock_raises_no_security_findings() {
        let aig = xor_locked();
        for rule in rules() {
            assert!(
                run(rule.as_ref(), &aig).is_empty(),
                "rule `{}` fired on a benign XOR lock",
                rule.id()
            );
        }
    }

    #[test]
    fn unreachable_key_fires() {
        let mut aig = Aig::new("broken");
        let a = aig.add_input("a");
        let _k = aig.add_input("keyinput0");
        aig.add_output("o", a); // the key feeds nothing
        let found = run(&KeyUnreachableOutput, &aig);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("keyinput0"));
        assert_eq!(found[0].severity, Severity::Error);
        // A reachable key stays silent.
        assert!(run(&KeyUnreachableOutput, &xor_locked()).is_empty());
    }

    #[test]
    fn forced_bits_recover_the_hardwired_secret() {
        let aig = sarlock_like();
        let found = run(&KeyForcedBit, &aig);
        assert_eq!(found.len(), 2, "{found:?}");
        let verdict = |name: &str| {
            found
                .iter()
                .find(|d| d.location.as_deref() == Some(name))
                .unwrap_or_else(|| panic!("no verdict for {name}"))
        };
        // Secret is k = 0b10.
        assert!(verdict("keyinput0").message.contains("forced to 0"));
        assert!(verdict("keyinput1").message.contains("forced to 1"));
        assert!(found.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn point_function_shape_is_spotted() {
        let aig = sarlock_like();
        let found = run(&ExposedPointFunction, &aig);
        assert!(!found.is_empty());
        assert!(found.iter().all(|d| d.severity == Severity::Info));
        assert!(found[0].message.contains("key comparisons"));
    }

    /// A LUTLock-style miniature: one 2:1 LUT whose truth table is the key,
    /// out = (a AND k1) OR (NOT a AND k0). Config bits are positive unate.
    fn lutlock_like() -> Aig {
        let mut aig = Aig::new("lutlike");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let hi = aig.and(a, k1);
        let lo = aig.and(a.complement(), k0);
        let out = aig.or(hi, lo);
        aig.add_output("out", out);
        aig
    }

    /// A broken scheme where one key bit gates another:
    /// out = (x0 AND x1) OR (k0 AND (x1 XOR k1)) — k1 is dead when k0 = 0.
    fn key_gated_key() -> Aig {
        let mut aig = Aig::new("gatedkey");
        let x0 = aig.add_input("x0");
        let x1 = aig.add_input("x1");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let inner = aig.xor(x1, k1);
        let gated = aig.and(k0, inner);
        let func = aig.and(x0, x1);
        let out = aig.or(func, gated);
        aig.add_output("out", out);
        aig
    }

    /// A 4-bit SARLock-style comparator: flip = AND of four XNOR(x_i, k_i),
    /// out = (x0 AND x1) XOR flip. Wide enough for the probability detector.
    fn comparator4() -> Aig {
        let mut aig = Aig::new("cmp4");
        let xs: Vec<AigLit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
        let ks: Vec<AigLit> = (0..4)
            .map(|i| aig.add_input(format!("keyinput{i}")))
            .collect();
        let terms: Vec<AigLit> = xs
            .iter()
            .zip(&ks)
            .map(|(&x, &k)| aig.xor(x, k).complement())
            .collect();
        let flip = aig.and_many(&terms);
        let func = aig.and(xs[0], xs[1]);
        let out = aig.xor(func, flip);
        aig.add_output("out", out);
        aig
    }

    /// An output gated outright by one key bit: out = (x0 AND x1) AND k0.
    fn gated_output() -> Aig {
        let mut aig = Aig::new("gatedout");
        let x0 = aig.add_input("x0");
        let x1 = aig.add_input("x1");
        let k0 = aig.add_input("keyinput0");
        let func = aig.and(x0, x1);
        let out = aig.and(func, k0);
        aig.add_output("out", out);
        aig
    }

    #[test]
    fn lut_config_bits_are_unate_leaks() {
        let found = run(&KeyUnateOutput, &lutlock_like());
        assert_eq!(found.len(), 2, "{found:?}");
        for d in &found {
            assert_eq!(d.severity, Severity::Warning);
            assert!(d.message.contains("non-decreasing"), "{}", d.message);
        }
        // XOR locking keeps every output binate: no findings.
        assert!(run(&KeyUnateOutput, &xor_locked()).is_empty());
        assert!(run(&KeyUnateOutput, &sarlock_like()).is_empty());
    }

    #[test]
    fn key_gated_key_is_an_odc_finding() {
        let found = run(&OdcDeadKeyGate, &key_gated_key());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].location.as_deref(), Some("keyinput1"));
        assert!(
            found[0].message.contains("`keyinput0` is 0"),
            "{}",
            found[0].message
        );
        // Healthy shapes keep every key observable under single-bit pins.
        assert!(run(&OdcDeadKeyGate, &sarlock_like()).is_empty());
        assert!(run(&OdcDeadKeyGate, &lutlock_like()).is_empty());
    }

    #[test]
    fn wide_comparator_has_a_skewed_probability_profile() {
        let found = run(&ProbabilitySkewedComparator, &comparator4());
        assert_eq!(found.len(), 1, "minimal node only: {found:?}");
        assert_eq!(found[0].severity, Severity::Info);
        assert!(
            found[0].message.contains("4 key bits"),
            "{}",
            found[0].message
        );
        // A two-bit comparator stays above the threshold.
        assert!(run(&ProbabilitySkewedComparator, &sarlock_like()).is_empty());
    }

    #[test]
    fn gated_output_collapses_under_one_cofactor() {
        let found = run(&TernaryCofactorConstant, &gated_output());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].location.as_deref(), Some("keyinput0"));
        assert!(
            found[0].message.contains("constant 0") && found[0].message.contains("bit is 0"),
            "{}",
            found[0].message
        );
        // XOR locking never collapses an output.
        assert!(run(&TernaryCofactorConstant, &xor_locked()).is_empty());
        assert!(run(&TernaryCofactorConstant, &sarlock_like()).is_empty());
    }

    #[test]
    fn circuit_context_reaches_the_security_rules() {
        // The same rules fire through a Circuit-based context (the AIG is
        // lowered inside LintContext::for_circuit).
        let mut c = Circuit::new("broken");
        let a = c.add_input("a").unwrap();
        c.add_input("keyinput0").unwrap();
        let o = c.add_gate(GateType::Buf, "o", &[a]).unwrap();
        c.mark_output(o);
        let found = KeyUnreachableOutput.check(&LintContext::for_circuit(&c));
        assert_eq!(found.len(), 1);
    }
}
