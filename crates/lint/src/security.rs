//! Security lints over locked circuits, powered by the static ternary
//! engine of [`crate::ternary`]: structural leaks an attacker reads off the
//! netlist without ever calling a SAT solver.

use crate::diagnostic::{Diagnostic, Severity};
use crate::rule::{LintContext, Rule};
use crate::ternary::{propagate, KeySupport, Ternary};
use kratt_netlist::{Aig, AigLit};

/// Every security rule, in catalogue order.
pub(crate) fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(KeyUnreachableOutput),
        Box::new(KeyForcedBit),
        Box::new(ExposedPointFunction),
    ]
}

/// `key-unreachable-output` (error): a key input outside the cone of every
/// output. A key bit that reaches no output cannot corrupt anything — the
/// lock is broken for that bit, whatever the scheme intended.
pub struct KeyUnreachableOutput;

impl Rule for KeyUnreachableOutput {
    fn id(&self) -> &'static str {
        "key-unreachable-output"
    }
    fn summary(&self) -> &'static str {
        "key input is outside every output cone (broken lock)"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        support
            .keys()
            .filter(|&(node, _)| !cone[node as usize])
            .map(|(_, name)| {
                Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    name,
                    "key input reaches no primary output; this key bit cannot lock anything",
                )
            })
            .collect()
    }
}

/// `key-forced-bit` (warning): a key bit whose correct value the ternary
/// engine pins down statically, SCOPE-style.
///
/// The detector looks for *key-only guards*: AND nodes in an output cone
/// whose support is two or more key bits and no data input — the shape a
/// comparator hardwired against the secret takes (e.g. SARLock's mask).
/// For each key bit `k` the engine propagates twice, pinning only `k`: if a
/// guard depending on `k` is constant `Zero` under one polarity but unknown
/// under the other, the guard can only ever activate when `k` holds that
/// other polarity — so the hardwired secret fixes `k` to it. The verdict is
/// purely static; the test suite confirms reported bits with a SAT miter.
pub struct KeyForcedBit;

impl Rule for KeyForcedBit {
    fn id(&self) -> &'static str {
        "key-forced-bit"
    }
    fn summary(&self) -> &'static str {
        "ternary propagation statically forces this key bit's value"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        let guards: Vec<u32> = (1..aig.num_nodes() as u32)
            .filter(|&n| {
                aig.is_and(n)
                    && cone[n as usize]
                    && support.is_key_only(n)
                    && support.key_count(n) >= 2
            })
            .collect();
        if guards.is_empty() {
            return Vec::new();
        }
        let mut found = Vec::new();
        for (bit, (node, name)) in support.keys().enumerate() {
            let zero = propagate(aig, &[(node, false)]);
            let one = propagate(aig, &[(node, true)]);
            let verdict = guards
                .iter()
                .filter(|&&g| support.depends_on(g, bit))
                .find_map(|&g| {
                    match (zero[g as usize], one[g as usize]) {
                        // The guard survives exactly one polarity of this bit.
                        (Ternary::X, Ternary::Zero) => Some((g, false)),
                        (Ternary::Zero, Ternary::X) => Some((g, true)),
                        _ => None,
                    }
                });
            if let Some((guard, forced)) = verdict {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    name,
                    format!(
                        "statically forced to {}: the key-only guard at node {guard} \
                         is constant zero whenever this bit is {}",
                        u8::from(forced),
                        u8::from(!forced)
                    ),
                ));
            }
        }
        found
    }
}

/// `exposed-point-function` (info): an AND tree whose leaves are mostly key
/// comparisons — the unit shape of a point function. Comparator-based
/// schemes (SARLock, Anti-SAT, TTLock, the SFLL family) all instantiate
/// one, and spotting it identifies the locking family and hands structural
/// attacks their starting point.
pub struct ExposedPointFunction;

impl ExposedPointFunction {
    /// Marks every node computing the canonical AIG XOR shape:
    /// `n = AND(!(a AND b), !(!a AND !b))` for some literals `a`, `b` (this
    /// also covers XNOR, which is a complemented edge into the same node).
    fn xor_shapes(aig: &Aig) -> Vec<bool> {
        let mut shape = vec![false; aig.num_nodes()];
        for node in 1..aig.num_nodes() as u32 {
            if !aig.is_and(node) {
                continue;
            }
            let (l0, l1) = aig.fanins(node);
            if !l0.is_complemented()
                || !l1.is_complemented()
                || !aig.is_and(l0.node())
                || !aig.is_and(l1.node())
            {
                continue;
            }
            let (a0, b0) = aig.fanins(l0.node());
            let (a1, b1) = aig.fanins(l1.node());
            let (a1, b1) = (a1.complement(), b1.complement());
            if (a0 == a1 && b0 == b1) || (a0 == b1 && b0 == a1) {
                shape[node as usize] = true;
            }
        }
        shape
    }

    /// Whether a tree walk descends through this edge: a plain
    /// (uncomplemented) edge into an AND node that is not itself an XOR
    /// shape stays inside the same AND tree.
    fn is_tree_edge(aig: &Aig, shape: &[bool], lit: AigLit) -> bool {
        !lit.is_complemented() && aig.is_and(lit.node()) && !shape[lit.node() as usize]
    }
}

impl Rule for ExposedPointFunction {
    fn id(&self) -> &'static str {
        "exposed-point-function"
    }
    fn summary(&self) -> &'static str {
        "AND tree over key comparisons exposes a point-function unit"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        let support = KeySupport::compute(aig);
        if support.num_keys() == 0 {
            return Vec::new();
        }
        let cone = aig.cone(aig.outputs());
        let shape = Self::xor_shapes(aig);
        // A root is an in-cone AND tree nobody absorbs into a larger tree.
        let mut absorbed = vec![false; aig.num_nodes()];
        for node in 1..aig.num_nodes() as u32 {
            if !aig.is_and(node) || !cone[node as usize] || shape[node as usize] {
                continue;
            }
            let (l0, l1) = aig.fanins(node);
            for lit in [l0, l1] {
                if Self::is_tree_edge(aig, &shape, lit) {
                    absorbed[lit.node() as usize] = true;
                }
            }
        }
        let mut found = Vec::new();
        for root in 1..aig.num_nodes() as u32 {
            if !aig.is_and(root)
                || !cone[root as usize]
                || shape[root as usize]
                || absorbed[root as usize]
            {
                continue;
            }
            // Collect the leaves of the maximal AND tree rooted here.
            let mut leaves: Vec<AigLit> = Vec::new();
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let (l0, l1) = aig.fanins(node);
                for lit in [l0, l1] {
                    if Self::is_tree_edge(aig, &shape, lit) {
                        stack.push(lit.node());
                    } else {
                        leaves.push(lit);
                    }
                }
            }
            let comparisons = leaves
                .iter()
                .filter(|lit| {
                    let node = lit.node();
                    support.key_count(node) >= 1 && (shape[node as usize] || aig.is_input(node))
                })
                .count();
            if comparisons >= 2 && comparisons * 2 >= leaves.len() {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Info,
                    format!("node {root}"),
                    format!(
                        "AND tree over {} leaves, {comparisons} of them key comparisons — \
                         a point-function unit shape",
                        leaves.len()
                    ),
                ));
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::{Circuit, GateType};

    fn run(rule: &dyn Rule, aig: &Aig) -> Vec<Diagnostic> {
        rule.check(&LintContext::for_aig(aig))
    }

    /// A benign locked circuit: o = a XOR k0 (XOR-style locking, no guard).
    fn xor_locked() -> Aig {
        let mut aig = Aig::new("xorlock");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let o = aig.xor(a, k0);
        aig.add_output("o", o);
        aig
    }

    /// A SARLock-style miniature: flip = match(x, k) AND NOT(secret(k)),
    /// o = (x0 AND x1) XOR flip, with the secret hardwired to k = 0b10.
    fn sarlock_like() -> Aig {
        let mut aig = Aig::new("sarlike");
        let x0 = aig.add_input("x0");
        let x1 = aig.add_input("x1");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let m0 = aig.xor(x0, k0).complement(); // XNOR(x0, k0)
        let m1 = aig.xor(x1, k1).complement();
        let matches_key = aig.and(m0, m1);
        // secret = 0b10: k0 must be 0, k1 must be 1.
        let is_secret = aig.and(k0.complement(), k1);
        let flip = aig.and(matches_key, is_secret.complement());
        let func = aig.and(x0, x1);
        let o = aig.xor(func, flip);
        aig.add_output("o", o);
        aig
    }

    #[test]
    fn benign_lock_raises_no_security_findings() {
        let aig = xor_locked();
        for rule in rules() {
            assert!(
                run(rule.as_ref(), &aig).is_empty(),
                "rule `{}` fired on a benign XOR lock",
                rule.id()
            );
        }
    }

    #[test]
    fn unreachable_key_fires() {
        let mut aig = Aig::new("broken");
        let a = aig.add_input("a");
        let _k = aig.add_input("keyinput0");
        aig.add_output("o", a); // the key feeds nothing
        let found = run(&KeyUnreachableOutput, &aig);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("keyinput0"));
        assert_eq!(found[0].severity, Severity::Error);
        // A reachable key stays silent.
        assert!(run(&KeyUnreachableOutput, &xor_locked()).is_empty());
    }

    #[test]
    fn forced_bits_recover_the_hardwired_secret() {
        let aig = sarlock_like();
        let found = run(&KeyForcedBit, &aig);
        assert_eq!(found.len(), 2, "{found:?}");
        let verdict = |name: &str| {
            found
                .iter()
                .find(|d| d.location.as_deref() == Some(name))
                .unwrap_or_else(|| panic!("no verdict for {name}"))
        };
        // Secret is k = 0b10.
        assert!(verdict("keyinput0").message.contains("forced to 0"));
        assert!(verdict("keyinput1").message.contains("forced to 1"));
        assert!(found.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn point_function_shape_is_spotted() {
        let aig = sarlock_like();
        let found = run(&ExposedPointFunction, &aig);
        assert!(!found.is_empty());
        assert!(found.iter().all(|d| d.severity == Severity::Info));
        assert!(found[0].message.contains("key comparisons"));
    }

    #[test]
    fn circuit_context_reaches_the_security_rules() {
        // The same rules fire through a Circuit-based context (the AIG is
        // lowered inside LintContext::for_circuit).
        let mut c = Circuit::new("broken");
        let a = c.add_input("a").unwrap();
        c.add_input("keyinput0").unwrap();
        let o = c.add_gate(GateType::Buf, "o", &[a]).unwrap();
        c.mark_output(o);
        let found = KeyUnreachableOutput.check(&LintContext::for_circuit(&c));
        assert_eq!(found.len(), 1);
    }
}
