//! Diagnostics: what a lint rule reports and how a run is rendered.

use std::fmt;

/// How serious a diagnostic is.
///
/// The three levels carry fixed semantics across the suite:
///
/// * [`Severity::Error`] — the circuit (or AIG) is structurally malformed:
///   it breaks an invariant the rest of the suite relies on (a net without a
///   driver, a combinational cycle, a corrupted AIG, a locked circuit whose
///   key cannot influence any output). Strict-mode locking and the CI corpus
///   gate reject error-level output.
/// * [`Severity::Warning`] — the circuit is well-formed but structurally
///   suspicious: wasted logic, or a security signal an attacker can read off
///   statically (a key bit whose value ternary propagation pins down).
/// * [`Severity::Info`] — informational structure notes, e.g. an exposed
///   point-function unit shape that identifies the locking family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but well-formed structure.
    Warning,
    /// Structural malformation.
    Error,
}

impl Severity {
    /// The lowercase label used by the text and JSON renders.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of one lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Id of the rule that produced this diagnostic (e.g. `"undriven-net"`).
    pub rule: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// The net name or AIG node the finding is anchored at, if any.
    pub location: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at a net or node.
    pub fn at(
        rule: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            location: Some(location.into()),
            message: message.into(),
        }
    }

    /// Builds a circuit-wide diagnostic with no specific location.
    pub fn global(rule: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            location: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(location) = &self.location {
            write!(f, " at `{location}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Every diagnostic one lint run produced over one subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Name of the linted circuit or AIG.
    pub subject: String,
    /// The findings, ordered most severe first (ties keep rule order).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report, sorting the findings most severe first.
    pub fn new(subject: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        LintReport {
            subject: subject.into(),
            diagnostics,
        }
    }

    /// Whether any error-level diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether nothing at all was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The diagnostics produced by one rule.
    pub fn by_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// A compact one-token summary, e.g. `clean`, `2E`, `1E+3W`, `2W+1I` —
    /// what the campaign table stamps into its `Lint` column.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean".into();
        }
        let mut parts = Vec::new();
        for (severity, tag) in [
            (Severity::Error, 'E'),
            (Severity::Warning, 'W'),
            (Severity::Info, 'I'),
        ] {
            let n = self.count(severity);
            if n > 0 {
                parts.push(format!("{n}{tag}"));
            }
        }
        parts.join("+")
    }

    /// Renders the report as human-readable text, one diagnostic per line.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint report for `{}`: {} finding{} ({})",
            self.subject,
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.summary()
        );
        for diagnostic in &self.diagnostics {
            let _ = writeln!(out, "  {diagnostic}");
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"subject\":{},\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            json_str(&self.subject),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"location\":{},\"message\":{}}}",
                json_str(d.rule),
                json_str(d.severity.label()),
                d.location.as_deref().map_or("null".into(), json_str),
                json_str(&d.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_sorts_counts_and_summarises() {
        let report = LintReport::new(
            "toy",
            vec![
                Diagnostic::global("a", Severity::Info, "note"),
                Diagnostic::at("b", Severity::Error, "x", "broken"),
                Diagnostic::at("c", Severity::Warning, "y", "odd"),
            ],
        );
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.summary(), "1E+1W+1I");
        assert_eq!(report.by_rule("b").len(), 1);
        let text = report.render_text();
        assert!(text.contains("error[b] at `x`: broken"));
        assert!(text.contains("3 findings"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport::new("toy", Vec::new());
        assert!(report.is_clean());
        assert_eq!(report.summary(), "clean");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let report = LintReport::new(
            "to\"y",
            vec![Diagnostic::at("r", Severity::Error, "n\\1", "line\nbreak")],
        );
        let json = report.to_json();
        assert!(json.contains("\"subject\":\"to\\\"y\""));
        assert!(json.contains("\"location\":\"n\\\\1\""));
        assert!(json.contains("line\\nbreak"));
        assert!(json.contains("\"errors\":1"));
        let no_loc = LintReport::new("t", vec![Diagnostic::global("r", Severity::Info, "m")]);
        assert!(no_loc.to_json().contains("\"location\":null"));
    }
}
