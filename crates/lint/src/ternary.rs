//! A static three-valued (ternary) propagation engine over the AIG, plus a
//! key-support analysis. Together they power the security lints: with every
//! key input set to the unknown value `X` and at most a few bits pinned,
//! whatever still evaluates to a constant is information an attacker gets
//! for free, without ever invoking a SAT solver.

use kratt_netlist::{Aig, AigLit, KEY_INPUT_PREFIX};
use std::collections::HashMap;

/// A value in the three-valued lattice: definitely zero, definitely one, or
/// unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Constant zero under every completion of the unknowns.
    Zero,
    /// Constant one under every completion of the unknowns.
    One,
    /// Depends on at least one unknown input.
    X,
}

impl Ternary {
    /// Ternary conjunction: a single `Zero` dominates, `X` otherwise unless
    /// both sides are `One`.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }
}

/// Ternary negation (`X` stays `X`).
impl std::ops::Not for Ternary {
    type Output = Ternary;

    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

/// The ternary value of an AIG literal given per-node values.
pub fn lit_value(values: &[Ternary], lit: AigLit) -> Ternary {
    let v = values[lit.node() as usize];
    if lit.is_complemented() {
        !v
    } else {
        v
    }
}

/// Propagates ternary values through the whole AIG in one topological pass.
///
/// Inputs listed in `assignment` take their pinned value; every other input
/// is `X`. The returned vector is indexed by node id (node 0 is the constant
/// and evaluates to `Zero`; complemented edges are resolved by
/// [`lit_value`]).
pub fn propagate(aig: &Aig, assignment: &[(u32, bool)]) -> Vec<Ternary> {
    let mut values = vec![Ternary::X; aig.num_nodes()];
    values[0] = Ternary::Zero;
    for &(node, pinned) in assignment {
        values[node as usize] = if pinned { Ternary::One } else { Ternary::Zero };
    }
    for node in 1..aig.num_nodes() as u32 {
        if aig.is_and(node) {
            let (l0, l1) = aig.fanins(node);
            values[node as usize] = lit_value(&values, l0).and(lit_value(&values, l1));
        }
    }
    values
}

/// Per-node key-input support: which key bits each node transitively depends
/// on (a flat bitset, one word-group per node) and whether it also depends
/// on any data input. A node with key support but no data dependence is a
/// *key-only* node — the shape a hardwired key guard takes.
pub struct KeySupport {
    /// AIG input node of each key bit, in key declaration order.
    key_nodes: Vec<u32>,
    /// Name of each key bit, parallel to [`KeySupport::key_nodes`].
    key_names: Vec<String>,
    words: usize,
    bits: Vec<u64>,
    uses_data: Vec<bool>,
}

impl KeySupport {
    /// Computes the support of every node in one topological pass. Key
    /// inputs are recognised by the [`KEY_INPUT_PREFIX`] naming convention.
    pub fn compute(aig: &Aig) -> Self {
        let mut key_nodes = Vec::new();
        let mut key_names = Vec::new();
        let mut key_index: HashMap<u32, usize> = HashMap::new();
        for (&node, name) in aig.input_nodes().iter().zip(aig.input_names()) {
            if name.starts_with(KEY_INPUT_PREFIX) {
                key_index.insert(node, key_nodes.len());
                key_nodes.push(node);
                key_names.push(name.clone());
            }
        }
        let words = key_nodes.len().div_ceil(64);
        let n = aig.num_nodes();
        let mut bits = vec![0u64; n * words];
        let mut uses_data = vec![false; n];
        for node in 1..n as u32 {
            let i = node as usize;
            if aig.is_input(node) {
                match key_index.get(&node) {
                    Some(&k) => bits[i * words + k / 64] |= 1 << (k % 64),
                    None => uses_data[i] = true,
                }
            } else {
                let (l0, l1) = aig.fanins(node);
                let (a, b) = (l0.node() as usize, l1.node() as usize);
                for w in 0..words {
                    bits[i * words + w] = bits[a * words + w] | bits[b * words + w];
                }
                uses_data[i] = uses_data[a] || uses_data[b];
            }
        }
        KeySupport {
            key_nodes,
            key_names,
            words,
            bits,
            uses_data,
        }
    }

    /// Number of key inputs found.
    pub fn num_keys(&self) -> usize {
        self.key_nodes.len()
    }

    /// `(input node, name)` of each key bit, in key declaration order.
    pub fn keys(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.key_nodes
            .iter()
            .copied()
            .zip(self.key_names.iter().map(String::as_str))
    }

    /// Whether `node` transitively depends on key bit `key`.
    pub fn depends_on(&self, node: u32, key: usize) -> bool {
        let i = node as usize;
        self.bits[i * self.words + key / 64] >> (key % 64) & 1 != 0
    }

    /// How many distinct key bits `node` depends on.
    pub fn key_count(&self, node: u32) -> u32 {
        let i = node as usize;
        self.bits[i * self.words..(i + 1) * self.words]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Whether `node` depends on at least one key bit and on no data input —
    /// the signature of a key-only guard.
    pub fn is_key_only(&self, node: u32) -> bool {
        !self.uses_data[node as usize] && self.key_count(node) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// o = (a AND k0) XOR k1 with one data input and two key inputs.
    fn sample() -> (Aig, AigLit, AigLit, AigLit) {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let k1 = aig.add_input("keyinput1");
        let guard = aig.and(a, k0);
        let o = aig.xor(guard, k1);
        aig.add_output("o", o);
        (aig, a, k0, k1)
    }

    #[test]
    fn lattice_operations() {
        use Ternary::*;
        assert_eq!(!Zero, One);
        assert_eq!(!X, X);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(One), X);
        assert_eq!(One.and(One), One);
    }

    #[test]
    fn propagation_pins_inputs_and_spreads_constants() {
        let mut aig = Aig::new("prop");
        let a = aig.add_input("a");
        let k0 = aig.add_input("keyinput0");
        let guard = aig.and(a, k0);
        aig.add_output("o", guard);
        // Nothing pinned: everything past the inputs is X.
        let values = propagate(&aig, &[]);
        assert_eq!(values[0], Ternary::Zero);
        assert_eq!(lit_value(&values, AigLit::TRUE), Ternary::One);
        assert_eq!(values[a.node() as usize], Ternary::X);
        assert_eq!(values[guard.node() as usize], Ternary::X);
        // a = 0 kills the AND guard even though k0 is unknown.
        let values = propagate(&aig, &[(a.node(), false)]);
        assert_eq!(values[guard.node() as usize], Ternary::Zero);
        // Both pinned to 1 raises the guard to a definite One.
        let values = propagate(&aig, &[(a.node(), true), (k0.node(), true)]);
        assert_eq!(values[guard.node() as usize], Ternary::One);
    }

    #[test]
    fn support_separates_key_and_data_dependence() {
        let (aig, a, k0, k1) = sample();
        let support = KeySupport::compute(&aig);
        assert_eq!(support.num_keys(), 2);
        let names: Vec<&str> = support.keys().map(|(_, name)| name).collect();
        assert_eq!(names, vec!["keyinput0", "keyinput1"]);
        // The data input depends on no key; the key inputs on exactly one.
        assert_eq!(support.key_count(a.node()), 0);
        assert!(!support.is_key_only(a.node()));
        assert!(support.is_key_only(k0.node()));
        assert!(support.depends_on(k0.node(), 0));
        assert!(!support.depends_on(k0.node(), 1));
        // The output cone root depends on both keys and on data.
        let root = aig.outputs()[0].node();
        assert_eq!(support.key_count(root), 2);
        assert!(support.depends_on(root, 1));
        assert!(!support.is_key_only(root));
        assert_eq!(support.key_count(k1.node()), 1);
    }
}
