//! AIG invariant rules: the structural contract of the shared [`Aig`] core
//! IR, surfaced as diagnostics instead of debug assertions.

use crate::diagnostic::{Diagnostic, Severity};
use crate::rule::{LintContext, Rule};
use kratt_netlist::AigViolation;

/// Every AIG rule, in catalogue order.
pub(crate) fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(AigFaninOrder),
        Box::new(AigStrashConsistency),
        Box::new(AigDanglingNode),
    ]
}

/// `aig-fanin-order` (error): an AND node whose fanin does not precede it in
/// the node array. Every pass over the AIG (evaluation, CNF encoding,
/// raising) walks nodes in index order and relies on fanins being resolved
/// already.
pub struct AigFaninOrder;

impl Rule for AigFaninOrder {
    fn id(&self) -> &'static str {
        "aig-fanin-order"
    }
    fn summary(&self) -> &'static str {
        "AND node has a fanin that does not precede it topologically"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        aig.check_invariants()
            .into_iter()
            .filter_map(|v| match v {
                AigViolation::FaninOrder { node, .. } => Some(Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    format!("node {node}"),
                    v.to_string(),
                )),
                AigViolation::DuplicateNode { .. } => None,
            })
            .collect()
    }
}

/// `aig-strash-consistency` (error): two live AND nodes with the same fanin
/// pair. Structural hashing promises at most one node per (fanin, fanin)
/// pair; a duplicate means some path bypassed the strash table, and
/// structural equivalences the solvers count on no longer hold.
pub struct AigStrashConsistency;

impl Rule for AigStrashConsistency {
    fn id(&self) -> &'static str {
        "aig-strash-consistency"
    }
    fn summary(&self) -> &'static str {
        "two AND nodes share one fanin pair (strash table bypassed)"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        aig.check_invariants()
            .into_iter()
            .filter_map(|v| match v {
                AigViolation::DuplicateNode { second, .. } => Some(Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    format!("node {second}"),
                    v.to_string(),
                )),
                AigViolation::FaninOrder { .. } => None,
            })
            .collect()
    }
}

/// `aig-dangling-node` (warning): an AND node outside the cone of every
/// output. Dangling nodes are functionally harmless but inflate node counts
/// and signal a transform that forgot to sweep.
pub struct AigDanglingNode;

impl Rule for AigDanglingNode {
    fn id(&self) -> &'static str {
        "aig-dangling-node"
    }
    fn summary(&self) -> &'static str {
        "AND node is outside the cone of every output"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(aig) = ctx.aig() else {
            return Vec::new();
        };
        aig.dangling_nodes()
            .into_iter()
            .map(|node| {
                Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    format!("node {node}"),
                    "AND node does not reach any output",
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::{Aig, AigLit};

    fn run(rule: &dyn Rule, aig: &Aig) -> Vec<Diagnostic> {
        rule.check(&LintContext::for_aig(aig))
    }

    fn two_input_aig() -> (Aig, AigLit, AigLit) {
        let mut aig = Aig::new("toy");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        (aig, a, b)
    }

    #[test]
    fn clean_aig_passes_every_rule() {
        let (mut aig, a, b) = two_input_aig();
        let and = aig.and(a, b);
        aig.add_output("o", and);
        for rule in rules() {
            assert!(
                run(rule.as_ref(), &aig).is_empty(),
                "rule `{}` fired on a clean AIG",
                rule.id()
            );
        }
    }

    #[test]
    fn fanin_order_violation_fires() {
        let (mut aig, a, _) = two_input_aig();
        // Fanin node 9 does not exist yet, so it cannot precede this node.
        let broken = aig.raw_push_and(a, AigLit::new(9, false));
        aig.add_output("o", broken);
        let found = run(&AigFaninOrder, &aig);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Error);
        // The other AIG rules do not double-report this violation.
        assert!(run(&AigStrashConsistency, &aig).is_empty());
    }

    #[test]
    fn strash_duplicate_fires() {
        let (mut aig, a, b) = two_input_aig();
        let first = aig.and(a, b);
        let dup = aig.raw_push_and(a, b);
        aig.add_output("o1", first);
        aig.add_output("o2", dup);
        let found = run(&AigStrashConsistency, &aig);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("share the same fanin pair"));
        assert!(run(&AigFaninOrder, &aig).is_empty());
    }

    #[test]
    fn dangling_node_fires() {
        let (mut aig, a, b) = two_input_aig();
        let _orphan = aig.and(a, b);
        aig.add_output("o", a);
        let found = run(&AigDanglingNode, &aig);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Warning);
    }
}
