//! Well-formedness rules over [`Circuit`]: the structural contract the rest
//! of the suite assumes, checked explicitly.

use crate::diagnostic::{Diagnostic, Severity};
use crate::rule::{LintContext, Rule};
use kratt_netlist::analysis::{fanin_cone_gates, fanout_map, topological_order};
use kratt_netlist::{Circuit, NetlistError};
use std::collections::HashMap;

/// Every well-formedness rule, in catalogue order.
pub(crate) fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UndrivenNet),
        Box::new(MultiplyDrivenNet),
        Box::new(FloatingOutput),
        Box::new(DeadLogic),
        Box::new(UnusedKeyInput),
        Box::new(CombinationalCycle),
        Box::new(InterfaceDrift),
    ]
}

/// `undriven-net` (error): a net that is neither a primary input nor driven
/// by any gate. Such a net has no defined value; simulation and lowering
/// both rely on every net having exactly one source.
///
/// Output nets are excluded here — an undriven *output* is the more specific
/// `floating-output` finding.
pub struct UndrivenNet;

impl Rule for UndrivenNet {
    fn id(&self) -> &'static str {
        "undriven-net"
    }
    fn summary(&self) -> &'static str {
        "net is neither a primary input nor driven by any gate"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        circuit
            .nets()
            .filter(|&n| {
                !circuit.is_input(n) && circuit.driver(n).is_none() && !circuit.is_output(n)
            })
            .map(|n| {
                Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    circuit.net_name(n),
                    "net has no driver and is not a primary input",
                )
            })
            .collect()
    }
}

/// `multiply-driven-net` (error): a net driven by more than one gate, or a
/// primary input driven by a gate. Either way two sources fight over one
/// wire and the circuit's value is ill-defined.
pub struct MultiplyDrivenNet;

impl Rule for MultiplyDrivenNet {
    fn id(&self) -> &'static str {
        "multiply-driven-net"
    }
    fn summary(&self) -> &'static str {
        "net driven by more than one gate, or a gate drives a primary input"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        let mut drivers: HashMap<kratt_netlist::NetId, usize> = HashMap::new();
        for (_, gate) in circuit.gates() {
            *drivers.entry(gate.output).or_insert(0) += 1;
        }
        let mut found = Vec::new();
        for net in circuit.nets() {
            let n = drivers.get(&net).copied().unwrap_or(0);
            if circuit.is_input(net) && n > 0 {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    circuit.net_name(net),
                    format!("primary input is driven by {n} gate(s)"),
                ));
            } else if n > 1 {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    circuit.net_name(net),
                    format!("net is driven by {n} gates"),
                ));
            }
        }
        found
    }
}

/// `floating-output` (error): a primary output that is neither an input nor
/// driven by any gate — the circuit promises a value it never produces.
pub struct FloatingOutput;

impl Rule for FloatingOutput {
    fn id(&self) -> &'static str {
        "floating-output"
    }
    fn summary(&self) -> &'static str {
        "primary output has no driver"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        let mut seen = std::collections::HashSet::new();
        circuit
            .outputs()
            .iter()
            .filter(|&&o| seen.insert(o))
            .filter(|&&o| !circuit.is_input(o) && circuit.driver(o).is_none())
            .map(|&o| {
                Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    circuit.net_name(o),
                    "primary output is not driven by any gate",
                )
            })
            .collect()
    }
}

/// `dead-logic` (warning): a gate outside the fan-in cone of every primary
/// output. It burns area without influencing the function — usually a
/// leftover of a buggy transform (or deliberately inserted decoy logic).
pub struct DeadLogic;

impl Rule for DeadLogic {
    fn id(&self) -> &'static str {
        "dead-logic"
    }
    fn summary(&self) -> &'static str {
        "gate cannot reach any primary output"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        let live = fanin_cone_gates(circuit, circuit.outputs());
        circuit
            .gates()
            .filter(|(gid, _)| !live.contains(gid))
            .map(|(_, gate)| {
                Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    circuit.net_name(gate.output),
                    "gate output never reaches a primary output",
                )
            })
            .collect()
    }
}

/// `unused-key-input` (warning): a key input consumed by no gate. A key bit
/// nobody reads cannot protect anything — the effective key length is
/// shorter than the interface claims.
pub struct UnusedKeyInput;

impl Rule for UnusedKeyInput {
    fn id(&self) -> &'static str {
        "unused-key-input"
    }
    fn summary(&self) -> &'static str {
        "key input is consumed by no gate"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        let fanout = fanout_map(circuit);
        circuit
            .key_inputs()
            .into_iter()
            .filter(|k| !fanout.contains_key(k) && !circuit.is_output(*k))
            .map(|k| {
                Diagnostic::at(
                    self.id(),
                    Severity::Warning,
                    circuit.net_name(k),
                    "key input feeds no gate; it cannot affect the function",
                )
            })
            .collect()
    }
}

/// `combinational-cycle` (error): the gates cannot be topologically ordered.
/// The full cycle path (from [`NetlistError::CombinationalCycle`]) is spelled
/// out in the message so the loop can be traced net by net.
pub struct CombinationalCycle;

impl Rule for CombinationalCycle {
    fn id(&self) -> &'static str {
        "combinational-cycle"
    }
    fn summary(&self) -> &'static str {
        "gates form a combinational cycle (full path reported)"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(circuit) = ctx.circuit() else {
            return Vec::new();
        };
        match topological_order(circuit) {
            Ok(_) => Vec::new(),
            Err(ref err @ NetlistError::CombinationalCycle(ref path)) => {
                let location = path.first().cloned().unwrap_or_default();
                vec![Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    location,
                    err.to_string(),
                )]
            }
            Err(_) => Vec::new(),
        }
    }
}

/// `interface-drift` (error): the locked circuit's functional interface has
/// drifted from the original's. A correct locking transform adds key inputs
/// and nothing else: the data inputs and the outputs must match the original
/// by name, order and count, or downstream equivalence checks silently
/// compare the wrong pins.
pub struct InterfaceDrift;

impl InterfaceDrift {
    fn compare(
        &self,
        what: &str,
        original: &[String],
        locked: &[String],
        found: &mut Vec<Diagnostic>,
    ) {
        if original.len() != locked.len() {
            found.push(Diagnostic::global(
                self.id(),
                Severity::Error,
                format!(
                    "locked circuit has {} {what}s, original has {}",
                    locked.len(),
                    original.len()
                ),
            ));
            return;
        }
        for (orig, lock) in original.iter().zip(locked) {
            if orig != lock {
                found.push(Diagnostic::at(
                    self.id(),
                    Severity::Error,
                    lock.clone(),
                    format!("{what} `{lock}` does not match original's `{orig}` at this position"),
                ));
            }
        }
    }

    fn original_data_inputs(original: &Circuit) -> Vec<String> {
        // An already-locked "original" (re-locking experiments) contributes
        // only its data inputs to the contract.
        original.data_input_names()
    }
}

impl Rule for InterfaceDrift {
    fn id(&self) -> &'static str {
        "interface-drift"
    }
    fn summary(&self) -> &'static str {
        "locked circuit's data inputs or outputs drifted from the original"
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let (Some(locked), Some(original)) = (ctx.circuit(), ctx.original()) else {
            return Vec::new();
        };
        let mut found = Vec::new();
        self.compare(
            "data input",
            &Self::original_data_inputs(original),
            &locked.data_input_names(),
            &mut found,
        );
        self.compare(
            "output",
            &original.net_names(original.outputs()),
            &locked.net_names(locked.outputs()),
            &mut found,
        );
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn run(rule: &dyn Rule, circuit: &Circuit) -> Vec<Diagnostic> {
        rule.check(&LintContext::for_circuit(circuit))
    }

    /// A small clean circuit every rule should stay silent on.
    fn clean() -> Circuit {
        let mut c = Circuit::new("clean");
        let a = c.add_input("a").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, k]).unwrap();
        c.mark_output(x);
        c
    }

    #[test]
    fn clean_circuit_passes_every_rule() {
        let c = clean();
        for rule in rules() {
            assert!(
                run(rule.as_ref(), &c).is_empty(),
                "rule `{}` fired on a clean circuit",
                rule.id()
            );
        }
    }

    #[test]
    fn undriven_net_fires() {
        let mut c = clean();
        c.raw_add_undriven_net("ghost").unwrap();
        let found = run(&UndrivenNet, &c);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("ghost"));
        assert_eq!(found[0].severity, Severity::Error);
    }

    #[test]
    fn multiply_driven_net_fires_for_double_drivers_and_driven_inputs() {
        let mut c = clean();
        let a = c.find_net("a").unwrap();
        let x = c.find_net("x").unwrap();
        c.raw_push_gate(GateType::Not, &[a], x); // second driver on x
        c.raw_push_gate(GateType::Buf, &[x], a); // gate drives input a
        let found = run(&MultiplyDrivenNet, &c);
        assert_eq!(found.len(), 2);
        let locs: Vec<_> = found.iter().filter_map(|d| d.location.as_deref()).collect();
        assert!(locs.contains(&"x"));
        assert!(locs.contains(&"a"));
    }

    #[test]
    fn floating_output_fires() {
        let mut c = clean();
        let ghost = c.raw_add_undriven_net("ghost_out").unwrap();
        c.mark_output(ghost);
        let found = run(&FloatingOutput, &c);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("ghost_out"));
        // The undriven-net rule leaves output nets to this rule.
        assert!(run(&UndrivenNet, &c).is_empty());
    }

    #[test]
    fn dead_logic_fires() {
        let mut c = clean();
        let a = c.find_net("a").unwrap();
        c.add_gate(GateType::Not, "dead", &[a]).unwrap();
        let found = run(&DeadLogic, &c);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("dead"));
        assert_eq!(found[0].severity, Severity::Warning);
    }

    #[test]
    fn unused_key_input_fires() {
        let mut c = clean();
        c.add_input("keyinput1").unwrap();
        let found = run(&UnusedKeyInput, &c);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].location.as_deref(), Some("keyinput1"));
        // An unused *data* input is not this rule's business.
        let mut c = clean();
        c.add_input("b").unwrap();
        assert!(run(&UnusedKeyInput, &c).is_empty());
    }

    #[test]
    fn combinational_cycle_fires_with_the_full_path() {
        let mut c = Circuit::new("cyc");
        let a = c.add_input("a").unwrap();
        let x = c.add_gate(GateType::And, "x", &[a, a]).unwrap();
        let y = c.add_gate(GateType::Buf, "y", &[x]).unwrap();
        c.mark_output(y);
        c.raw_set_gate_input(c.driver(x).unwrap(), 1, y);
        let found = run(&CombinationalCycle, &c);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, Severity::Error);
        assert!(found[0].message.contains("`x`"), "{}", found[0].message);
        assert!(found[0].message.contains("`y`"), "{}", found[0].message);
    }

    #[test]
    fn interface_drift_fires_on_renames_and_missing_outputs() {
        let original = clean();
        // Renamed data input.
        let mut locked = Circuit::new("locked");
        let b = locked.add_input("b").unwrap();
        let k = locked.add_input("keyinput0").unwrap();
        let x = locked.add_gate(GateType::Xor, "x", &[b, k]).unwrap();
        locked.mark_output(x);
        let rule = InterfaceDrift;
        let found = rule.check(&LintContext::for_locked(&original, &locked));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`b`"));
        // Dropped output.
        let mut locked = original.clone();
        locked.set_name("locked2");
        let extra = locked.find_net("a").unwrap();
        locked.mark_output(extra);
        let found = rule.check(&LintContext::for_locked(&original, &locked));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("outputs"));
        // Without an original the rule stays silent.
        assert!(rule.check(&LintContext::for_circuit(&locked)).is_empty());
    }
}
