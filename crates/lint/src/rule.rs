//! The [`Rule`] trait, the [`LintContext`] rules inspect and the
//! [`RuleRegistry`] mirroring the suite's attack and scheme registries.

use crate::diagnostic::{Diagnostic, LintReport};
use kratt_netlist::{Aig, Circuit};

/// What one lint run inspects: a circuit, optionally the original it was
/// locked from (for drift rules), and an AIG image of the subject.
///
/// Rules take whatever subset they understand and return no findings when
/// their subject is absent — a context built from a bare [`Aig`] runs only
/// the AIG rules, a cyclic circuit runs everything that needs no AIG.
pub struct LintContext<'a> {
    circuit: Option<&'a Circuit>,
    original: Option<&'a Circuit>,
    aig_ref: Option<&'a Aig>,
    aig_owned: Option<Aig>,
}

impl<'a> LintContext<'a> {
    /// Context over a standalone circuit. The AIG image is lowered eagerly
    /// unless the circuit is cyclic (the cycle rule still fires without it).
    pub fn for_circuit(circuit: &'a Circuit) -> Self {
        LintContext {
            circuit: Some(circuit),
            original: None,
            aig_ref: None,
            aig_owned: Aig::from_circuit(circuit).ok(),
        }
    }

    /// Context over a locked circuit together with the original it was
    /// locked from, enabling the interface-drift rule.
    pub fn for_locked(original: &'a Circuit, locked: &'a Circuit) -> Self {
        LintContext {
            original: Some(original),
            ..LintContext::for_circuit(locked)
        }
    }

    /// Context over a bare AIG (only the AIG rules apply).
    pub fn for_aig(aig: &'a Aig) -> Self {
        LintContext {
            circuit: None,
            original: None,
            aig_ref: Some(aig),
            aig_owned: None,
        }
    }

    /// The circuit under lint, if the context has one.
    pub fn circuit(&self) -> Option<&Circuit> {
        self.circuit
    }

    /// The reference circuit the subject was locked from, if provided.
    pub fn original(&self) -> Option<&Circuit> {
        self.original
    }

    /// The AIG under lint: the bare AIG of [`LintContext::for_aig`], or the
    /// image lowered from the circuit (absent when the circuit is cyclic).
    pub fn aig(&self) -> Option<&Aig> {
        self.aig_ref.or(self.aig_owned.as_ref())
    }

    /// The name of whatever is being linted.
    pub fn subject_name(&self) -> &str {
        match (self.circuit, self.aig()) {
            (Some(circuit), _) => circuit.name(),
            (None, Some(aig)) => aig.name(),
            (None, None) => "<empty>",
        }
    }
}

/// One static-analysis rule. Implementations are stateless: `check` reads
/// the context and reports findings.
pub trait Rule {
    /// Stable kebab-case identifier, e.g. `"undriven-net"`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list`-style output and the README.
    fn summary(&self) -> &'static str;
    /// Runs the rule over a context.
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
}

/// An ordered collection of rules, mirroring `SchemeRegistry` /
/// `AttackRegistry`: rules are registered under their id, enumerable, and
/// run as a batch.
pub struct RuleRegistry {
    rules: Vec<Box<dyn Rule>>,
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RuleRegistry { rules: Vec::new() }
    }

    /// The registry holding every shipped rule: well-formedness, AIG
    /// invariants and the ternary-propagation security lints.
    pub fn with_default_rules() -> Self {
        let mut registry = RuleRegistry::new();
        for rule in crate::wellformed::rules() {
            registry.register(rule);
        }
        for rule in crate::aig_rules::rules() {
            registry.register(rule);
        }
        for rule in crate::security::rules() {
            registry.register(rule);
        }
        registry
    }

    /// Registers a rule. A rule registered twice under one id replaces the
    /// earlier entry (mirroring `SchemeRegistry::register`).
    pub fn register(&mut self, rule: Box<dyn Rule>) {
        if let Some(existing) = self.rules.iter_mut().find(|r| r.id() == rule.id()) {
            *existing = rule;
        } else {
            self.rules.push(rule);
        }
    }

    /// Whether a rule with this id is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.rules.iter().any(|r| r.id() == id)
    }

    /// The registered rule ids, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// The one-line summary of a rule.
    pub fn summary(&self, id: &str) -> Option<&'static str> {
        self.rules
            .iter()
            .find(|r| r.id() == id)
            .map(|r| r.summary())
    }

    /// Runs every registered rule over the context and collects the
    /// findings into a report (most severe first).
    pub fn run(&self, ctx: &LintContext<'_>) -> LintReport {
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            diagnostics.extend(rule.check(ctx));
        }
        LintReport::new(ctx.subject_name(), diagnostics)
    }
}

impl Default for RuleRegistry {
    fn default() -> Self {
        RuleRegistry::with_default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use kratt_netlist::GateType;

    struct Dummy(&'static str);
    impl Rule for Dummy {
        fn id(&self) -> &'static str {
            self.0
        }
        fn summary(&self) -> &'static str {
            "dummy"
        }
        fn check(&self, _ctx: &LintContext<'_>) -> Vec<Diagnostic> {
            vec![Diagnostic::global(self.0, Severity::Info, "fired")]
        }
    }

    #[test]
    fn registry_registers_replaces_and_runs() {
        let mut registry = RuleRegistry::new();
        registry.register(Box::new(Dummy("one")));
        registry.register(Box::new(Dummy("two")));
        registry.register(Box::new(Dummy("one"))); // replacement, not a dup
        assert_eq!(registry.names(), vec!["one", "two"]);
        assert!(registry.contains("one"));
        assert!(!registry.contains("three"));
        assert_eq!(registry.summary("two"), Some("dummy"));

        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let o = c.add_gate(GateType::Buf, "o", &[a]).unwrap();
        c.mark_output(o);
        let report = registry.run(&LintContext::for_circuit(&c));
        assert_eq!(report.subject, "toy");
        assert_eq!(report.diagnostics.len(), 2);
    }

    #[test]
    fn default_registry_ships_the_full_catalogue() {
        let registry = RuleRegistry::with_default_rules();
        for id in [
            "undriven-net",
            "multiply-driven-net",
            "floating-output",
            "dead-logic",
            "unused-key-input",
            "combinational-cycle",
            "interface-drift",
            "aig-fanin-order",
            "aig-strash-consistency",
            "aig-dangling-node",
            "key-unreachable-output",
            "key-forced-bit",
            "exposed-point-function",
            "key-unate-output",
            "odc-dead-key-gate",
            "probability-skewed-comparator",
            "ternary-cofactor-constant",
        ] {
            assert!(registry.contains(id), "missing rule `{id}`");
            assert!(registry.summary(id).is_some());
        }
    }

    #[test]
    fn context_exposes_subjects() {
        let mut c = Circuit::new("ctx");
        let a = c.add_input("a").unwrap();
        let o = c.add_gate(GateType::Not, "o", &[a]).unwrap();
        c.mark_output(o);
        let ctx = LintContext::for_circuit(&c);
        assert!(ctx.circuit().is_some());
        assert!(ctx.original().is_none());
        assert!(ctx.aig().is_some());
        assert_eq!(ctx.subject_name(), "ctx");

        let aig = Aig::from_circuit(&c).unwrap();
        let ctx = LintContext::for_aig(&aig);
        assert!(ctx.circuit().is_none());
        assert!(ctx.aig().is_some());
        assert_eq!(ctx.subject_name(), "ctx");
    }
}
