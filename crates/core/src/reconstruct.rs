//! The paper's §V discussion: reconstructing the original circuit from the
//! functionality-stripped circuit once the protected pattern is known.
//!
//! For locking schemes whose restore unit is hidden in read-proof hardware
//! (SFLL-Flex, row-activated LUTs), no attack can recover the key — but the
//! structural analysis still recovers the protected primary input pattern(s).
//! The original circuit is then rebuilt by driving the stripped critical
//! signal with a hard-wired comparator against the recovered pattern, which
//! is exactly "adding these values into the FSC using a comparator and XOR
//! logic".

use crate::{KrattError, RemovalArtifacts};
use kratt_netlist::analysis::topological_order;
use kratt_netlist::transform::set_inputs_constant;
use kratt_netlist::{Circuit, GateType, NetId};
use std::collections::HashMap;

/// Rebuilds the original circuit from the unit-stripped circuit and one
/// recovered protected pattern: the critical signal is re-driven by
/// `AND_i (ppi_i == pattern_i)` and the dangling key inputs are removed.
///
/// This is the single-pattern case (TTLock, CAC, SFLL-HD0); see
/// [`reconstruct_original_from_patterns`] for schemes that strip several
/// patterns (SFLL-Flex, LUT locking).
///
/// # Errors
///
/// Returns an error if a protected input named in `pattern` does not exist
/// in the unit-stripped circuit.
pub fn reconstruct_original(
    artifacts: &RemovalArtifacts,
    pattern: &[(String, bool)],
) -> Result<Circuit, KrattError> {
    reconstruct_original_from_patterns(artifacts, std::slice::from_ref(&pattern.to_vec()))
}

/// Rebuilds the original circuit from the unit-stripped circuit and a *set*
/// of recovered protected patterns: the critical signal is re-driven by
/// `OR_p AND_i (ppi_i == p_i)` — one hard-wired comparator per stripped
/// pattern — and the dangling key inputs are removed. This is exactly the
/// paper's §V construction ("adding these values into the FSC using a
/// comparator and XOR logic") for SFLL-Flex and row-activated LUT locking,
/// whose perturb unit strips several patterns.
///
/// An empty pattern set re-drives the critical signal with constant 0, i.e.
/// returns the functionality-stripped circuit itself.
///
/// # Errors
///
/// Returns an error if a protected input named in any pattern does not exist
/// in the unit-stripped circuit.
pub fn reconstruct_original_from_patterns(
    artifacts: &RemovalArtifacts,
    patterns: &[Vec<(String, bool)>],
) -> Result<Circuit, KrattError> {
    let usc = &artifacts.unit_stripped;
    let cs1_name = &artifacts.critical_signal;

    let mut rebuilt = Circuit::new(format!("{}_reconstructed", usc.name()));
    let mut map: HashMap<NetId, NetId> = HashMap::new();

    // Keep every primary input except the exposed critical signal.
    let cs1 = usc.find_net(cs1_name).ok_or_else(|| {
        KrattError::Netlist(kratt_netlist::NetlistError::UnknownNet(cs1_name.clone()))
    })?;
    for &pi in usc.inputs() {
        if pi == cs1 {
            continue;
        }
        let new = rebuilt.add_input(usc.net_name(pi))?;
        map.insert(pi, new);
    }

    // One hard-wired comparator per protected pattern, OR-reduced.
    let mut comparators: Vec<NetId> = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        let mut terms: Vec<NetId> = Vec::with_capacity(pattern.len());
        for (name, value) in pattern {
            let source = rebuilt
                .find_net(name)
                .filter(|&n| rebuilt.is_input(n))
                .ok_or_else(|| {
                    KrattError::Netlist(kratt_netlist::NetlistError::UnknownNet(name.clone()))
                })?;
            let term = if *value {
                source
            } else {
                rebuilt.add_gate_auto(GateType::Not, "rec_inv", &[source])?
            };
            terms.push(term);
        }
        comparators.push(reduce(&mut rebuilt, GateType::And, terms, "rec_and")?);
    }
    let restored_cs1 = reduce(&mut rebuilt, GateType::Or, comparators, "rec_or")?;
    map.insert(cs1, restored_cs1);

    // Copy the USC logic on top.
    for gid in topological_order(usc)? {
        let gate = usc.gate(gid);
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        let out = if rebuilt.find_net(usc.net_name(gate.output)).is_none() {
            rebuilt.add_gate(gate.ty, usc.net_name(gate.output), &inputs)?
        } else {
            rebuilt.add_gate_auto(gate.ty, usc.net_name(gate.output), &inputs)?
        };
        map.insert(gate.output, out);
    }
    for &o in usc.outputs() {
        rebuilt.mark_output(map[&o]);
    }

    // The key inputs are dangling now; tie them off so the interface matches
    // the original circuit.
    let keys: Vec<(NetId, bool)> = rebuilt
        .key_inputs()
        .into_iter()
        .map(|n| (n, false))
        .collect();
    Ok(set_inputs_constant(&rebuilt, &keys)?)
}

/// Balanced binary reduction of `nets` with gates of type `ty`. Zero nets
/// produce the neutral constant of the operation (1 for AND, 0 for OR); a
/// single net is returned unchanged.
fn reduce(
    circuit: &mut Circuit,
    ty: GateType,
    nets: Vec<NetId>,
    prefix: &str,
) -> Result<NetId, KrattError> {
    match nets.len() {
        0 => Ok(circuit.add_gate_auto(
            if ty == GateType::And {
                GateType::Const1
            } else {
                GateType::Const0
            },
            prefix,
            &[],
        )?),
        1 => Ok(nets[0]),
        _ => {
            let mut level = nets;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    if pair.len() == 2 {
                        next.push(circuit.add_gate_auto(ty, prefix, pair)?);
                    } else {
                        next.push(pair[0]);
                    }
                }
                level = next;
            }
            Ok(level[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::og::{structural_analysis, StructuralAnalysisConfig, StructuralOutcome};
    use crate::removal::remove_locking_unit;
    use kratt_attacks::Oracle;
    use kratt_benchmarks::arith::ripple_carry_adder;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{LockingTechnique, SecretKey, TtLock};
    use kratt_netlist::sim::exhaustively_equivalent;

    #[test]
    fn reconstruction_from_the_true_pattern_matches_the_original() {
        let original = majority();
        let secret = SecretKey::from_u64(0b110, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let pattern: Vec<(String, bool)> = artifacts
            .protected_inputs()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, secret.bits()[i]))
            .collect();
        let rebuilt = reconstruct_original(&artifacts, &pattern).unwrap();
        assert!(exhaustively_equivalent(&original, &rebuilt).unwrap());
    }

    #[test]
    fn reconstruction_from_the_recovered_pattern_matches_the_original() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1011, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = crate::extraction::extract_locked_subcircuit(&artifacts).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let outcome = structural_analysis(
            &artifacts,
            &subcircuit,
            &locked.circuit,
            &oracle,
            &StructuralAnalysisConfig::default(),
        )
        .unwrap();
        let StructuralOutcome::Key {
            protected_pattern, ..
        } = outcome
        else {
            panic!("structural analysis should find the pattern");
        };
        let rebuilt = reconstruct_original(&artifacts, &protected_pattern).unwrap();
        assert!(exhaustively_equivalent(&original, &rebuilt).unwrap());
    }

    #[test]
    fn unknown_protected_input_is_an_error() {
        let original = majority();
        let locked = TtLock::new(3)
            .lock(&original, &SecretKey::from_u64(0, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let bad = vec![("ghost".to_string(), true)];
        assert!(reconstruct_original(&artifacts, &bad).is_err());
    }

    #[test]
    fn empty_pattern_set_reproduces_the_stripped_circuit() {
        // With no patterns the critical signal is tied to 0, i.e. the rebuilt
        // circuit is the FSC: it must differ from the original exactly on the
        // protected pattern.
        let original = majority();
        let secret = SecretKey::from_u64(0b001, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let fsc = reconstruct_original_from_patterns(&artifacts, &[]).unwrap();
        let sim_orig = kratt_netlist::sim::Simulator::new(&original).unwrap();
        let sim_fsc = kratt_netlist::sim::Simulator::new(&fsc).unwrap();
        let mut differing = 0usize;
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            if sim_orig.run(&bits).unwrap() != sim_fsc.run(&bits).unwrap() {
                differing += 1;
                assert_eq!(pattern, secret.to_u64());
            }
        }
        assert_eq!(differing, 1);
    }

    /// The full §V flow for a multi-pattern scheme: recover every protected
    /// pattern with the oracle, then rebuild the original circuit.
    fn section_v_flow(
        original: &Circuit,
        locked: &kratt_locking::LockedCircuit,
        expected_patterns: usize,
    ) {
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = crate::extraction::extract_locked_subcircuit(&artifacts).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let patterns = crate::og::recover_protected_patterns(
            &artifacts,
            &subcircuit,
            &oracle,
            &StructuralAnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(patterns.len(), expected_patterns);
        let rebuilt = reconstruct_original_from_patterns(&artifacts, &patterns).unwrap();
        assert!(exhaustively_equivalent(original, &rebuilt).unwrap());
    }

    #[test]
    fn sfll_flex_original_is_reconstructed_from_recovered_patterns() {
        let original = ripple_carry_adder(3).unwrap();
        // Two protected patterns of 3 bits: 0b110 and 0b001.
        let secret = SecretKey::from_bits(vec![false, true, true, true, false, false]);
        let locked = kratt_locking::SfllFlex::new(3, 2)
            .lock(&original, &secret)
            .unwrap();
        section_v_flow(&original, &locked, 2);
    }

    #[test]
    fn lut_lock_original_is_reconstructed_from_recovered_patterns() {
        let original = ripple_carry_adder(3).unwrap();
        // Protect LUT addresses {0, 5, 6}.
        let secret = SecretKey::from_u64(0b0110_0001, 8);
        let locked = kratt_locking::LutLock::new(3)
            .lock(&original, &secret)
            .unwrap();
        section_v_flow(&original, &locked, 3);
    }

    #[test]
    fn single_pattern_schemes_also_work_through_the_multi_pattern_path() {
        let original = ripple_carry_adder(3).unwrap();
        let secret = SecretKey::from_u64(0b101, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        section_v_flow(&original, &locked, 1);
    }
}
