//! Steps 6–7 of the flow: structural analysis and oracle-guided exhaustive
//! search (the OG path for DFLTs).
//!
//! The functionality-stripped circuit embedded in the locked subcircuit
//! contains implicants built from the protected primary inputs (the paper's
//! Fig. 5(c)/(d)). The structural analysis therefore:
//!
//! 1. collects the logic cones of the locked subcircuit whose support is
//!    protected primary inputs only;
//! 2. SAT-solves each cone to 0 and to 1, recording the (partially
//!    specified) protected-input patterns of the satisfying assignments;
//! 3. augments them with single-bit patterns, orders everything by the
//!    number of unspecified bits, and
//! 4. expands the unspecified bits, querying the oracle for each candidate
//!    pattern while the locked netlist is driven with the key tied to the
//!    candidate: when both produce the same outputs, the candidate is the
//!    protected pattern — i.e. (through the PPI↔key association) the secret
//!    key.

use crate::{KrattError, RemovalArtifacts};
use kratt_attacks::{KeyGuess, Oracle};
use kratt_netlist::analysis::{fanout_map, support};
use kratt_netlist::sim::Simulator;
use kratt_netlist::{Circuit, NetId};
use kratt_sat::{cancel_requested, CancelFlag, Encoder, Lit, SatResult, Solver};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Budget and heuristics of the structural-analysis search.
#[derive(Debug, Clone)]
pub struct StructuralAnalysisConfig {
    /// Cap on the number of candidate logic cones analysed.
    pub max_cones: usize,
    /// Patterns with more unspecified bits than this are not expanded
    /// exhaustively (their single completions are skipped); keeps the search
    /// bounded on wide keys.
    pub max_expansion_bits: u32,
    /// Overall cap on oracle queries.
    pub max_oracle_queries: u64,
    /// Wall-clock budget for the search.
    pub time_limit: Option<Duration>,
    /// Absolute deadline shared with the rest of the attack; the effective
    /// limit is the earlier of `time_limit` (relative to the start of the
    /// search) and this instant.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag shared with the attack: checked in the
    /// pattern-expansion loops wherever the deadline is, and handed to the
    /// cone-probing SAT solver.
    pub cancel: Option<CancelFlag>,
}

impl Default for StructuralAnalysisConfig {
    fn default() -> Self {
        StructuralAnalysisConfig {
            max_cones: 1024,
            max_expansion_bits: 16,
            max_oracle_queries: 2_000_000,
            time_limit: Some(Duration::from_secs(120)),
            deadline: None,
            cancel: None,
        }
    }
}

impl StructuralAnalysisConfig {
    /// The effective absolute deadline of a search starting now.
    fn effective_deadline(&self) -> Option<Instant> {
        let per_call = self.time_limit.map(|limit| Instant::now() + limit);
        match (per_call, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Outcome of the structural analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralOutcome {
    /// The protected pattern (and hence the key) was found.
    Key {
        /// The recovered key bits by key-input name.
        guess: KeyGuess,
        /// The protected-input pattern, by protected-input name.
        protected_pattern: Vec<(String, bool)>,
    },
    /// The budget ran out before a matching pattern was found.
    OutOfTime,
}

/// A partially specified protected-input pattern (`None` = unspecified).
type PartialPattern = Vec<Option<bool>>;

/// Runs the structural analysis and exhaustive search.
///
/// # Errors
///
/// Propagates netlist/simulation/oracle errors.
pub fn structural_analysis(
    artifacts: &RemovalArtifacts,
    subcircuit: &Circuit,
    locked: &Circuit,
    oracle: &Oracle,
    config: &StructuralAnalysisConfig,
) -> Result<StructuralOutcome, KrattError> {
    let deadline = config.effective_deadline();
    let ppi_names: Vec<String> = artifacts
        .protected_inputs()
        .into_iter()
        .filter(|name| {
            subcircuit
                .find_net(name)
                .map(|n| subcircuit.is_input(n))
                .unwrap_or(false)
        })
        .collect();
    if ppi_names.is_empty() {
        return Ok(StructuralOutcome::OutOfTime);
    }
    let ppi_index: BTreeMap<&str, usize> = ppi_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // --- Steps 1–3: promising (partially specified) PPI patterns. ---------
    let patterns = promising_patterns(subcircuit, &ppi_names, &ppi_index, config, deadline);

    // --- Step 4: expand and test against the oracle. ----------------------
    let locked_sim = Simulator::new(locked)?;
    let mut tried: HashSet<Vec<bool>> = HashSet::new();
    let mut queries = 0u64;
    for pattern in &patterns {
        let unspecified: Vec<usize> = (0..pattern.len())
            .filter(|&i| pattern[i].is_none())
            .collect();
        if unspecified.len() as u32 > config.max_expansion_bits {
            continue;
        }
        for completion in 0u64..(1u64 << unspecified.len()) {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Ok(StructuralOutcome::OutOfTime);
                }
            }
            if cancel_requested(&config.cancel) {
                return Ok(StructuralOutcome::OutOfTime);
            }
            if queries >= config.max_oracle_queries {
                return Ok(StructuralOutcome::OutOfTime);
            }
            let mut candidate: Vec<bool> = pattern.iter().map(|b| b.unwrap_or(false)).collect();
            for (bit, &position) in unspecified.iter().enumerate() {
                candidate[position] = completion >> bit & 1 != 0;
            }
            if !tried.insert(candidate.clone()) {
                continue;
            }
            queries += 1;
            if candidate_matches(
                artifacts,
                &ppi_names,
                &candidate,
                locked,
                &locked_sim,
                oracle,
            )? {
                let protected_pattern: Vec<(String, bool)> = ppi_names
                    .iter()
                    .cloned()
                    .zip(candidate.iter().copied())
                    .collect();
                let guess = pattern_to_key_guess(artifacts, &ppi_names, &candidate);
                return Ok(StructuralOutcome::Key {
                    guess,
                    protected_pattern,
                });
            }
        }
    }
    Ok(StructuralOutcome::OutOfTime)
}

/// Steps 1–3 of the structural analysis: collect PPI-only logic cones,
/// SAT-solve each cone to 0 and 1 to obtain two partially specified patterns
/// per cone, augment them with single-bit patterns and order everything by
/// the number of unspecified bits (most specific first).
fn promising_patterns(
    subcircuit: &Circuit,
    ppi_names: &[String],
    ppi_index: &BTreeMap<&str, usize>,
    config: &StructuralAnalysisConfig,
    deadline: Option<Instant>,
) -> Vec<PartialPattern> {
    // --- Step 1: candidate logic cones with PPI-only support. -------------
    let cones = ppi_only_cones(subcircuit, ppi_index, config.max_cones);

    // --- Step 2: two promising patterns per cone (output = 0 and 1). ------
    let mut patterns: Vec<PartialPattern> = Vec::new();
    {
        let mut solver = Solver::with_config(kratt_sat::SolverConfig {
            deadline,
            cancel: config.cancel.clone(),
            ..Default::default()
        });
        let encoder = Encoder::new();
        let encoding = encoder.encode(&mut solver, subcircuit, &HashMap::new());
        for &cone in &cones {
            for target in [false, true] {
                let assumption = Lit::with_polarity(encoding.var_of(cone), target);
                if let SatResult::Sat(model) = solver.solve_with_assumptions(&[assumption]) {
                    let cone_support: HashSet<String> = support(subcircuit, &[cone])
                        .into_iter()
                        .map(|n| subcircuit.net_name(n).to_string())
                        .collect();
                    let mut pattern: PartialPattern = vec![None; ppi_names.len()];
                    for (name, &index) in ppi_index {
                        if cone_support.contains(*name) {
                            let net = subcircuit.find_net(name).expect("ppi exists");
                            pattern[index] = Some(model.value(encoding.var_of(net)));
                        }
                    }
                    patterns.push(pattern);
                }
            }
        }
    }

    // --- Step 3: augment with single-bit patterns and order by specificity.
    for index in 0..ppi_names.len() {
        for value in [false, true] {
            let mut pattern: PartialPattern = vec![None; ppi_names.len()];
            pattern[index] = Some(value);
            patterns.push(pattern);
        }
    }
    patterns.sort_by_key(|p| p.iter().filter(|b| b.is_none()).count());
    patterns.dedup();
    patterns
}

/// The paper's §V flow for locking schemes whose restore unit lives in
/// read-proof hardware (SFLL-Flex, row-activated LUTs): the key itself cannot
/// be recovered, but the *protected patterns* can — every candidate pattern
/// on which the functionality-stripped circuit (the unit-stripped circuit
/// with the critical signal and the dangling key inputs tied to 0) disagrees
/// with the oracle is a stripped pattern. The returned patterns are what
/// [`reconstruct_original_from_patterns`](crate::reconstruct::reconstruct_original_from_patterns)
/// needs to rebuild the original circuit.
///
/// Candidate generation and the budget knobs are shared with
/// [`structural_analysis`]; unlike it, this search does not stop at the first
/// hit — it keeps going until the candidate list or the budget is exhausted
/// and returns *all* protected patterns it found.
///
/// # Errors
///
/// Propagates netlist/simulation/oracle errors.
pub fn recover_protected_patterns(
    artifacts: &RemovalArtifacts,
    subcircuit: &Circuit,
    oracle: &Oracle,
    config: &StructuralAnalysisConfig,
) -> Result<Vec<Vec<(String, bool)>>, KrattError> {
    let deadline = config.effective_deadline();
    let ppi_names: Vec<String> = artifacts
        .protected_inputs()
        .into_iter()
        .filter(|name| {
            subcircuit
                .find_net(name)
                .map(|n| subcircuit.is_input(n))
                .unwrap_or(false)
        })
        .collect();
    if ppi_names.is_empty() {
        return Ok(Vec::new());
    }
    let ppi_index: BTreeMap<&str, usize> = ppi_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let patterns = promising_patterns(subcircuit, &ppi_names, &ppi_index, config, deadline);

    // Build the functionality-stripped circuit: USC with cs1 and the dangling
    // key inputs tied to 0.
    let usc = &artifacts.unit_stripped;
    let cs1 = usc.find_net(&artifacts.critical_signal).ok_or_else(|| {
        KrattError::Netlist(kratt_netlist::NetlistError::UnknownNet(
            artifacts.critical_signal.clone(),
        ))
    })?;
    let mut ties: Vec<(NetId, bool)> = vec![(cs1, false)];
    ties.extend(usc.key_inputs().into_iter().map(|k| (k, false)));
    let fsc = kratt_netlist::transform::set_inputs_constant(usc, &ties)?;
    let fsc_sim = Simulator::new(&fsc)?;

    let mut found: Vec<Vec<(String, bool)>> = Vec::new();
    let mut tried: HashSet<Vec<bool>> = HashSet::new();
    let mut queries = 0u64;
    for pattern in &patterns {
        let unspecified: Vec<usize> = (0..pattern.len())
            .filter(|&i| pattern[i].is_none())
            .collect();
        if unspecified.len() as u32 > config.max_expansion_bits {
            continue;
        }
        for completion in 0u64..(1u64 << unspecified.len()) {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Ok(found);
                }
            }
            if cancel_requested(&config.cancel) {
                return Ok(found);
            }
            if queries >= config.max_oracle_queries {
                return Ok(found);
            }
            let mut candidate: Vec<bool> = pattern.iter().map(|b| b.unwrap_or(false)).collect();
            for (bit, &position) in unspecified.iter().enumerate() {
                candidate[position] = completion >> bit & 1 != 0;
            }
            if !tried.insert(candidate.clone()) {
                continue;
            }
            queries += 1;

            // Oracle and FSC on the same input assignment (PPIs = candidate,
            // everything else 0).
            let assignment: Vec<(&str, bool)> = ppi_names
                .iter()
                .map(String::as_str)
                .zip(candidate.iter().copied())
                .collect();
            let oracle_out = oracle
                .query_by_name(&assignment)
                .map_err(KrattError::Netlist)?;
            let mut fsc_pattern = vec![false; fsc.num_inputs()];
            for (name, &value) in ppi_names.iter().zip(&candidate) {
                if let Some(net) = fsc.find_net(name) {
                    if let Some(position) = fsc.input_position(net) {
                        fsc_pattern[position] = value;
                    }
                }
            }
            if fsc_sim.run(&fsc_pattern)? != oracle_out {
                found.push(
                    ppi_names
                        .iter()
                        .cloned()
                        .zip(candidate.iter().copied())
                        .collect(),
                );
            }
        }
    }
    Ok(found)
}

/// Collects (up to `max_cones`) nets of the subcircuit whose fan-in support
/// consists of protected primary inputs only — the paper's "logic cones of
/// the locked subcircuit whose inputs are the protected primary inputs".
/// Cones whose consumers also depend on non-protected signals come first
/// (they are the frontier of the embedded FSC implicants); ties are broken
/// towards wide support (more specified pattern bits) and then towards small
/// cones — the hard-wired implicants of the FSC are shallow comparator-like
/// structures, so "wide support carried by few gates" is exactly their
/// signature and puts them ahead of ordinary host logic.
fn ppi_only_cones(
    subcircuit: &Circuit,
    ppi_index: &BTreeMap<&str, usize>,
    max_cones: usize,
) -> Vec<NetId> {
    let fanout = fanout_map(subcircuit);
    let mut ppi_only: HashSet<NetId> = HashSet::new();
    let mut support_size: HashMap<NetId, usize> = HashMap::new();
    let mut cone_size: HashMap<NetId, usize> = HashMap::new();
    for (_, gate) in subcircuit.gates() {
        let sup = support(subcircuit, &[gate.output]);
        let all_ppi = !sup.is_empty()
            && sup
                .iter()
                .all(|&n| ppi_index.contains_key(subcircuit.net_name(n)));
        if all_ppi {
            ppi_only.insert(gate.output);
            support_size.insert(gate.output, sup.len());
            cone_size.insert(
                gate.output,
                kratt_netlist::analysis::fanin_cone_gates(subcircuit, &[gate.output]).len(),
            );
        }
    }
    let is_frontier = |net: NetId| -> bool {
        match fanout.get(&net) {
            None => true,
            Some(list) => list
                .iter()
                .any(|&gid| !ppi_only.contains(&subcircuit.gate(gid).output)),
        }
    };
    let mut cones: Vec<NetId> = ppi_only.iter().copied().collect();
    cones.sort_by_key(|&net| {
        (
            std::cmp::Reverse(usize::from(is_frontier(net))),
            std::cmp::Reverse(support_size.get(&net).copied().unwrap_or(0)),
            cone_size.get(&net).copied().unwrap_or(usize::MAX),
            net,
        )
    });
    cones.truncate(max_cones);
    cones
}

/// Tests one fully specified protected-input candidate: the oracle (original
/// IC) and the locked netlist with the key tied to the candidate must agree
/// on the outputs when all other primary inputs are 0.
fn candidate_matches(
    artifacts: &RemovalArtifacts,
    ppi_names: &[String],
    candidate: &[bool],
    locked: &Circuit,
    locked_sim: &Simulator<'_>,
    oracle: &Oracle,
) -> Result<bool, KrattError> {
    // Oracle query: protected inputs = candidate, everything else 0.
    let assignment: Vec<(&str, bool)> = ppi_names
        .iter()
        .map(String::as_str)
        .zip(candidate.iter().copied())
        .collect();
    let oracle_out = oracle
        .query_by_name(&assignment)
        .map_err(KrattError::Netlist)?;

    // Locked netlist: same primary inputs, key inputs tied through the
    // PPI ↔ key association.
    let mut pattern = vec![false; locked.num_inputs()];
    for (name, &value) in ppi_names.iter().zip(candidate) {
        if let Some(net) = locked.find_net(name) {
            if let Some(position) = locked.input_position(net) {
                pattern[position] = value;
            }
        }
    }
    for (ppi, keys) in &artifacts.associations {
        let Some(ppi_position) = ppi_names.iter().position(|n| n == ppi) else {
            continue;
        };
        for key in keys {
            if let Some(net) = locked.find_net(key) {
                if let Some(position) = locked.input_position(net) {
                    pattern[position] = candidate[ppi_position];
                }
            }
        }
    }
    let locked_out = locked_sim.run(&pattern)?;

    // Compare only the outputs the oracle also has (same names/order since
    // locking preserves the output list).
    Ok(locked_out == oracle_out)
}

/// Maps a protected-input pattern to a key guess through the association.
fn pattern_to_key_guess(
    artifacts: &RemovalArtifacts,
    ppi_names: &[String],
    candidate: &[bool],
) -> KeyGuess {
    let mut guess = KeyGuess::new();
    for (ppi, keys) in &artifacts.associations {
        if let Some(position) = ppi_names.iter().position(|n| n == ppi) {
            for key in keys {
                guess.set(key.clone(), candidate[position]);
            }
        }
    }
    guess
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::extract_locked_subcircuit;
    use crate::removal::remove_locking_unit;
    use kratt_attacks::score_guess;
    use kratt_benchmarks::arith::ripple_carry_adder;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{Cac, LockingTechnique, SecretKey, SfllHd, TtLock};

    fn run_structural(
        locked: &kratt_locking::LockedCircuit,
        original: &Circuit,
    ) -> StructuralOutcome {
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        structural_analysis(
            &artifacts,
            &subcircuit,
            &locked.circuit,
            &oracle,
            &StructuralAnalysisConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn ttlock_secret_is_recovered_on_the_running_example() {
        let original = majority();
        let secret = SecretKey::from_u64(0b010, 3);
        let locked = TtLock::new(3).lock(&original, &secret).unwrap();
        match run_structural(&locked, &original) {
            StructuralOutcome::Key {
                guess,
                protected_pattern,
            } => {
                assert_eq!(score_guess(&locked, &guess), (3, 3));
                assert_eq!(protected_pattern.len(), 3);
            }
            other => panic!("expected the key, got {other:?}"),
        }
    }

    #[test]
    fn cac_secret_is_recovered() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b10110, 5);
        let locked = Cac::new(5).lock(&original, &secret).unwrap();
        match run_structural(&locked, &original) {
            StructuralOutcome::Key { guess, .. } => {
                assert_eq!(score_guess(&locked, &guess), (5, 5));
            }
            other => panic!("expected the key, got {other:?}"),
        }
    }

    #[test]
    fn sfll_hd0_secret_is_recovered() {
        // SFLL-HD with distance 0 protects a single pattern like TTLock but
        // builds its restore unit from a popcount comparator, so it exercises
        // a structurally different cone in the analysis. (Distance > 0
        // restore units are not key-equality comparators and are out of
        // KRATT's scope, per the paper's §V discussion.)
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b0111, 4);
        let locked = SfllHd::new(4, 0).lock(&original, &secret).unwrap();
        match run_structural(&locked, &original) {
            StructuralOutcome::Key { guess, .. } => {
                let key_names = locked.circuit.key_input_names();
                let key = guess.to_secret_key(&key_names);
                let unlocked = locked.apply_key(&key).unwrap();
                assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
            }
            other => panic!("expected a key, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_reports_out_of_time() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1100, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let config = StructuralAnalysisConfig {
            max_oracle_queries: 0,
            ..Default::default()
        };
        assert_eq!(
            structural_analysis(&artifacts, &subcircuit, &locked.circuit, &oracle, &config)
                .unwrap(),
            StructuralOutcome::OutOfTime
        );
    }
}
