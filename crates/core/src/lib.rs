//! KRATT: a QBF-assisted removal and structural analysis attack against
//! logic locking (Aksoy, Yasin & Pagliarini, DATE 2024).
//!
//! KRATT attacks state-of-the-art SAT-resilient locking techniques — single
//! flip locking techniques (SFLTs: SARLock, Anti-SAT, CAS-Lock, Gen-Anti-SAT)
//! and double flip locking techniques (DFLTs: TTLock, CAC, SFLL-HD) — under
//! both the oracle-less (OL) and oracle-guided (OG) threat models. Its flow
//! (the paper's Fig. 4) is implemented module by module:
//!
//! 1. [`removal`] — *logic removal*: identify the critical signal `cs1`,
//!    extract the locking/restore unit, build the unit-stripped circuit and
//!    associate every protected primary input with its key input(s).
//! 2. [`qbf_attack`] — *QBF*: solve `∃K ∀PPI unit(PPI, K) = const` with the
//!    CEGAR 2QBF engine; a witness is the secret key of an SFLT.
//! 3. [`classify`] — check with SAT whether the unit is a (complemented)
//!    PPI↔key comparator, i.e. the restore unit of a DFLT.
//! 4. [`extraction`] — *logic extraction*: the locked subcircuit spanned by
//!    the primary outputs the critical signal reaches.
//! 5. [`ol`] — OL path: *circuit modification* plus the SCOPE attack on the
//!    modified unit/subcircuit.
//! 6. [`og`] — OG path: *structural analysis* of the PPI-only logic cones
//!    and oracle-driven exhaustive search over the promising patterns.
//! 7. [`reconstruct`] — the paper's §V discussion: rebuild the original
//!    circuit from the FSC once the protected pattern is known.
//!
//! The [`KrattAttack`] orchestrator strings these together exactly as the
//! flow chart does.
//!
//! # Example
//!
//! ```
//! use kratt::{KrattAttack, ThreatOutcome};
//! use kratt_locking::{LockingTechnique, SarLock, SecretKey};
//! use kratt_netlist::{Circuit, GateType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example: a majority circuit locked by SARLock.
//! let mut c = Circuit::new("majority");
//! let x1 = c.add_input("x1")?;
//! let x2 = c.add_input("x2")?;
//! let x3 = c.add_input("x3")?;
//! let a = c.add_gate(GateType::And, "a", &[x1, x2])?;
//! let b = c.add_gate(GateType::And, "b", &[x1, x3])?;
//! let d = c.add_gate(GateType::And, "d", &[x2, x3])?;
//! let f = c.add_gate(GateType::Or, "f", &[a, b, d])?;
//! c.mark_output(f);
//!
//! let secret = SecretKey::from_u64(0b100, 3);
//! let locked = SarLock::new(3).lock(&c, &secret)?;
//!
//! let report = KrattAttack::new().attack_oracle_less(&locked.circuit)?;
//! match report.outcome {
//!     ThreatOutcome::ExactKey(key) => assert_eq!(key.to_u64(), 0b100),
//!     other => panic!("QBF should pin the SARLock key, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod attack;
pub mod classify;
pub mod cli;
pub mod error;
pub mod extraction;
pub mod og;
pub mod ol;
pub mod qbf_attack;
pub mod reconstruct;
pub mod removal;

pub use attack::{
    attack_registry, KrattAttack, KrattConfig, KrattPath, KrattReport, ThreatOutcome,
};
pub use classify::UnitClass;
pub use error::KrattError;
pub use removal::RemovalArtifacts;
