//! Error type for the KRATT pipeline.

use kratt_attacks::AttackError;
use kratt_locking::LockError;
use kratt_netlist::NetlistError;
use std::fmt;

/// Errors the KRATT pipeline can report. Resource exhaustion is *not* an
/// error — it is part of the report types, mirroring the paper's "OoT" cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KrattError {
    /// The netlist has no key inputs.
    NoKeyInputs,
    /// The key inputs do not converge into a single critical signal, so the
    /// removal-based pipeline does not apply (e.g. random XOR locking).
    NoCriticalSignal,
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// A baseline-attack component failed.
    Attack(AttackError),
    /// A locking helper (key application) failed.
    Lock(LockError),
}

impl fmt::Display for KrattError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KrattError::NoKeyInputs => write!(f, "locked netlist has no key inputs"),
            KrattError::NoCriticalSignal => {
                write!(
                    f,
                    "key inputs do not converge into a single critical signal"
                )
            }
            KrattError::Netlist(e) => write!(f, "netlist error: {e}"),
            KrattError::Attack(e) => write!(f, "attack component error: {e}"),
            KrattError::Lock(e) => write!(f, "locking error: {e}"),
        }
    }
}

impl std::error::Error for KrattError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KrattError::Netlist(e) => Some(e),
            KrattError::Attack(e) => Some(e),
            KrattError::Lock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for KrattError {
    fn from(e: NetlistError) -> Self {
        KrattError::Netlist(e)
    }
}

impl From<AttackError> for KrattError {
    fn from(e: AttackError) -> Self {
        KrattError::Attack(e)
    }
}

impl From<LockError> for KrattError {
    fn from(e: LockError) -> Self {
        KrattError::Lock(e)
    }
}

/// Lowers a pipeline error into the shared attack-API error type, so KRATT
/// can implement `kratt_attacks::Attack` (whose `execute` reports
/// [`AttackError`]).
impl From<KrattError> for AttackError {
    fn from(e: KrattError) -> Self {
        match e {
            KrattError::NoKeyInputs => AttackError::NoKeyInputs,
            KrattError::NoCriticalSignal => AttackError::NoCriticalSignal,
            KrattError::Netlist(e) => AttackError::Netlist(e),
            KrattError::Attack(e) => e,
            KrattError::Lock(e) => AttackError::Other(format!("locking error: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(KrattError::NoCriticalSignal
            .to_string()
            .contains("critical"));
        let e: KrattError = NetlistError::UnknownNet("n1".into()).into();
        assert!(e.to_string().contains("n1"));
        let e: KrattError = AttackError::NoKeyInputs.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: KrattError = LockError::NoOutputs.into();
        assert!(e.to_string().contains("output"));
    }
}
