//! Step 2 of the flow: the QBF formulation.
//!
//! The locking unit of an SFLT must output a constant for the secret key —
//! otherwise the locked circuit would corrupt some input pattern even when
//! unlocked. KRATT therefore asks the 2QBF question
//! `∃K ∀PPI unit(PPI, K) = 0` (and, if that fails, `= 1`): a witness of
//! either problem is a key under which the unit never corrupts, i.e. a
//! correct key.

use crate::{KrattError, RemovalArtifacts};
use kratt_attacks::KeyGuess;
use kratt_qbf::{ExistsForallSolver, MultiTargetResult, QbfConfig};

/// Result of the QBF step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbfStepOutcome {
    /// A key stucking the unit at the given constant was found.
    Key {
        /// The recovered key bits by key-input name.
        guess: KeyGuess,
        /// The constant value the unit takes under that key.
        constant: bool,
    },
    /// Neither constant is achievable for all protected inputs: the unit is
    /// not an SFLT locking unit (it is a DFLT restore unit or something
    /// else), so the attack continues with the structural paths.
    NoConstantKey,
    /// The QBF budget was exhausted before an answer was found.
    Unknown,
}

/// Runs the QBF formulation on the extracted unit: one
/// [`ExistsForallSolver`] instance asks "is the unit stuck at 0 — and if
/// not, at 1?" for both constants over a *shared* incremental solver pair
/// (the key-confirmation CEGAR state, with all learned clauses, carries
/// over from the first constant to the second instead of re-encoding the
/// unit per constant). The second return value is the total number of CEGAR
/// refinement iterations spent across both constants (0 when the BDD fast
/// path decided the instances).
///
/// # Errors
///
/// This step itself does not fail; the `Result` is for interface consistency
/// with the other pipeline steps (future unit encodings may allocate).
pub fn solve_unit_qbf(
    artifacts: &RemovalArtifacts,
    config: &QbfConfig,
) -> Result<(QbfStepOutcome, usize), KrattError> {
    let unit = &artifacts.unit;
    let keys = unit.key_inputs();
    let universal = unit.data_inputs();
    let output = unit.outputs()[0];
    let solver =
        ExistsForallSolver::new(unit, &keys, &universal, output, false).with_config(config.clone());
    let (result, stats) = solver.solve_targets_with_stats(&[false, true]);
    let outcome = match result {
        MultiTargetResult::Sat { witness, target } => {
            let guess: KeyGuess = witness.into_iter().collect();
            QbfStepOutcome::Key {
                guess,
                constant: target,
            }
        }
        MultiTargetResult::Unsat => QbfStepOutcome::NoConstantKey,
        MultiTargetResult::Unknown => QbfStepOutcome::Unknown,
    };
    Ok((outcome, stats.iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::removal::remove_locking_unit;
    use kratt_attacks::score_guess;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{AntiSat, CasLock, LockingTechnique, SarLock, SecretKey, TtLock};

    #[test]
    fn sarlock_key_is_found_and_exact() {
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        match solve_unit_qbf(&artifacts, &QbfConfig::default()).unwrap().0 {
            QbfStepOutcome::Key { guess, constant } => {
                assert!(!constant, "SARLock's unit is stuck at 0 for the secret");
                assert_eq!(score_guess(&locked, &guess), (3, 3));
            }
            other => panic!("expected a key, got {other:?}"),
        }
    }

    #[test]
    fn anti_sat_and_cas_lock_keys_are_functionally_correct() {
        let original = majority();
        for (name, locked) in [
            (
                "anti-sat",
                AntiSat::new(6)
                    .lock(&original, &SecretKey::from_u64(0b011_010, 6))
                    .unwrap(),
            ),
            (
                "cas-lock",
                CasLock::new(6)
                    .lock(&original, &SecretKey::from_u64(0b100_110, 6))
                    .unwrap(),
            ),
        ] {
            let artifacts = remove_locking_unit(&locked.circuit).unwrap();
            match solve_unit_qbf(&artifacts, &QbfConfig::default()).unwrap().0 {
                QbfStepOutcome::Key { guess, .. } => {
                    // Anti-SAT has many correct keys; the witness must unlock
                    // the circuit even if it differs bitwise from the secret.
                    let key_names = locked.circuit.key_input_names();
                    let key = guess.to_secret_key(&key_names);
                    let unlocked = locked.apply_key(&key).unwrap();
                    assert!(
                        kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap(),
                        "{name}: QBF witness does not unlock the circuit"
                    );
                }
                other => panic!("{name}: expected a key, got {other:?}"),
            }
        }
    }

    #[test]
    fn ttlock_restore_unit_has_no_constant_key() {
        let original = majority();
        let locked = TtLock::new(3)
            .lock(&original, &SecretKey::from_u64(0b001, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        assert_eq!(
            solve_unit_qbf(&artifacts, &QbfConfig::default()).unwrap().0,
            QbfStepOutcome::NoConstantKey
        );
    }

    #[test]
    fn exhausted_budget_reports_unknown() {
        let original = majority();
        let locked = SarLock::new(3)
            .lock(&original, &SecretKey::from_u64(0b111, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let config = QbfConfig {
            max_iterations: 0,
            bdd_node_limit: 0,
            ..Default::default()
        };
        assert_eq!(
            solve_unit_qbf(&artifacts, &config).unwrap().0,
            QbfStepOutcome::Unknown
        );
    }
}
