//! Command-line front end for the attack suite, mirroring how the original
//! tool is driven: point it at a locked netlist (and optionally an oracle
//! netlist), pick an attack by registry name, get the recovered key.
//!
//! ```text
//! kratt --locked locked.bench                        # oracle-less KRATT attack
//! kratt --locked locked.v --oracle original.bench    # oracle-guided KRATT attack
//! kratt --locked locked.bench --oracle orig.bench --attack sat --json
//! kratt --locked locked.bench --qdimacs unit.qdimacs # also dump the QBF instance
//! kratt --locked locked.bench --oracle orig.bench \
//!       --reconstruct rebuilt.bench                  # §V original-circuit reconstruction
//! kratt --locked original.bench --scheme antisat:k=16,seed=7
//!                                                    # lock on the fly, attack, verify
//! kratt --campaign table3                            # preset campaign on Table-I hosts
//! kratt --list-attacks / --list-schemes              # enumerate both registries
//! kratt --locked locked.bench --lint                 # static lint instead of an attack
//! kratt --locked locked.bench --analyze unateness    # dump per-output dataflow facts
//! ```
//!
//! Netlist formats are chosen by file extension: `.v`/`.verilog` is parsed as
//! structural Verilog, everything else as ISCAS `.bench`.

use kratt::og::{recover_protected_patterns, StructuralAnalysisConfig};
use kratt::reconstruct::reconstruct_original_from_patterns;
use kratt::removal::remove_locking_unit;
use kratt_attacks::campaign::equivalent_to;
use kratt_attacks::{AttackOutcome, AttackRequest, Budget, CampaignHost, DipEngineKind, Oracle};
use kratt_dataflow::ternary::cofactors;
use kratt_dataflow::{
    lit_value, propagate, KeySupport, ObservabilityAnalysis, ProbabilityAnalysis, Ternary,
    Unateness, UnatenessAnalysis,
};
use kratt_locking::{scheme_registry, SchemeSpec};
use kratt_netlist::{bench, verilog, Aig, AigLit, Circuit};
use kratt_qbf::qdimacs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct CliOptions {
    locked: Option<PathBuf>,
    oracle: Option<PathBuf>,
    attack: String,
    engine: Option<String>,
    portfolio_members: Option<String>,
    scheme: Option<String>,
    campaign: Option<String>,
    list_attacks: bool,
    list_schemes: bool,
    qdimacs: Option<PathBuf>,
    reconstruct: Option<PathBuf>,
    time_limit: Option<u64>,
    lint: bool,
    analyze: Option<String>,
    list_domains: bool,
    json: bool,
    stream: bool,
    help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            locked: None,
            oracle: None,
            attack: "kratt".to_string(),
            engine: None,
            portfolio_members: None,
            scheme: None,
            campaign: None,
            list_attacks: false,
            list_schemes: false,
            qdimacs: None,
            reconstruct: None,
            time_limit: None,
            lint: false,
            analyze: None,
            list_domains: false,
            json: false,
            stream: false,
            help: false,
        }
    }
}

impl CliOptions {
    /// Whether the invocation runs without a `--locked` netlist.
    fn is_standalone(&self) -> bool {
        self.help
            || self.list_attacks
            || self.list_schemes
            || self.list_domains
            || self.campaign.is_some()
    }
}

const USAGE: &str = "\
KRATT — QBF-assisted removal and structural analysis attack against logic locking

USAGE:
    kratt --locked <NETLIST> [OPTIONS]
    kratt --campaign <PRESET|SPEC-FILE> | --list-attacks | --list-schemes

OPTIONS:
    --locked <PATH>        locked netlist (.bench, or .v for structural Verilog); with
                           --scheme, the *original* netlist to lock on the fly  [required]
    --oracle <PATH>        original netlist used as the functional-IC oracle (enables the
                           oracle-guided threat model)
    --attack <NAME>        attack to run, resolved through the registry: kratt (default),
                           sat, double-dip, appsat, fall, removal, scope, portfolio
                           (race several engines, first SAT-verified exact key wins)
    --engine <gate|aig>    DIP-engine of the SAT-family attacks (sat, double-dip, appsat):
                           aig (default) encodes the CEGAR miter through the shared
                           structurally-hashed AIG, gate keeps the legacy dual gate-level
                           encode for A/B comparison (sets KRATT_DIP_ENGINE)
    --portfolio-members <LIST>
                           comma-separated member engines of --attack portfolio
                           (default kratt,sat,appsat; sets KRATT_PORTFOLIO_MEMBERS)
    --scheme <SPEC>        lock the input with a scheme spec (e.g. antisat:k=16,seed=7),
                           attack the planted instance oracle-guided, and verify any
                           claimed key against the planted secret
    --campaign <VALUE>     run a campaign on the Table-I hosts: a preset name (table3,
                           smoke) or a path to a campaign spec file (scheme/host/attack/
                           budget-secs/workers/journal directives, one per line);
                           KRATT_SCALE scales the hosts (default 0.05)
    --stream               with --campaign: print each verdict cell as a JSON line the
                           moment it commits, closed by one summary record
    --list-attacks         print the attack registry and exit
    --list-schemes         print the scheme registry (with spec grammar) and exit
    --json                 print the attack run as a machine-readable JSON report
    --qdimacs <PATH>       write the extracted locking unit's \u{2203}K \u{2200}PPI instance in QDIMACS
    --reconstruct <PATH>   recover the protected patterns with the oracle and write the
                           reconstructed original circuit as .bench (requires --oracle)
    --lint                 run the kratt-lint static rule catalogue on the netlist instead
                           of an attack and exit nonzero on error-level findings; with
                           --oracle, also check interface drift against that original
    --analyze <DOMAIN>     dump per-output facts from one kratt-dataflow abstract domain
                           instead of running an attack: ternary, support, unateness,
                           probability, odc
    --list-domains         print the analysis domains and exit
    --time-limit <SECS>    shared wall-clock budget of the whole attack (default 60)
    --help                 print this message
";

/// Parses the argument list (everything after the program name).
fn parse_args<I, S>(args: I) -> Result<CliOptions, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut options = CliOptions::default();
    let mut iter = args.into_iter().map(Into::into);
    while let Some(flag) = iter.next() {
        let mut path_value = |name: &str| -> Result<PathBuf, String> {
            iter.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--locked" => options.locked = Some(path_value("--locked")?),
            "--oracle" => options.oracle = Some(path_value("--oracle")?),
            "--attack" => {
                options.attack = iter
                    .next()
                    .ok_or("--attack expects a registry name".to_string())?;
            }
            "--engine" => {
                let value = iter
                    .next()
                    .ok_or("--engine expects gate or aig".to_string())?;
                if DipEngineKind::parse(&value).is_none() {
                    return Err(format!("--engine expects gate or aig, got `{value}`"));
                }
                options.engine = Some(value);
            }
            "--portfolio-members" => {
                let value = iter
                    .next()
                    .ok_or("--portfolio-members expects a comma-separated list".to_string())?;
                if kratt_attacks::portfolio::parse_member_spec(&value).is_empty() {
                    return Err(format!(
                        "--portfolio-members expects registry names like kratt,sat, got `{value}`"
                    ));
                }
                options.portfolio_members = Some(value);
            }
            "--scheme" => {
                options.scheme = Some(iter.next().ok_or(
                    "--scheme expects a spec like technique:k=<bits>,seed=<n>".to_string(),
                )?);
            }
            "--campaign" => {
                options.campaign = Some(
                    iter.next()
                        .ok_or("--campaign expects a preset name or spec file".to_string())?,
                );
            }
            "--stream" => options.stream = true,
            "--list-attacks" => options.list_attacks = true,
            "--list-schemes" => options.list_schemes = true,
            "--qdimacs" => options.qdimacs = Some(path_value("--qdimacs")?),
            "--reconstruct" => options.reconstruct = Some(path_value("--reconstruct")?),
            "--time-limit" => {
                let value = iter.next().ok_or("--time-limit expects a value")?;
                let seconds: u64 = value.parse().map_err(|_| {
                    format!("--time-limit expects a number of seconds, got `{value}`")
                })?;
                options.time_limit = Some(seconds);
            }
            "--lint" => options.lint = true,
            "--analyze" => {
                options.analyze =
                    Some(iter.next().ok_or(
                        "--analyze expects a domain name (see --list-domains)".to_string(),
                    )?);
            }
            "--list-domains" => options.list_domains = true,
            "--json" => options.json = true,
            "--help" | "-h" => options.help = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !options.is_standalone() && options.locked.is_none() {
        return Err("--locked <NETLIST> is required".to_string());
    }
    if options.scheme.is_some() && options.locked.is_none() {
        return Err("--scheme needs --locked <NETLIST> (the original design to lock)".to_string());
    }
    if options.scheme.is_some() && options.oracle.is_some() {
        return Err(
            "--scheme locks the --locked netlist itself; it already serves as the oracle"
                .to_string(),
        );
    }
    if options.stream && options.campaign.is_none() {
        return Err("--stream streams campaign verdicts; it requires --campaign".to_string());
    }
    if options.reconstruct.is_some() && options.oracle.is_none() {
        return Err(
            "--reconstruct requires --oracle (the patterns are recovered with it)".to_string(),
        );
    }
    if options.lint
        && (options.scheme.is_some()
            || options.campaign.is_some()
            || options.qdimacs.is_some()
            || options.reconstruct.is_some())
    {
        return Err("--lint runs no attack; it combines only with --oracle and --json".to_string());
    }
    if options.analyze.is_some()
        && (options.lint
            || options.oracle.is_some()
            || options.scheme.is_some()
            || options.campaign.is_some()
            || options.qdimacs.is_some()
            || options.reconstruct.is_some())
    {
        return Err("--analyze runs no attack; it combines only with --json".to_string());
    }
    Ok(options)
}

/// Reads a netlist, dispatching on the file extension.
fn read_netlist(path: &Path) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let is_verilog = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.eq_ignore_ascii_case("v") || e.eq_ignore_ascii_case("verilog"))
        .unwrap_or(false);
    if is_verilog {
        verilog::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("locked");
        bench::parse(name, &text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The shared budget of the run: `--time-limit` replaces the default
/// one-minute wall clock, everything else stays at the defaults.
fn budget(time_limit: Option<u64>) -> Budget {
    match time_limit {
        Some(seconds) => Budget::with_time_limit(Duration::from_secs(seconds)),
        None => Budget::default(),
    }
}

/// The abstract domains `--analyze` can dump, with the one-line summaries
/// `--list-domains` prints.
const ANALYZE_DOMAINS: [(&str, &str); 5] = [
    (
        "ternary",
        "0/1/X constant propagation under each key-bit cofactor",
    ),
    (
        "support",
        "key-bit support and data dependence of every output",
    ),
    (
        "unateness",
        "structural polarity of every output in every key bit",
    ),
    (
        "probability",
        "signal probability of every output under uniform inputs",
    ),
    (
        "odc",
        "key logic made unobservable by each key-bit cofactor",
    ),
];

/// Prints the registries (`--list-attacks` / `--list-schemes` /
/// `--list-domains`).
fn list_registries(options: &CliOptions) {
    if options.list_attacks {
        println!("attacks (--attack <NAME>):");
        for name in kratt::attack_registry().names() {
            println!("    {name}");
        }
    }
    if options.list_schemes {
        let registry = scheme_registry();
        println!("schemes (--scheme <SPEC>, spec grammar: technique[:name=value,...]):");
        for name in registry.names() {
            println!(
                "    {name:<12} {}",
                registry.summary(name).unwrap_or_default()
            );
        }
        println!("    every technique also takes seed=<n> (secret-key derivation, default 0)");
    }
    if options.list_domains {
        println!("analysis domains (--analyze <DOMAIN>):");
        for (name, summary) in ANALYZE_DOMAINS {
            println!("    {name:<12} {summary}");
        }
    }
}

/// Runs a campaign (`--campaign <PRESET|SPEC-FILE>`) on the Table-I hosts.
/// Unlike the `kratt-bench` campaign binary this path skips the resynthesis
/// step (the CLI carries no synthesis dependency); `KRATT_SCALE` scales the
/// generated hosts.
fn run_campaign(options: &CliOptions, value: &str) -> Result<(), String> {
    let scale = std::env::var("KRATT_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05)
        .clamp(0.01, 1.0);
    let hosts: Vec<CampaignHost> = kratt_benchmarks::table1_circuits(scale)
        .into_iter()
        .map(|row| CampaignHost::new(row.name, row.circuit, row.key_bits))
        .collect();
    let budget = Budget::with_time_limit(Duration::from_secs(options.time_limit.unwrap_or(5)));
    let campaign = kratt::cli::resolve_campaign(value, hosts, budget)?;
    let report = kratt::cli::run_campaign_with_output(&campaign, options.stream)?;
    if !options.stream {
        if options.json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
    }
    let unverified = report.unverified_exact_claims();
    if unverified > 0 {
        return Err(format!(
            "{unverified} exact claim(s) failed verification against the planted secret"
        ));
    }
    Ok(())
}

/// Runs the static linter on the input netlist instead of an attack
/// (`--lint`). With `--oracle` the oracle netlist is treated as the
/// pre-locking original, which arms the interface-drift comparison and
/// the key-reachability rules against the right baseline. Error-level
/// findings make the run fail so scripts and CI can gate on them.
fn run_lint(options: &CliOptions) -> Result<(), String> {
    let path = options.locked.as_ref().expect("validated by parse_args");
    let circuit = read_netlist(path)?;
    let report = match &options.oracle {
        Some(oracle_path) => {
            let original = read_netlist(oracle_path)?;
            kratt_lint::lint_locked(&original, &circuit)
        }
        None => kratt_lint::lint_circuit(&circuit),
    };
    if options.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        return Err(format!(
            "lint found {} error-level diagnostic(s) in `{}`",
            report.count(kratt_lint::Severity::Error),
            report.subject
        ));
    }
    Ok(())
}

/// A JSON string literal with the two-character escapes and control-character
/// escapes applied (net names never need more).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The display glyph of a ternary value.
fn ternary_glyph(value: Ternary) -> &'static str {
    match value {
        Ternary::Zero => "0",
        Ternary::One => "1",
        Ternary::X => "X",
    }
}

/// The display name of a unateness class.
fn unateness_name(class: Unateness) -> &'static str {
    match class {
        Unateness::Independent => "independent",
        Unateness::Positive => "positive",
        Unateness::Negative => "negative",
        Unateness::Binate => "binate",
    }
}

/// Runs one abstract domain over the input netlist and dumps the per-output
/// facts (`--analyze <DOMAIN>`), as text or as one JSON object with
/// `--json`. Key inputs are recognised by the `keyinput*` convention, like
/// everywhere else in the suite.
fn run_analyze(options: &CliOptions, domain: &str) -> Result<(), String> {
    if !ANALYZE_DOMAINS.iter().any(|(name, _)| *name == domain) {
        return Err(format!(
            "unknown analysis domain `{domain}` (known domains: {})",
            ANALYZE_DOMAINS.map(|(name, _)| name).join(", ")
        ));
    }
    let path = options.locked.as_ref().expect("validated by parse_args");
    let circuit = read_netlist(path)?;
    let aig = Aig::from_circuit(&circuit).map_err(|e| e.to_string())?;
    let support = KeySupport::compute(&aig);
    let keys: Vec<(u32, String)> = support
        .keys()
        .map(|(node, name)| (node, name.to_string()))
        .collect();
    let outs: Vec<(&String, AigLit)> = aig
        .output_names()
        .iter()
        .zip(aig.outputs().iter().copied())
        .collect();
    let stats = aig.stats();
    if !options.json {
        println!("domain         : {domain}");
        println!("netlist        : {circuit}");
        println!(
            "aig            : {} inputs, {} outputs, {} ands, {} levels, max fanout {}",
            stats.inputs, stats.outputs, stats.ands, stats.levels, stats.max_fanout
        );
    }
    let mut rows: Vec<String> = Vec::new();
    match domain {
        "ternary" => {
            // One pair of cofactor runs per key bit, shared by every output.
            let runs: Vec<(Vec<Ternary>, Vec<Ternary>)> = keys
                .iter()
                .map(|&(node, _)| cofactors(&aig, node))
                .collect();
            let unpinned = propagate(&aig, &[]);
            for (oname, olit) in &outs {
                let free = lit_value(&unpinned, *olit);
                if options.json {
                    let pairs: Vec<String> = keys
                        .iter()
                        .zip(&runs)
                        .map(|((_, kname), (zero, one))| {
                            format!(
                                "{{\"key\":{},\"zero\":\"{}\",\"one\":\"{}\"}}",
                                json_string(kname),
                                ternary_glyph(lit_value(zero, *olit)),
                                ternary_glyph(lit_value(one, *olit))
                            )
                        })
                        .collect();
                    rows.push(format!(
                        "{{\"output\":{},\"unpinned\":\"{}\",\"cofactors\":[{}]}}",
                        json_string(oname),
                        ternary_glyph(free),
                        pairs.join(",")
                    ));
                } else {
                    println!(
                        "output `{oname}` = {} with every input X",
                        ternary_glyph(free)
                    );
                    for ((_, kname), (zero, one)) in keys.iter().zip(&runs) {
                        let v0 = lit_value(zero, *olit);
                        let v1 = lit_value(one, *olit);
                        // Only the constant-bearing cofactors are facts worth
                        // a line; the JSON form carries the full table.
                        if v0.is_constant() || v1.is_constant() {
                            println!(
                                "    {kname}=0 -> {}, {kname}=1 -> {}",
                                ternary_glyph(v0),
                                ternary_glyph(v1)
                            );
                        }
                    }
                }
            }
        }
        "support" => {
            for (oname, olit) in &outs {
                let deps = support.deps(olit.node());
                let names: Vec<&str> = keys
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| support.depends_on(olit.node(), k))
                    .map(|(_, (_, name))| name.as_str())
                    .collect();
                if options.json {
                    let list: Vec<String> = names.iter().map(|n| json_string(n)).collect();
                    rows.push(format!(
                        "{{\"output\":{},\"keys\":[{}],\"data\":{}}}",
                        json_string(oname),
                        list.join(","),
                        deps.data
                    ));
                } else {
                    let kind = if deps.data {
                        "data-dependent"
                    } else if names.is_empty() {
                        "constant (no input reaches it)"
                    } else {
                        "key-only"
                    };
                    println!(
                        "output `{oname}`: {} of {} key bits [{}], {kind}",
                        names.len(),
                        keys.len(),
                        names.join(", ")
                    );
                }
            }
        }
        "unateness" => {
            let unate = UnatenessAnalysis::compute(&aig);
            for (oname, olit) in &outs {
                let classes: Vec<(&str, Unateness)> = keys
                    .iter()
                    .enumerate()
                    .map(|(k, (_, name))| (name.as_str(), unate.of_lit(*olit, k)))
                    .collect();
                if options.json {
                    let list: Vec<String> = classes
                        .iter()
                        .map(|(name, class)| {
                            format!(
                                "{{\"key\":{},\"class\":\"{}\"}}",
                                json_string(name),
                                unateness_name(*class)
                            )
                        })
                        .collect();
                    rows.push(format!(
                        "{{\"output\":{},\"unateness\":[{}]}}",
                        json_string(oname),
                        list.join(",")
                    ));
                } else {
                    let list: Vec<String> = classes
                        .iter()
                        .map(|(name, class)| format!("{name}={}", unateness_name(*class)))
                        .collect();
                    println!("output `{oname}`: {}", list.join(", "));
                }
            }
        }
        "probability" => {
            let p = ProbabilityAnalysis::compute(&aig);
            for (oname, olit) in &outs {
                let value = p.of_lit(*olit);
                if options.json {
                    rows.push(format!(
                        "{{\"output\":{},\"probability\":{value:e}}}",
                        json_string(oname)
                    ));
                } else {
                    println!("output `{oname}`: p(1) = {value:.3e} under uniform inputs");
                }
            }
        }
        "odc" => {
            // Per key-bit cofactor: which *other* key inputs no output can
            // observe any more — removal-attack material when a bit masks
            // them under both polarities.
            for (k, (node, kname)) in keys.iter().enumerate() {
                for value in [false, true] {
                    let analysis = ObservabilityAnalysis::compute(&aig, &[(*node, value)]);
                    let masked: Vec<&str> = keys
                        .iter()
                        .enumerate()
                        .filter(|&(j, (other, _))| j != k && !analysis.is_observable(*other))
                        .map(|(_, (_, name))| name.as_str())
                        .collect();
                    if options.json {
                        let list: Vec<String> = masked.iter().map(|n| json_string(n)).collect();
                        rows.push(format!(
                            "{{\"key\":{},\"value\":{},\"masked\":[{}]}}",
                            json_string(kname),
                            u8::from(value),
                            list.join(",")
                        ));
                    } else if masked.is_empty() {
                        println!("{kname}={} masks no other key input", u8::from(value));
                    } else {
                        println!("{kname}={} masks [{}]", u8::from(value), masked.join(", "));
                    }
                }
            }
        }
        _ => unreachable!("domain validated above"),
    }
    if options.json {
        let field = if domain == "odc" {
            "cofactors"
        } else {
            "outputs"
        };
        println!(
            "{{\"domain\":\"{domain}\",\"subject\":{},\"keys\":{},\"aig\":{{\"inputs\":{},\
             \"outputs\":{},\"ands\":{},\"levels\":{},\"max_fanout\":{}}},\"{field}\":[{}]}}",
            json_string(circuit.name()),
            keys.len(),
            stats.inputs,
            stats.outputs,
            stats.ands,
            stats.levels,
            stats.max_fanout,
            rows.join(",")
        );
    }
    Ok(())
}

fn run(options: &CliOptions) -> Result<(), String> {
    let locked_path = options.locked.as_ref().expect("validated by parse_args");
    let input = read_netlist(locked_path)?;
    let quiet = options.json;

    // --scheme: the input is the original design; lock it on the fly from
    // the spec, keep the planted ground truth for post-attack verification
    // and use the original itself as the oracle.
    let planted = match &options.scheme {
        Some(text) => {
            let spec: SchemeSpec = text.parse().map_err(|e| format!("--scheme: {e}"))?;
            let locked = scheme_registry()
                .lock(&spec, &input)
                .map_err(|e| format!("--scheme {spec}: {e}"))?;
            Some((spec, locked))
        }
        None => None,
    };
    let locked = match &planted {
        Some((spec, locked)) => {
            if !quiet {
                println!("scheme         : {spec}");
                println!("planted secret : {}", locked.secret.to_hex());
            }
            locked.circuit.clone()
        }
        None => input.clone(),
    };
    if !quiet {
        println!("locked netlist : {locked}");
    }
    let key_names = kratt_attacks::key_input_names(&locked);
    if key_names.is_empty() {
        return Err("the locked netlist has no `keyinput*` primary inputs".to_string());
    }

    if let Some(path) = &options.qdimacs {
        let artifacts = remove_locking_unit(&locked).map_err(|e| e.to_string())?;
        let unit = &artifacts.unit;
        let text = qdimacs::export(
            unit,
            &unit.key_inputs(),
            &unit.data_inputs(),
            unit.outputs()[0],
            false,
        );
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        if !quiet {
            println!("qbf instance   : written to {}", path.display());
        }
    }

    let registry = kratt::attack_registry();
    let attack = registry
        .build(&options.attack)
        .map_err(|e| format!("{e} (known attacks: {})", registry.names().join(", ")))?;
    let oracle = match (&options.oracle, &planted) {
        // --scheme runs oracle-guided against the design it just locked.
        (None, Some(_)) => Some(Oracle::new(input.clone()).map_err(|e| e.to_string())?),
        (None, None) => None,
        (Some(oracle_path), _) => {
            let original = read_netlist(oracle_path)?;
            Some(Oracle::new(original).map_err(|e| e.to_string())?)
        }
    };
    let request = AttackRequest {
        locked: &locked,
        oracle: oracle.as_ref(),
        budget: budget(options.time_limit),
        cancel: None,
    };
    let report = attack.execute(&request).map_err(|e| e.to_string())?;

    // Close the loop: any exact key claimed against a planted instance is
    // verified against the ground truth before it is reported.
    let verdict = planted
        .as_ref()
        .map(|(_, locked_instance)| match report.outcome.exact_key() {
            Some(key) => match locked_instance.apply_key(key) {
                Ok(unlocked) => match equivalent_to(&input, &unlocked) {
                    Ok(true) => "verified",
                    Ok(false) => "REFUTED",
                    // Inconclusive is never a confirmation — but it is not
                    // a refutation either.
                    Err(_) => "UNVERIFIED",
                },
                Err(_) => "REFUTED",
            },
            None => "no exact claim",
        });

    if options.json {
        match verdict {
            Some(verdict) => {
                let (spec, locked_instance) = planted.as_ref().expect("verdict implies planted");
                println!(
                    "{{\"scheme\":\"{spec}\",\"planted_key\":\"{}\",\"verdict\":\"{verdict}\",\"run\":{}}}",
                    locked_instance.secret.to_hex(),
                    report.to_json()
                );
            }
            None => println!("{}", report.to_json()),
        }
    } else {
        println!("attack         : {}", report.attack);
        println!("threat model   : {}", report.threat_model);
        println!("runtime        : {:.3} s", report.runtime.as_secs_f64());
        if let Some(oracle) = &oracle {
            println!("oracle queries : {}", oracle.queries());
        }
        for step in &report.steps {
            println!(
                "    step {:<32} {:.3} s",
                step.name,
                step.duration.as_secs_f64()
            );
        }
        match &report.outcome {
            AttackOutcome::ExactKey(key) => {
                println!(
                    "secret key     : {}  (bits {key}, msb = {}, lsb = {})",
                    key.to_hex(),
                    key_names.last().unwrap(),
                    key_names[0]
                );
            }
            AttackOutcome::PartialGuess(guess) => {
                println!(
                    "partial guess  : {} of {} key bits deciphered",
                    guess.deciphered(),
                    key_names.len()
                );
                let mut names: Vec<&String> = guess.bits.keys().collect();
                names.sort();
                for name in names {
                    println!("    {name} = {}", u8::from(guess.bits[name]));
                }
            }
            AttackOutcome::RecoveredCircuit(circuit) => {
                println!("recovered      : {circuit} (key-less removal)");
            }
            AttackOutcome::OutOfBudget => println!("outcome        : budget exhausted (OoT)"),
        }
        if let Some(verdict) = verdict {
            println!("verdict        : {verdict} (claim checked against the planted secret)");
        }
    }

    if let Some(path) = &options.reconstruct {
        let original = read_netlist(options.oracle.as_ref().expect("validated"))?;
        let oracle = Oracle::new(original).map_err(|e| e.to_string())?;
        let artifacts = remove_locking_unit(&locked).map_err(|e| e.to_string())?;
        let subcircuit =
            kratt::extraction::extract_locked_subcircuit(&artifacts).map_err(|e| e.to_string())?;
        let patterns = recover_protected_patterns(
            &artifacts,
            &subcircuit,
            &oracle,
            &StructuralAnalysisConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        if !quiet {
            println!("protected pats : {} recovered", patterns.len());
        }
        let rebuilt =
            reconstruct_original_from_patterns(&artifacts, &patterns).map_err(|e| e.to_string())?;
        let text = bench::write(&rebuilt).map_err(|e| e.to_string())?;
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        if !quiet {
            println!("reconstruction : written to {}", path.display());
        }
    }
    // The --scheme contract matches the campaign paths: an exact claim that
    // did not verify against the planted secret is a failing exit, so
    // scripts and CI can gate on it. (Printed output above still carries
    // the full report.)
    match verdict {
        Some("REFUTED") => Err("the claimed key was refuted against the planted secret".into()),
        Some("UNVERIFIED") => {
            Err("the claimed key could not be verified against the planted secret".into())
        }
        _ => Ok(()),
    }
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if options.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // SAT-family attacks pick the DIP engine up from the environment at
    // construction time, so one flag covers direct runs and campaigns alike.
    if let Some(engine) = &options.engine {
        std::env::set_var("KRATT_DIP_ENGINE", engine);
    }
    // Same pattern for the portfolio member list — but validated here,
    // because the registry constructs the portfolio eagerly and an unknown
    // member would otherwise surface as a panic instead of a usage error.
    if let Some(members) = &options.portfolio_members {
        let registry = kratt::attack_registry();
        for name in kratt_attacks::portfolio::parse_member_spec(members) {
            if name == "portfolio" || !registry.contains(&name) {
                eprintln!(
                    "error: --portfolio-members: `{name}` is not a raceable attack \
                     (members are non-portfolio registry names: kratt, sat, double-dip, \
                     appsat, fall, removal, scope)"
                );
                return ExitCode::from(2);
            }
        }
        std::env::set_var("KRATT_PORTFOLIO_MEMBERS", members);
    }
    if options.list_attacks || options.list_schemes || options.list_domains {
        list_registries(&options);
        return ExitCode::SUCCESS;
    }
    let result = if options.lint {
        run_lint(&options)
    } else if let Some(domain) = options.analyze.clone() {
        run_analyze(&options, &domain)
    } else {
        match &options.campaign {
            Some(preset) => run_campaign(&options, preset),
            None => run(&options),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_command_line() {
        let options = parse_args([
            "--locked",
            "locked.bench",
            "--oracle",
            "orig.v",
            "--attack",
            "sat",
            "--json",
            "--qdimacs",
            "unit.qdimacs",
            "--reconstruct",
            "rebuilt.bench",
            "--time-limit",
            "30",
        ])
        .unwrap();
        assert_eq!(options.locked, Some(PathBuf::from("locked.bench")));
        assert_eq!(options.oracle, Some(PathBuf::from("orig.v")));
        assert_eq!(options.attack, "sat");
        assert!(options.json);
        assert_eq!(options.qdimacs, Some(PathBuf::from("unit.qdimacs")));
        assert_eq!(options.reconstruct, Some(PathBuf::from("rebuilt.bench")));
        assert_eq!(options.time_limit, Some(30));
        assert!(!options.help);
    }

    #[test]
    fn attack_defaults_to_kratt() {
        let options = parse_args(["--locked", "l.bench"]).unwrap();
        assert_eq!(options.attack, "kratt");
        assert_eq!(options.engine, None);
        assert!(!options.json);
    }

    #[test]
    fn engine_flag_parses_and_validates() {
        for engine in ["gate", "aig"] {
            let options = parse_args(["--locked", "l.bench", "--engine", engine]).unwrap();
            assert_eq!(options.engine.as_deref(), Some(engine));
            assert!(DipEngineKind::parse(engine).is_some());
        }
        let message = parse_args(["--locked", "l.bench", "--engine", "cnf"]).unwrap_err();
        assert!(message.contains("gate or aig"), "{message}");
        assert!(parse_args(["--locked", "l.bench", "--engine"]).is_err());
        assert!(USAGE.contains("--engine"), "usage must document --engine");
    }

    #[test]
    fn missing_locked_netlist_is_rejected() {
        assert!(parse_args(["--oracle", "orig.bench"]).is_err());
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn reconstruct_requires_an_oracle() {
        let result = parse_args(["--locked", "l.bench", "--reconstruct", "out.bench"]);
        assert!(result.unwrap_err().contains("--oracle"));
    }

    #[test]
    fn unknown_flags_and_bad_numbers_are_rejected() {
        assert!(parse_args(["--locked", "l.bench", "--frobnicate"]).is_err());
        assert!(parse_args(["--locked", "l.bench", "--time-limit", "soon"]).is_err());
        assert!(parse_args(["--locked", "l.bench", "--attack"]).is_err());
        assert!(parse_args(["--locked"]).is_err());
    }

    #[test]
    fn help_short_circuits_validation() {
        let options = parse_args(["--help"]).unwrap();
        assert!(options.help);
    }

    #[test]
    fn scheme_campaign_and_list_flags_parse() {
        let options = parse_args(["--locked", "orig.bench", "--scheme", "antisat:k=16"]).unwrap();
        assert_eq!(options.scheme.as_deref(), Some("antisat:k=16"));

        // The standalone modes need no --locked netlist.
        let options = parse_args(["--campaign", "table3"]).unwrap();
        assert_eq!(options.campaign.as_deref(), Some("table3"));
        assert!(options.is_standalone());
        assert!(
            parse_args(["--campaign", "smoke", "--stream"])
                .unwrap()
                .stream
        );
        // --stream is a campaign output mode; alone it is an error.
        assert!(parse_args(["--locked", "l.bench", "--stream"]).is_err());
        assert!(parse_args(["--list-attacks"]).unwrap().list_attacks);
        assert!(parse_args(["--list-schemes"]).unwrap().list_schemes);

        // --scheme still needs an input design and supplies its own oracle.
        assert!(parse_args(["--scheme", "antisat:k=16"]).is_err());
        assert!(parse_args([
            "--locked",
            "orig.bench",
            "--scheme",
            "antisat:k=16",
            "--oracle",
            "orig.bench"
        ])
        .is_err());
        assert!(parse_args(["--campaign"]).is_err());
    }

    #[test]
    fn usage_documents_every_scheme_in_the_registry() {
        let registry = scheme_registry();
        for name in ["antisat", "sarlock", "ttlock"] {
            assert!(registry.contains(name), "`{name}` must be registered");
        }
        for flag in [
            "--scheme",
            "--campaign",
            "--list-attacks",
            "--list-schemes",
            "--lint",
        ] {
            assert!(USAGE.contains(flag), "usage text must document `{flag}`");
        }
        // The preset names the usage text promises resolve (presets now
        // build through the validating builder, so they need a real host).
        let host = || {
            let mut c = kratt_netlist::Circuit::new("tiny");
            let a = c.add_input("a").unwrap();
            let b = c.add_input("b").unwrap();
            let g = c
                .add_gate(kratt_netlist::GateType::And, "g", &[a, b])
                .unwrap();
            c.mark_output(g);
            vec![CampaignHost::new("tiny", c, 4)]
        };
        for preset in ["table3", "smoke"] {
            assert!(
                kratt_attacks::Campaign::preset(preset, host(), Budget::default()).is_ok(),
                "`{preset}` must build"
            );
        }
    }

    #[test]
    fn scheme_mode_locks_attacks_and_verifies_end_to_end() {
        // Drive run() itself: write an original netlist, lock it on the fly
        // with a seeded SARLock spec, let the QBF path recover the key and
        // check the verdict machinery accepts it.
        let dir = std::env::temp_dir().join("kratt_cli_scheme_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("majority.bench");
        std::fs::write(
            &path,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nab = AND(a, b)\nac = AND(a, c)\nbc = AND(b, c)\ny = OR(ab, ac, bc)\n",
        )
        .unwrap();
        let options = parse_args([
            "--locked",
            path.to_str().unwrap(),
            "--scheme",
            "sarlock:k=3,seed=9",
            "--json",
        ])
        .unwrap();
        run(&options).unwrap();
        // A malformed spec surfaces as a structured error.
        let options = parse_args([
            "--locked",
            path.to_str().unwrap(),
            "--scheme",
            "sarlock:k=99",
        ])
        .unwrap();
        let message = run(&options).unwrap_err();
        assert!(message.contains("data inputs"), "{message}");
    }

    #[test]
    fn lint_mode_parses_and_rejects_attack_only_flags() {
        let options = parse_args(["--locked", "l.bench", "--lint", "--json"]).unwrap();
        assert!(options.lint);
        assert!(options.json);
        // Lint still needs an input netlist and pairs only with --oracle/--json.
        assert!(parse_args(["--lint"]).is_err());
        let message =
            parse_args(["--locked", "l.bench", "--lint", "--scheme", "sarlock:k=4"]).unwrap_err();
        assert!(message.contains("--lint"), "{message}");
        assert!(parse_args(["--locked", "l.bench", "--lint", "--qdimacs", "u.qdimacs"]).is_err());
    }

    #[test]
    fn lint_mode_passes_clean_netlists_and_fails_on_errors() {
        let dir = std::env::temp_dir().join("kratt_cli_lint_test");
        std::fs::create_dir_all(&dir).unwrap();

        // A well-formed majority gate sails through.
        let clean = dir.join("majority.bench");
        std::fs::write(
            &clean,
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nab = AND(a, b)\nac = AND(a, c)\nbc = AND(b, c)\ny = OR(ab, ac, bc)\n",
        )
        .unwrap();
        let options =
            parse_args(["--locked", clean.to_str().unwrap(), "--lint", "--json"]).unwrap();
        run_lint(&options).unwrap();

        // A key input that never reaches an output is an error-level finding
        // (a broken lock) and a failing exit. The bench parser itself rejects
        // cycles and undriven nets, so this is the structural error that can
        // reach the linter through a parsed file.
        let broken = dir.join("broken_lock.bench");
        std::fs::write(
            &broken,
            "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = BUF(a)\ndangling = AND(keyinput0, a)\n",
        )
        .unwrap();
        let options = parse_args(["--locked", broken.to_str().unwrap(), "--lint"]).unwrap();
        let message = run_lint(&options).unwrap_err();
        assert!(message.contains("error-level"), "{message}");

        // With --oracle as the original, a dropped output is interface drift.
        let original = dir.join("two_outputs.bench");
        std::fs::write(
            &original,
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n",
        )
        .unwrap();
        let narrowed = dir.join("one_output.bench");
        std::fs::write(&narrowed, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let options = parse_args([
            "--locked",
            narrowed.to_str().unwrap(),
            "--oracle",
            original.to_str().unwrap(),
            "--lint",
        ])
        .unwrap();
        assert!(run_lint(&options).is_err());
    }

    #[test]
    fn analyze_mode_parses_and_rejects_attack_only_flags() {
        let options =
            parse_args(["--locked", "l.bench", "--analyze", "ternary", "--json"]).unwrap();
        assert_eq!(options.analyze.as_deref(), Some("ternary"));
        assert!(options.json);
        // --list-domains is a standalone mode; --analyze itself still needs
        // an input netlist and a domain name.
        assert!(parse_args(["--list-domains"]).unwrap().list_domains);
        assert!(parse_args(["--locked", "l.bench", "--analyze"]).is_err());
        assert!(parse_args(["--analyze", "ternary"]).is_err());
        let message =
            parse_args(["--locked", "l.bench", "--analyze", "odc", "--lint"]).unwrap_err();
        assert!(message.contains("--analyze"), "{message}");
        assert!(parse_args([
            "--locked",
            "l.bench",
            "--analyze",
            "odc",
            "--oracle",
            "o.bench"
        ])
        .is_err());
        assert!(parse_args([
            "--locked",
            "l.bench",
            "--analyze",
            "odc",
            "--scheme",
            "sarlock:k=4"
        ])
        .is_err());
    }

    #[test]
    fn usage_documents_every_analysis_domain() {
        for flag in ["--analyze", "--list-domains"] {
            assert!(USAGE.contains(flag), "usage text must document `{flag}`");
        }
        for (name, _) in ANALYZE_DOMAINS {
            assert!(USAGE.contains(name), "usage text must document `{name}`");
        }
    }

    #[test]
    fn analyze_mode_dumps_every_domain_text_and_json() {
        // y = (a AND keyinput0) AND XNOR(b, keyinput1): keyinput0=0 forces
        // y to 0 and masks keyinput1 — every domain has something to say.
        let dir = std::env::temp_dir().join("kratt_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gated.bench");
        std::fs::write(
            &path,
            "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nINPUT(keyinput1)\nOUTPUT(y)\n\
             g = XNOR(b, keyinput1)\nt = AND(a, keyinput0)\ny = AND(t, g)\n",
        )
        .unwrap();
        for (domain, _) in ANALYZE_DOMAINS {
            let options =
                parse_args(["--locked", path.to_str().unwrap(), "--analyze", domain]).unwrap();
            run_analyze(&options, domain).unwrap();
            let options = parse_args([
                "--locked",
                path.to_str().unwrap(),
                "--analyze",
                domain,
                "--json",
            ])
            .unwrap();
            run_analyze(&options, domain).unwrap();
        }
        // An unknown domain is a structured error naming the known ones.
        let options =
            parse_args(["--locked", path.to_str().unwrap(), "--analyze", "taint"]).unwrap();
        let message = run_analyze(&options, "taint").unwrap_err();
        assert!(message.contains("known domains"), "{message}");
        assert!(message.contains("unateness"), "{message}");
    }

    #[test]
    fn every_usage_attack_name_resolves_through_the_registry() {
        let registry = kratt::attack_registry();
        for name in [
            "kratt",
            "sat",
            "double-dip",
            "appsat",
            "fall",
            "removal",
            "scope",
            "portfolio",
        ] {
            assert!(USAGE.contains(name), "usage text must document `{name}`");
            assert!(registry.contains(name), "`{name}` must be registered");
        }
    }

    #[test]
    fn portfolio_members_flag_parses_and_rejects_empty_lists() {
        let options = parse_args([
            "--locked",
            "l.bench",
            "--attack",
            "portfolio",
            "--portfolio-members",
            "kratt,sat",
        ])
        .unwrap();
        assert_eq!(options.portfolio_members.as_deref(), Some("kratt,sat"));
        assert!(USAGE.contains("--portfolio-members"));
        // A list that parses to nothing is a usage error, not a late panic.
        let message =
            parse_args(["--locked", "l.bench", "--portfolio-members", " , ,"]).unwrap_err();
        assert!(message.contains("--portfolio-members"), "{message}");
        assert!(parse_args(["--locked", "l.bench", "--portfolio-members"]).is_err());
    }

    #[test]
    fn time_limit_flag_sets_the_shared_budget() {
        let with_flag = budget(Some(7));
        assert_eq!(with_flag.time_limit, Some(Duration::from_secs(7)));
        let without = budget(None);
        assert_eq!(without.time_limit, Budget::default().time_limit);
    }

    #[test]
    fn netlist_reader_dispatches_on_extension_and_reports_missing_files() {
        let dir = std::env::temp_dir().join("kratt_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench_path = dir.join("tiny.bench");
        std::fs::write(&bench_path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let circuit = read_netlist(&bench_path).unwrap();
        assert_eq!(circuit.num_gates(), 1);

        let verilog_path = dir.join("tiny.v");
        std::fs::write(
            &verilog_path,
            "module t (a, y);\n input a;\n output y;\n not g0 (y, a);\nendmodule\n",
        )
        .unwrap();
        let circuit = read_netlist(&verilog_path).unwrap();
        assert_eq!(circuit.name(), "t");

        let missing = dir.join("does_not_exist.bench");
        assert!(read_netlist(&missing).unwrap_err().contains("cannot read"));
    }
}
