//! Command-line front end for the attack suite, mirroring how the original
//! tool is driven: point it at a locked netlist (and optionally an oracle
//! netlist), pick an attack by registry name, get the recovered key.
//!
//! ```text
//! kratt --locked locked.bench                        # oracle-less KRATT attack
//! kratt --locked locked.v --oracle original.bench    # oracle-guided KRATT attack
//! kratt --locked locked.bench --oracle orig.bench --attack sat --json
//! kratt --locked locked.bench --qdimacs unit.qdimacs # also dump the QBF instance
//! kratt --locked locked.bench --oracle orig.bench \
//!       --reconstruct rebuilt.bench                  # §V original-circuit reconstruction
//! ```
//!
//! Netlist formats are chosen by file extension: `.v`/`.verilog` is parsed as
//! structural Verilog, everything else as ISCAS `.bench`.

use kratt::og::{recover_protected_patterns, StructuralAnalysisConfig};
use kratt::reconstruct::reconstruct_original_from_patterns;
use kratt::removal::remove_locking_unit;
use kratt_attacks::{AttackOutcome, AttackRequest, Budget, Oracle};
use kratt_netlist::{bench, verilog, Circuit};
use kratt_qbf::qdimacs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct CliOptions {
    locked: Option<PathBuf>,
    oracle: Option<PathBuf>,
    attack: String,
    qdimacs: Option<PathBuf>,
    reconstruct: Option<PathBuf>,
    time_limit: Option<u64>,
    json: bool,
    help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            locked: None,
            oracle: None,
            attack: "kratt".to_string(),
            qdimacs: None,
            reconstruct: None,
            time_limit: None,
            json: false,
            help: false,
        }
    }
}

const USAGE: &str = "\
KRATT — QBF-assisted removal and structural analysis attack against logic locking

USAGE:
    kratt --locked <NETLIST> [OPTIONS]

OPTIONS:
    --locked <PATH>        locked netlist (.bench, or .v for structural Verilog)   [required]
    --oracle <PATH>        original netlist used as the functional-IC oracle (enables the
                           oracle-guided threat model)
    --attack <NAME>        attack to run, resolved through the registry: kratt (default),
                           sat, double-dip, appsat, fall, removal, scope
    --json                 print the attack run as a machine-readable JSON report
    --qdimacs <PATH>       write the extracted locking unit's \u{2203}K \u{2200}PPI instance in QDIMACS
    --reconstruct <PATH>   recover the protected patterns with the oracle and write the
                           reconstructed original circuit as .bench (requires --oracle)
    --time-limit <SECS>    shared wall-clock budget of the whole attack (default 60)
    --help                 print this message
";

/// Parses the argument list (everything after the program name).
fn parse_args<I, S>(args: I) -> Result<CliOptions, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut options = CliOptions::default();
    let mut iter = args.into_iter().map(Into::into);
    while let Some(flag) = iter.next() {
        let mut path_value = |name: &str| -> Result<PathBuf, String> {
            iter.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--locked" => options.locked = Some(path_value("--locked")?),
            "--oracle" => options.oracle = Some(path_value("--oracle")?),
            "--attack" => {
                options.attack = iter
                    .next()
                    .ok_or("--attack expects a registry name".to_string())?;
            }
            "--qdimacs" => options.qdimacs = Some(path_value("--qdimacs")?),
            "--reconstruct" => options.reconstruct = Some(path_value("--reconstruct")?),
            "--time-limit" => {
                let value = iter.next().ok_or("--time-limit expects a value")?;
                let seconds: u64 = value.parse().map_err(|_| {
                    format!("--time-limit expects a number of seconds, got `{value}`")
                })?;
                options.time_limit = Some(seconds);
            }
            "--json" => options.json = true,
            "--help" | "-h" => options.help = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !options.help && options.locked.is_none() {
        return Err("--locked <NETLIST> is required".to_string());
    }
    if options.reconstruct.is_some() && options.oracle.is_none() {
        return Err(
            "--reconstruct requires --oracle (the patterns are recovered with it)".to_string(),
        );
    }
    Ok(options)
}

/// Reads a netlist, dispatching on the file extension.
fn read_netlist(path: &Path) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let is_verilog = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.eq_ignore_ascii_case("v") || e.eq_ignore_ascii_case("verilog"))
        .unwrap_or(false);
    if is_verilog {
        verilog::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("locked");
        bench::parse(name, &text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The shared budget of the run: `--time-limit` replaces the default
/// one-minute wall clock, everything else stays at the defaults.
fn budget(time_limit: Option<u64>) -> Budget {
    match time_limit {
        Some(seconds) => Budget::with_time_limit(Duration::from_secs(seconds)),
        None => Budget::default(),
    }
}

fn run(options: &CliOptions) -> Result<(), String> {
    let locked_path = options.locked.as_ref().expect("validated by parse_args");
    let locked = read_netlist(locked_path)?;
    let quiet = options.json;
    if !quiet {
        println!("locked netlist : {locked}");
    }
    let key_names = kratt_attacks::key_input_names(&locked);
    if key_names.is_empty() {
        return Err("the locked netlist has no `keyinput*` primary inputs".to_string());
    }

    if let Some(path) = &options.qdimacs {
        let artifacts = remove_locking_unit(&locked).map_err(|e| e.to_string())?;
        let unit = &artifacts.unit;
        let text = qdimacs::export(
            unit,
            &unit.key_inputs(),
            &unit.data_inputs(),
            unit.outputs()[0],
            false,
        );
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        if !quiet {
            println!("qbf instance   : written to {}", path.display());
        }
    }

    let registry = kratt::attack_registry();
    let attack = registry
        .build(&options.attack)
        .map_err(|e| format!("{e} (known attacks: {})", registry.names().join(", ")))?;
    let oracle = match &options.oracle {
        None => None,
        Some(oracle_path) => {
            let original = read_netlist(oracle_path)?;
            Some(Oracle::new(original).map_err(|e| e.to_string())?)
        }
    };
    let request = AttackRequest {
        locked: &locked,
        oracle: oracle.as_ref(),
        budget: budget(options.time_limit),
    };
    let report = attack.execute(&request).map_err(|e| e.to_string())?;

    if options.json {
        println!("{}", report.to_json());
    } else {
        println!("attack         : {}", report.attack);
        println!("threat model   : {}", report.threat_model);
        println!("runtime        : {:.3} s", report.runtime.as_secs_f64());
        if let Some(oracle) = &oracle {
            println!("oracle queries : {}", oracle.queries());
        }
        for step in &report.steps {
            println!(
                "    step {:<32} {:.3} s",
                step.name,
                step.duration.as_secs_f64()
            );
        }
        match &report.outcome {
            AttackOutcome::ExactKey(key) => {
                println!(
                    "secret key     : {key}  (msb = {}, lsb = {})",
                    key_names.last().unwrap(),
                    key_names[0]
                );
            }
            AttackOutcome::PartialGuess(guess) => {
                println!(
                    "partial guess  : {} of {} key bits deciphered",
                    guess.deciphered(),
                    key_names.len()
                );
                let mut names: Vec<&String> = guess.bits.keys().collect();
                names.sort();
                for name in names {
                    println!("    {name} = {}", u8::from(guess.bits[name]));
                }
            }
            AttackOutcome::RecoveredCircuit(circuit) => {
                println!("recovered      : {circuit} (key-less removal)");
            }
            AttackOutcome::OutOfBudget => println!("outcome        : budget exhausted (OoT)"),
        }
    }

    if let Some(path) = &options.reconstruct {
        let original = read_netlist(options.oracle.as_ref().expect("validated"))?;
        let oracle = Oracle::new(original).map_err(|e| e.to_string())?;
        let artifacts = remove_locking_unit(&locked).map_err(|e| e.to_string())?;
        let subcircuit =
            kratt::extraction::extract_locked_subcircuit(&artifacts).map_err(|e| e.to_string())?;
        let patterns = recover_protected_patterns(
            &artifacts,
            &subcircuit,
            &oracle,
            &StructuralAnalysisConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        if !quiet {
            println!("protected pats : {} recovered", patterns.len());
        }
        let rebuilt =
            reconstruct_original_from_patterns(&artifacts, &patterns).map_err(|e| e.to_string())?;
        let text = bench::write(&rebuilt).map_err(|e| e.to_string())?;
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        if !quiet {
            println!("reconstruction : written to {}", path.display());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if options.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_command_line() {
        let options = parse_args([
            "--locked",
            "locked.bench",
            "--oracle",
            "orig.v",
            "--attack",
            "sat",
            "--json",
            "--qdimacs",
            "unit.qdimacs",
            "--reconstruct",
            "rebuilt.bench",
            "--time-limit",
            "30",
        ])
        .unwrap();
        assert_eq!(options.locked, Some(PathBuf::from("locked.bench")));
        assert_eq!(options.oracle, Some(PathBuf::from("orig.v")));
        assert_eq!(options.attack, "sat");
        assert!(options.json);
        assert_eq!(options.qdimacs, Some(PathBuf::from("unit.qdimacs")));
        assert_eq!(options.reconstruct, Some(PathBuf::from("rebuilt.bench")));
        assert_eq!(options.time_limit, Some(30));
        assert!(!options.help);
    }

    #[test]
    fn attack_defaults_to_kratt() {
        let options = parse_args(["--locked", "l.bench"]).unwrap();
        assert_eq!(options.attack, "kratt");
        assert!(!options.json);
    }

    #[test]
    fn missing_locked_netlist_is_rejected() {
        assert!(parse_args(["--oracle", "orig.bench"]).is_err());
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn reconstruct_requires_an_oracle() {
        let result = parse_args(["--locked", "l.bench", "--reconstruct", "out.bench"]);
        assert!(result.unwrap_err().contains("--oracle"));
    }

    #[test]
    fn unknown_flags_and_bad_numbers_are_rejected() {
        assert!(parse_args(["--locked", "l.bench", "--frobnicate"]).is_err());
        assert!(parse_args(["--locked", "l.bench", "--time-limit", "soon"]).is_err());
        assert!(parse_args(["--locked", "l.bench", "--attack"]).is_err());
        assert!(parse_args(["--locked"]).is_err());
    }

    #[test]
    fn help_short_circuits_validation() {
        let options = parse_args(["--help"]).unwrap();
        assert!(options.help);
    }

    #[test]
    fn every_usage_attack_name_resolves_through_the_registry() {
        let registry = kratt::attack_registry();
        for name in [
            "kratt",
            "sat",
            "double-dip",
            "appsat",
            "fall",
            "removal",
            "scope",
        ] {
            assert!(USAGE.contains(name), "usage text must document `{name}`");
            assert!(registry.contains(name), "`{name}` must be registered");
        }
    }

    #[test]
    fn time_limit_flag_sets_the_shared_budget() {
        let with_flag = budget(Some(7));
        assert_eq!(with_flag.time_limit, Some(Duration::from_secs(7)));
        let without = budget(None);
        assert_eq!(without.time_limit, Budget::default().time_limit);
    }

    #[test]
    fn netlist_reader_dispatches_on_extension_and_reports_missing_files() {
        let dir = std::env::temp_dir().join("kratt_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench_path = dir.join("tiny.bench");
        std::fs::write(&bench_path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let circuit = read_netlist(&bench_path).unwrap();
        assert_eq!(circuit.num_gates(), 1);

        let verilog_path = dir.join("tiny.v");
        std::fs::write(
            &verilog_path,
            "module t (a, y);\n input a;\n output y;\n not g0 (y, a);\nendmodule\n",
        )
        .unwrap();
        let circuit = read_netlist(&verilog_path).unwrap();
        assert_eq!(circuit.name(), "t");

        let missing = dir.join("does_not_exist.bench");
        assert!(read_netlist(&missing).unwrap_err().contains("cannot read"));
    }
}
