//! Step 3 of the flow: logic extraction of the locked subcircuit.
//!
//! On the unit-stripped circuit, the primary outputs reachable from the
//! critical signal are the *locked primary outputs*; their fan-in cones form
//! the locked subcircuit the OL circuit-modification and the OG structural
//! analysis operate on.

use crate::{KrattError, RemovalArtifacts};
use kratt_netlist::analysis::outputs_reached_from;
use kratt_netlist::transform::extract_cone;
use kratt_netlist::Circuit;

/// Extracts the locked subcircuit: the cones of every primary output the
/// critical signal reaches in the unit-stripped circuit. The critical signal
/// itself remains a primary input of the subcircuit.
///
/// # Errors
///
/// Returns an error if the critical signal is missing from the unit-stripped
/// circuit (which would indicate corrupted artefacts).
pub fn extract_locked_subcircuit(artifacts: &RemovalArtifacts) -> Result<Circuit, KrattError> {
    let usc = &artifacts.unit_stripped;
    let cs1 = usc.find_net(&artifacts.critical_signal).ok_or_else(|| {
        KrattError::Netlist(kratt_netlist::NetlistError::UnknownNet(
            artifacts.critical_signal.clone(),
        ))
    })?;
    let locked_outputs = outputs_reached_from(usc, cs1);
    let mut subcircuit = extract_cone(usc, &locked_outputs, &[])?;
    subcircuit.set_name(format!("{}_locked_sub", usc.name()));
    Ok(subcircuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::removal::remove_locking_unit;
    use kratt_benchmarks::arith::ripple_carry_adder;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{LockingTechnique, SecretKey, TtLock};

    #[test]
    fn majority_subcircuit_contains_the_whole_fsc() {
        let locked = TtLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b100, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        // Single output, and the critical signal is one of its inputs.
        assert_eq!(subcircuit.num_outputs(), 1);
        assert!(subcircuit.find_net(&artifacts.critical_signal).is_some());
        // The protected inputs appear in the subcircuit (the FSC embeds the
        // protected cube), which is what the OG analysis exploits.
        for ppi in artifacts.protected_inputs() {
            assert!(
                subcircuit.find_net(&ppi).is_some(),
                "missing protected input {ppi}"
            );
        }
    }

    #[test]
    fn only_locked_outputs_are_extracted() {
        // Lock a multi-output adder: only the corrupted output's cone should
        // be in the locked subcircuit.
        let original = ripple_carry_adder(4).unwrap();
        let locked = TtLock::new(4)
            .lock(&original, &SecretKey::from_u64(0b1010, 4))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        assert_eq!(
            subcircuit.num_outputs(),
            1,
            "TTLock corrupts exactly one output"
        );
        assert!(subcircuit.num_gates() < locked.circuit.num_gates());
        let expected_name = locked
            .circuit
            .net_name(locked.circuit.outputs()[locked.target_output])
            .to_string();
        assert_eq!(
            subcircuit.net_name(subcircuit.outputs()[0]),
            expected_name,
            "the extracted output is the corrupted one"
        );
    }
}
