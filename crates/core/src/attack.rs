//! The KRATT orchestrator: the full flow of the paper's Fig. 4 under both
//! threat models.

use crate::classify::{classify_unit, UnitClass};
use crate::extraction::extract_locked_subcircuit;
use crate::og::{structural_analysis, StructuralAnalysisConfig, StructuralOutcome};
use crate::ol::{attack_subcircuit_with_scope, attack_unit_with_scope};
use crate::qbf_attack::{solve_unit_qbf, QbfStepOutcome};
use crate::removal::remove_locking_unit;
use crate::{KrattError, RemovalArtifacts};
use kratt_attacks::registry::AttackRegistry;
use kratt_attacks::{
    Attack, AttackError, AttackOutcome, AttackRequest, AttackRun, Budget, Deadline, KeyGuess,
    Oracle, PortfolioAttack, ScopeAttack, StepTiming, ThreatModel,
};
use kratt_locking::SecretKey;
use kratt_netlist::Circuit;
use kratt_qbf::QbfConfig;
use kratt_sat::CancelFlag;
use std::time::{Duration, Instant};

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct KrattConfig {
    /// Budget of the CEGAR 2QBF solver (the paper uses a one-minute limit).
    pub qbf: QbfConfig,
    /// Decision margin of the SCOPE component.
    pub scope_margin: usize,
    /// Budget and heuristics of the oracle-guided structural analysis.
    pub structural: StructuralAnalysisConfig,
    /// Absolute deadline of the whole run; checked between pipeline steps
    /// (and inherited by the QBF / structural-analysis engines through
    /// [`KrattConfig::apply_budget`]).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag of the whole run; checked wherever the
    /// deadline is and inherited by the engines the same way.
    pub cancel: Option<CancelFlag>,
}

impl Default for KrattConfig {
    fn default() -> Self {
        KrattConfig {
            qbf: QbfConfig {
                time_limit: Some(Duration::from_secs(60)),
                ..Default::default()
            },
            scope_margin: 0,
            structural: StructuralAnalysisConfig::default(),
            deadline: None,
            cancel: None,
        }
    }
}

impl KrattConfig {
    /// Overlays a shared [`Budget`] and its started [`Deadline`] onto this
    /// configuration: the wall-clock and conflict limits of the QBF and
    /// structural-analysis engines are replaced, and the deadline's
    /// cancellation flag is threaded into both, so the whole pipeline
    /// honours the one budget (and a portfolio race's cancellation)
    /// cooperatively.
    pub fn apply_budget(mut self, budget: &Budget, deadline: &Deadline) -> Self {
        self.qbf.time_limit = budget.time_limit;
        self.qbf.deadline = deadline.instant();
        self.qbf.sat_conflict_limit = budget.sat_conflict_limit;
        self.qbf.cancel = Some(deadline.cancel_flag());
        self.structural.time_limit = budget.time_limit;
        self.structural.deadline = deadline.instant();
        self.structural.cancel = Some(deadline.cancel_flag());
        if let Some(cap) = budget.max_oracle_queries {
            self.structural.max_oracle_queries = cap;
        }
        self.deadline = deadline.instant();
        self.cancel = Some(deadline.cancel_flag());
        self
    }

    /// Whether the run's deadline has passed or the run was cancelled.
    fn deadline_expired(&self) -> bool {
        self.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
            || kratt_sat::cancel_requested(&self.cancel)
    }
}

/// A shared [`Budget`] is a complete KRATT configuration: default heuristics
/// with every engine limit derived from the budget.
impl From<Budget> for KrattConfig {
    fn from(budget: Budget) -> Self {
        let deadline = Deadline::unlimited();
        KrattConfig::default().apply_budget(&budget, &deadline)
    }
}

/// Which step of the flow produced the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrattPath {
    /// The QBF formulation on the extracted unit (SFLTs).
    Qbf,
    /// Circuit modification of the locking unit plus SCOPE (SFLTs whose QBF
    /// solve did not produce a key, e.g. Gen-Anti-SAT).
    ModifiedUnitScope,
    /// Circuit modification of the locked subcircuit plus SCOPE (DFLTs under
    /// the oracle-less threat model).
    ModifiedSubcircuitScope,
    /// Structural analysis and exhaustive search with the oracle (DFLTs under
    /// the oracle-guided threat model).
    StructuralAnalysis,
}

/// The result of a KRATT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreatOutcome {
    /// A complete key that stucks the unit / matches the oracle. For SFLTs
    /// broken through QBF this is the secret key (or a provably correct
    /// equivalent for Anti-SAT-style multi-key units); for DFLTs broken
    /// through the structural analysis it is the secret key.
    ExactKey(SecretKey),
    /// A partial, per-bit guess (the oracle-less DFLT / Gen-Anti-SAT path).
    PartialGuess(KeyGuess),
    /// Budgets were exhausted before a result was obtained.
    OutOfTime,
}

impl ThreatOutcome {
    /// The exact key, if one was recovered.
    pub fn exact_key(&self) -> Option<&SecretKey> {
        match self {
            ThreatOutcome::ExactKey(key) => Some(key),
            _ => None,
        }
    }

    /// The outcome as a per-bit guess (exact keys convert to a full guess
    /// over the given key-input names).
    pub fn as_guess(&self, key_names: &[String]) -> KeyGuess {
        match self {
            ThreatOutcome::ExactKey(key) => KeyGuess::from((key, key_names)),
            ThreatOutcome::PartialGuess(guess) => guess.clone(),
            ThreatOutcome::OutOfTime => KeyGuess::new(),
        }
    }
}

/// A full report of one KRATT run.
#[derive(Debug, Clone)]
pub struct KrattReport {
    /// The outcome (key, partial guess, or out-of-time).
    pub outcome: ThreatOutcome,
    /// The pipeline step that produced the outcome.
    pub path: KrattPath,
    /// The unit classification, when the pipeline got that far.
    pub unit_class: Option<UnitClass>,
    /// Wall-clock runtime of the whole run.
    pub runtime: Duration,
    /// Per-step durations (removal, QBF, classification, ...).
    pub steps: Vec<StepTiming>,
    /// CEGAR refinement iterations spent by the QBF step (0 when the BDD
    /// fast path decided the instances).
    pub qbf_iterations: usize,
    /// The removal artefacts, exposed so callers can reuse the extracted
    /// unit / USC (e.g. for reconstruction).
    pub artifacts: RemovalArtifacts,
}

/// The KRATT attack.
#[derive(Debug, Clone, Default)]
pub struct KrattAttack {
    /// Pipeline configuration.
    pub config: KrattConfig,
}

impl KrattAttack {
    /// KRATT with the default configuration (one-minute QBF limit, default
    /// structural-analysis budget).
    pub fn new() -> Self {
        KrattAttack::default()
    }

    /// KRATT with an explicit configuration.
    pub fn with_config(config: KrattConfig) -> Self {
        KrattAttack { config }
    }

    /// Runs KRATT under the oracle-less threat model (steps 1–5 of Fig. 4).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is not a single-merge-point locked
    /// design (no key inputs, or no critical signal).
    pub fn attack_oracle_less(&self, locked: &Circuit) -> Result<KrattReport, KrattError> {
        let start = Instant::now();
        let mut steps: Vec<StepTiming> = Vec::new();
        let artifacts = remove_locking_unit(locked)?;
        steps.push(StepTiming::new("logic-removal", start.elapsed()));
        let scope = ScopeAttack {
            margin: self.config.scope_margin,
            ..ScopeAttack::new()
        };

        // Step 2: QBF.
        let qbf_start = Instant::now();
        let (qbf_outcome, qbf_iterations) = solve_unit_qbf(&artifacts, &self.config.qbf)?;
        steps.push(StepTiming::new("qbf", qbf_start.elapsed()));
        match qbf_outcome {
            QbfStepOutcome::Key { guess, .. } => {
                let key = self.guess_to_key(locked, &guess);
                return Ok(KrattReport {
                    outcome: ThreatOutcome::ExactKey(key),
                    path: KrattPath::Qbf,
                    unit_class: None,
                    runtime: start.elapsed(),
                    steps,
                    qbf_iterations,
                    artifacts,
                });
            }
            QbfStepOutcome::NoConstantKey | QbfStepOutcome::Unknown => {}
        }
        if self.config.deadline_expired() {
            return Ok(KrattReport {
                outcome: ThreatOutcome::OutOfTime,
                path: KrattPath::Qbf,
                unit_class: None,
                runtime: start.elapsed(),
                steps,
                qbf_iterations,
                artifacts,
            });
        }

        // Steps 3–5: classification, circuit modification, SCOPE.
        let classify_start = Instant::now();
        let unit_class = classify_unit(&artifacts)?;
        steps.push(StepTiming::new("classification", classify_start.elapsed()));
        let scope_start = Instant::now();
        let (guess, path) = if unit_class.is_restore_unit() {
            let subcircuit = extract_locked_subcircuit(&artifacts)?;
            (
                attack_subcircuit_with_scope(&artifacts, &subcircuit, &scope)?,
                KrattPath::ModifiedSubcircuitScope,
            )
        } else {
            (
                attack_unit_with_scope(&artifacts, &scope)?,
                KrattPath::ModifiedUnitScope,
            )
        };
        steps.push(StepTiming::new(
            "circuit-modification+scope",
            scope_start.elapsed(),
        ));
        Ok(KrattReport {
            outcome: ThreatOutcome::PartialGuess(guess),
            path,
            unit_class: Some(unit_class),
            runtime: start.elapsed(),
            steps,
            qbf_iterations,
            artifacts,
        })
    }

    /// Runs KRATT under the oracle-guided threat model (steps 1–3 and 6–7 of
    /// Fig. 4).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is not a single-merge-point locked
    /// design (no key inputs, or no critical signal).
    pub fn attack_oracle_guided(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
    ) -> Result<KrattReport, KrattError> {
        let start = Instant::now();
        let mut steps: Vec<StepTiming> = Vec::new();
        let artifacts = remove_locking_unit(locked)?;
        steps.push(StepTiming::new("logic-removal", start.elapsed()));

        // Step 2: QBF (SFLTs are already done here).
        let qbf_start = Instant::now();
        let (qbf_outcome, qbf_iterations) = solve_unit_qbf(&artifacts, &self.config.qbf)?;
        steps.push(StepTiming::new("qbf", qbf_start.elapsed()));
        match qbf_outcome {
            QbfStepOutcome::Key { guess, .. } => {
                let key = self.guess_to_key(locked, &guess);
                return Ok(KrattReport {
                    outcome: ThreatOutcome::ExactKey(key),
                    path: KrattPath::Qbf,
                    unit_class: None,
                    runtime: start.elapsed(),
                    steps,
                    qbf_iterations,
                    artifacts,
                });
            }
            QbfStepOutcome::NoConstantKey | QbfStepOutcome::Unknown => {}
        }
        if self.config.deadline_expired() {
            return Ok(KrattReport {
                outcome: ThreatOutcome::OutOfTime,
                path: KrattPath::Qbf,
                unit_class: None,
                runtime: start.elapsed(),
                steps,
                qbf_iterations,
                artifacts,
            });
        }

        // Steps 3, 6, 7: classification, extraction, structural analysis.
        let classify_start = Instant::now();
        let unit_class = classify_unit(&artifacts)?;
        let subcircuit = extract_locked_subcircuit(&artifacts)?;
        steps.push(StepTiming::new(
            "classification+extraction",
            classify_start.elapsed(),
        ));
        let analysis_start = Instant::now();
        let outcome = match structural_analysis(
            &artifacts,
            &subcircuit,
            locked,
            oracle,
            &self.config.structural,
        )? {
            StructuralOutcome::Key { guess, .. } => {
                ThreatOutcome::ExactKey(self.guess_to_key(locked, &guess))
            }
            StructuralOutcome::OutOfTime => ThreatOutcome::OutOfTime,
        };
        steps.push(StepTiming::new(
            "structural-analysis",
            analysis_start.elapsed(),
        ));
        Ok(KrattReport {
            outcome,
            path: KrattPath::StructuralAnalysis,
            unit_class: Some(unit_class),
            runtime: start.elapsed(),
            steps,
            qbf_iterations,
            artifacts,
        })
    }

    fn guess_to_key(&self, locked: &Circuit, guess: &KeyGuess) -> SecretKey {
        guess.to_secret_key(&kratt_attacks::key_input_names(locked))
    }
}

impl Attack for KrattAttack {
    fn name(&self) -> &'static str {
        "kratt"
    }

    /// KRATT runs under both threat models (the OL and OG paths of Fig. 4).
    fn supports(&self, _model: ThreatModel) -> bool {
        true
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let base_queries = request.oracle.map(|o| o.queries()).unwrap_or(0);
        let attack = KrattAttack {
            config: self.config.clone().apply_budget(&request.budget, &deadline),
        };
        let report = match request.oracle {
            Some(oracle) => attack.attack_oracle_guided(request.locked, oracle)?,
            None => attack.attack_oracle_less(request.locked)?,
        };
        let outcome = match report.outcome {
            ThreatOutcome::ExactKey(key) => AttackOutcome::ExactKey(key),
            ThreatOutcome::PartialGuess(guess) => AttackOutcome::PartialGuess(guess),
            ThreatOutcome::OutOfTime => AttackOutcome::OutOfBudget,
        };
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: request.threat_model(),
            outcome,
            runtime: report.runtime,
            iterations: report.qbf_iterations,
            oracle_queries: request
                .oracle
                .map(|o| o.queries().saturating_sub(base_queries))
                .unwrap_or(0),
            steps: report.steps,
            members: Vec::new(),
        })
    }
}

/// The full attack registry of the suite: every baseline of
/// `kratt-attacks` (`"sat"`, `"double-dip"`, `"appsat"`, `"fall"`,
/// `"removal"`, `"scope"`) plus `"kratt"` itself and the `"portfolio"`
/// racer (member list from `KRATT_PORTFOLIO_MEMBERS`, default
/// `kratt,sat,appsat`; members are instantiated from this same registry).
pub fn attack_registry() -> AttackRegistry {
    let mut registry = AttackRegistry::with_baselines();
    registry.register("kratt", || Box::new(KrattAttack::new()));
    registry.register("portfolio", || {
        // Build the members from a registry without the portfolio itself,
        // so the member list cannot recurse.
        let mut base = AttackRegistry::with_baselines();
        base.register("kratt", || Box::new(KrattAttack::new()));
        let members = PortfolioAttack::members_from_env();
        Box::new(
            PortfolioAttack::from_registry(&base, &members).unwrap_or_else(|e| {
                panic!(
                    "KRATT_PORTFOLIO_MEMBERS `{}` is invalid: {e}",
                    members.join(",")
                )
            }),
        )
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_attacks::score_guess;
    use kratt_benchmarks::arith::ripple_carry_adder;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{
        AntiSat, Cac, CasLock, GenAntiSat, LockingTechnique, SarLock, SecretKey, TtLock,
    };
    use kratt_netlist::sim::exhaustively_equivalent;

    #[test]
    fn oracle_less_qbf_path_breaks_the_running_example() {
        let original = majority();
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let report = KrattAttack::new()
            .attack_oracle_less(&locked.circuit)
            .unwrap();
        assert_eq!(report.path, KrattPath::Qbf);
        assert_eq!(report.outcome.exact_key().unwrap().to_u64(), 0b100);
    }

    #[test]
    fn oracle_less_breaks_every_sflt_functionally() {
        let original = ripple_carry_adder(4).unwrap();
        let techniques: Vec<(&str, Box<dyn LockingTechnique>)> = vec![
            ("sarlock", Box::new(SarLock::new(6))),
            ("anti-sat", Box::new(AntiSat::new(6))),
            ("cas-lock", Box::new(CasLock::new(6))),
            ("gen-anti-sat", Box::new(GenAntiSat::new(6))),
        ];
        for (name, technique) in techniques {
            let secret = SecretKey::from_u64(0b101_101, 6);
            let locked = technique.lock(&original, &secret).unwrap();
            let report = KrattAttack::new()
                .attack_oracle_less(&locked.circuit)
                .unwrap();
            let key = report
                .outcome
                .exact_key()
                .unwrap_or_else(|| panic!("{name}: expected an exact key"))
                .clone();
            let unlocked = locked.apply_key(&key).unwrap();
            assert!(
                exhaustively_equivalent(&original, &unlocked).unwrap(),
                "{name}: recovered key does not unlock"
            );
        }
    }

    #[test]
    fn oracle_less_dflt_path_reports_a_partial_guess() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1010, 4);
        for locked in [
            TtLock::new(4).lock(&original, &secret).unwrap(),
            Cac::new(4).lock(&original, &secret).unwrap(),
        ] {
            let report = KrattAttack::new()
                .attack_oracle_less(&locked.circuit)
                .unwrap();
            assert_eq!(report.path, KrattPath::ModifiedSubcircuitScope);
            assert!(report.unit_class.unwrap().is_restore_unit());
            match &report.outcome {
                ThreatOutcome::PartialGuess(guess) => {
                    let (cdk, dk) = score_guess(&locked, guess);
                    assert!(dk > 0);
                    assert!(cdk <= dk);
                }
                other => panic!("expected a partial guess, got {other:?}"),
            }
        }
    }

    #[test]
    fn oracle_guided_breaks_dflts_exactly() {
        let original = ripple_carry_adder(4).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let secret = SecretKey::from_u64(0b0110, 4);
        for locked in [
            TtLock::new(4).lock(&original, &secret).unwrap(),
            Cac::new(4).lock(&original, &secret).unwrap(),
        ] {
            let report = KrattAttack::new()
                .attack_oracle_guided(&locked.circuit, &oracle)
                .unwrap();
            assert_eq!(report.path, KrattPath::StructuralAnalysis);
            assert_eq!(report.outcome.exact_key().unwrap().to_u64(), 0b0110);
        }
    }

    #[test]
    fn oracle_guided_sflt_is_resolved_by_qbf_without_touching_the_oracle() {
        let original = ripple_carry_adder(4).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let secret = SecretKey::from_u64(0b110101, 6);
        let locked = AntiSat::new(6).lock(&original, &secret).unwrap();
        let report = KrattAttack::new()
            .attack_oracle_guided(&locked.circuit, &oracle)
            .unwrap();
        assert_eq!(report.path, KrattPath::Qbf);
        assert_eq!(
            oracle.queries(),
            0,
            "the QBF path must not spend oracle queries"
        );
        let key = report.outcome.exact_key().unwrap().clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn out_of_time_is_reported_when_budgets_are_zero() {
        let original = ripple_carry_adder(4).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let secret = SecretKey::from_u64(0b1001, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let config = KrattConfig {
            structural: StructuralAnalysisConfig {
                max_oracle_queries: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = KrattAttack::with_config(config)
            .attack_oracle_guided(&locked.circuit, &oracle)
            .unwrap();
        assert_eq!(report.outcome, ThreatOutcome::OutOfTime);
    }

    #[test]
    fn unlocked_or_scattered_locking_is_an_error() {
        let original = majority();
        assert!(matches!(
            KrattAttack::new().attack_oracle_less(&original),
            Err(KrattError::NoKeyInputs)
        ));
    }

    #[test]
    fn portfolio_verdict_parity_on_a_scheme_host_grid() {
        use kratt_attacks::{AttackRequest, Budget, PortfolioAttack};
        use std::time::Duration;

        let registry = attack_registry();
        let members: Vec<String> = ["kratt", "sat"].iter().map(|s| s.to_string()).collect();
        let hosts = [
            ("adder4", ripple_carry_adder(4).unwrap()),
            ("majority", majority()),
        ];
        let schemes: Vec<(&str, Box<dyn LockingTechnique>, SecretKey)> = vec![
            (
                "sarlock",
                Box::new(SarLock::new(3)),
                SecretKey::from_u64(0b101, 3),
            ),
            (
                "antisat",
                Box::new(AntiSat::new(4)),
                SecretKey::from_u64(0b0110, 4),
            ),
        ];
        for (host_name, original) in &hosts {
            for (scheme, technique, secret) in &schemes {
                let locked = technique.lock(original, secret).unwrap();
                let oracle = Oracle::new(original.clone()).unwrap();
                let request = AttackRequest::oracle_guided(&locked.circuit, &oracle)
                    .with_budget(Budget::with_time_limit(Duration::from_secs(60)));
                // Whether any member solves the cell solo (a single-member
                // portfolio verifies its claim exactly like the race does).
                let mut any_solo_verified = false;
                for member in &members {
                    let solo =
                        PortfolioAttack::from_registry(&registry, std::slice::from_ref(member))
                            .unwrap();
                    let run = solo.execute(&request).unwrap();
                    any_solo_verified |= run.winning_member().is_some_and(|m| m.verified);
                }
                let race = PortfolioAttack::from_registry(&registry, &members).unwrap();
                let run = race.execute(&request).unwrap();
                let winner = run
                    .winning_member()
                    .unwrap_or_else(|| panic!("{host_name}/{scheme}: race without a winner"));
                assert!(
                    winner.wall <= run.runtime,
                    "{host_name}/{scheme}: winner wall {:?} exceeds the race wall {:?}",
                    winner.wall,
                    run.runtime
                );
                // Verdict parity: the race must solve every cell its best
                // member solves — the whole point of racing.
                if any_solo_verified {
                    assert!(
                        winner.verified,
                        "{host_name}/{scheme}: a solo member verified its key \
                         but the race's winner (`{}`) did not",
                        winner.name
                    );
                }
            }
        }
    }

    #[test]
    fn outcome_as_guess_round_trips() {
        let names: Vec<String> = (0..3).map(|i| format!("keyinput{i}")).collect();
        let outcome = ThreatOutcome::ExactKey(SecretKey::from_u64(0b101, 3));
        let guess = outcome.as_guess(&names);
        assert_eq!(guess.deciphered(), 3);
        assert!(guess.bits["keyinput0"]);
        assert!(!guess.bits["keyinput1"]);
        assert_eq!(ThreatOutcome::OutOfTime.as_guess(&names).deciphered(), 0);
    }
}
