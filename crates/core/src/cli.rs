//! Shared command-line plumbing for the campaign front ends.
//!
//! Both the `kratt --campaign` mode and the `kratt-bench` `campaign` binary
//! accept the same campaign *value* — a preset name (`table3`, `smoke`) or a
//! path to a campaign spec file — and expose the same `--stream` output
//! contract (one JSON line per verdict cell the moment it commits, closed by
//! one summary record). This module holds that shared surface so the front
//! ends cannot drift apart: the spec-file grammar, the preset-or-file
//! resolution and the streaming runner.
//!
//! # Spec-file grammar
//!
//! Line-based, one directive per line, `#` starts a comment:
//!
//! ```text
//! # attacks × schemes over two Table-I hosts, resumable
//! scheme      sarlock
//! scheme      ttlock:k=16
//! host        c1355
//! host        c1908
//! attack      sat
//! attack      kratt
//! budget-secs 10          # per-cell attack budget
//! workers     4           # optional; defaults to all CPUs
//! journal     run.jsonl   # optional; enables crash-resume
//! ```
//!
//! `scheme`, `host` and `attack` repeat; the other directives appear at most
//! once. Host names are resolved against the front end's host pool (the
//! Table-I generators, scaled by `KRATT_SCALE`).

use kratt_attacks::{Budget, Campaign, CampaignHost, CampaignReport, CorpusCache};
use kratt_locking::scheme_registry;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A parsed campaign spec file. See the module docs for the grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSpecFile {
    /// Scheme specs, verbatim (`sarlock`, `ttlock:k=16`, ...).
    pub schemes: Vec<String>,
    /// Host names, resolved against the host pool at build time.
    pub hosts: Vec<String>,
    /// Attack registry names.
    pub attacks: Vec<String>,
    /// Per-cell attack budget in seconds (front-end default when absent).
    pub budget_secs: Option<u64>,
    /// Worker-thread count (all CPUs when absent).
    pub workers: Option<usize>,
    /// Journal path; present enables crash-resume.
    pub journal: Option<PathBuf>,
}

impl CampaignSpecFile {
    /// Parses the spec-file text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for unknown directives,
    /// missing values and repeated singleton directives.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = CampaignSpecFile::default();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = index + 1;
            let (directive, value) = line
                .split_once(char::is_whitespace)
                .map(|(d, v)| (d, v.trim()))
                .ok_or_else(|| {
                    format!("line {lineno}: expected `<directive> <value>`, got `{line}`")
                })?;
            let singleton_once = |slot_taken: bool| -> Result<(), String> {
                if slot_taken {
                    Err(format!("line {lineno}: `{directive}` may appear only once"))
                } else {
                    Ok(())
                }
            };
            match directive {
                "scheme" => spec.schemes.push(value.to_string()),
                "host" => spec.hosts.push(value.to_string()),
                "attack" => spec.attacks.push(value.to_string()),
                "budget-secs" => {
                    singleton_once(spec.budget_secs.is_some())?;
                    spec.budget_secs = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: `budget-secs` expects seconds, got `{value}`")
                    })?);
                }
                "workers" => {
                    singleton_once(spec.workers.is_some())?;
                    spec.workers = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: `workers` expects a thread count, got `{value}`")
                    })?);
                }
                "journal" => {
                    singleton_once(spec.journal.is_some())?;
                    spec.journal = Some(PathBuf::from(value));
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown directive `{other}` (expected scheme, host, \
                         attack, budget-secs, workers or journal)"
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// Expands the spec into a [`Campaign`] through the validating builder,
    /// resolving host names against `host_pool`.
    ///
    /// # Errors
    ///
    /// Unknown host names (listing the pool) and every
    /// [`kratt_attacks::CampaignError`] the builder raises (empty axes,
    /// duplicates, malformed scheme specs).
    pub fn into_campaign(
        self,
        host_pool: &[CampaignHost],
        default_budget: Budget,
    ) -> Result<Campaign, String> {
        let mut hosts = Vec::new();
        for name in &self.hosts {
            let host = host_pool
                .iter()
                .find(|host| &host.name == name)
                .cloned()
                .ok_or_else(|| {
                    let known: Vec<&str> =
                        host_pool.iter().map(|host| host.name.as_str()).collect();
                    format!("unknown host `{name}` (available: {})", known.join(", "))
                })?;
            hosts.push(host);
        }
        let budget = match self.budget_secs {
            Some(seconds) => Budget::with_time_limit(Duration::from_secs(seconds)),
            None => default_budget,
        };
        let mut builder = Campaign::builder()
            .spec_strs(self.schemes.iter().map(String::as_str))
            .hosts(hosts)
            .attacks(self.attacks)
            .budget(budget);
        if let Some(workers) = self.workers {
            builder = builder.workers(workers);
        }
        if let Some(journal) = self.journal {
            builder = builder.journal(journal);
        }
        builder.build().map_err(|e| e.to_string())
    }
}

/// Resolves a `--campaign` value: a path to an existing file is parsed as a
/// campaign spec file, anything else is looked up as a preset name.
///
/// # Errors
///
/// Unreadable/invalid spec files (prefixed with the path) and unknown
/// presets.
pub fn resolve_campaign(
    value: &str,
    host_pool: Vec<CampaignHost>,
    default_budget: Budget,
) -> Result<Campaign, String> {
    if Path::new(value).is_file() {
        let text = std::fs::read_to_string(value)
            .map_err(|e| format!("cannot read campaign spec `{value}`: {e}"))?;
        CampaignSpecFile::parse(&text)
            .map_err(|e| format!("{value}: {e}"))?
            .into_campaign(&host_pool, default_budget)
            .map_err(|e| format!("{value}: {e}"))
    } else {
        Campaign::preset(value, host_pool, default_budget).map_err(|e| e.to_string())
    }
}

/// Runs a campaign with the shared output contract: with `stream`, every
/// verdict cell prints to stdout as a JSON line the moment it commits
/// (journal replays first, then fresh cells in completion order), closed by
/// one `{"type":"summary",...}` record. The full report is returned either
/// way for the non-streaming renders and the exit-code policy.
///
/// # Errors
///
/// Stringifies every [`kratt_attacks::AttackError`] the run raises (unknown
/// attack names, stale journals, ...).
pub fn run_campaign_with_output(
    campaign: &Campaign,
    stream: bool,
) -> Result<CampaignReport, String> {
    let corpus = CorpusCache::new();
    let attack_registry = crate::attack_registry();
    let scheme_registry = scheme_registry();
    let report = if stream {
        campaign.run_observed(&attack_registry, &scheme_registry, &corpus, &|cell| {
            println!("{}", cell.to_json_line());
        })
    } else {
        campaign.run(&attack_registry, &scheme_registry, &corpus)
    }
    .map_err(|e| e.to_string())?;
    if stream {
        println!("{}", report.summary_json());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::{Circuit, GateType};

    fn pool() -> Vec<CampaignHost> {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate(GateType::And, "g", &[a, b]).unwrap();
        c.mark_output(g);
        vec![
            CampaignHost::new("tiny", c.clone(), 4),
            CampaignHost::new("tiny2", c, 4),
        ]
    }

    #[test]
    fn spec_file_grammar_round_trips() {
        let spec = CampaignSpecFile::parse(
            "# demo\n\
             scheme sarlock\n\
             scheme ttlock:k=8   # inline comment\n\
             host tiny\n\
             attack sat\n\
             attack kratt\n\
             budget-secs 7\n\
             workers 3\n\
             journal run.jsonl\n",
        )
        .unwrap();
        assert_eq!(spec.schemes, ["sarlock", "ttlock:k=8"]);
        assert_eq!(spec.hosts, ["tiny"]);
        assert_eq!(spec.attacks, ["sat", "kratt"]);
        assert_eq!(spec.budget_secs, Some(7));
        assert_eq!(spec.workers, Some(3));
        assert_eq!(spec.journal.as_deref(), Some(Path::new("run.jsonl")));

        let campaign = spec.into_campaign(&pool(), Budget::default()).unwrap();
        assert_eq!(campaign.num_cells(), 4); // 2 schemes x 1 host x 2 attacks
        assert_eq!(campaign.workers, Some(3));
        assert_eq!(campaign.journal.as_deref(), Some(Path::new("run.jsonl")));
    }

    #[test]
    fn spec_file_errors_name_the_line() {
        let e = CampaignSpecFile::parse("scheme sarlock\nfrobnicate yes\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("frobnicate"), "{e}");
        let e = CampaignSpecFile::parse("budget-secs 1\nbudget-secs 2\n").unwrap_err();
        assert!(e.contains("only once"), "{e}");
        let e = CampaignSpecFile::parse("scheme\n").unwrap_err();
        assert!(e.contains("<directive> <value>"), "{e}");
    }

    #[test]
    fn unknown_hosts_and_presets_are_reported() {
        let spec = CampaignSpecFile::parse("scheme sarlock\nhost nope\nattack sat\n").unwrap();
        let e = spec
            .into_campaign(&pool(), Budget::default())
            .err()
            .unwrap();
        assert!(e.contains("unknown host `nope`"), "{e}");
        assert!(e.contains("tiny, tiny2"), "{e}");

        let e = resolve_campaign("no-such-preset", pool(), Budget::default())
            .err()
            .unwrap();
        assert!(e.contains("no-such-preset"), "{e}");
    }
}
