//! Step 1 of the flow: logic removal.
//!
//! KRATT identifies the critical signal `cs1`, splits the locked netlist into
//! the *locking/restore unit* (the fan-in cone of `cs1`) and the
//! *unit-stripped circuit* (USC, where `cs1` becomes a fresh primary input),
//! and records, for every protected primary input, the key input(s) it shares
//! a gate with inside the unit.

use crate::KrattError;
use kratt_attacks::structure::{associate_keys_with_inputs, find_critical_signal};
use kratt_netlist::transform::{extract_cone, remove_cone};
use kratt_netlist::Circuit;

/// The artefacts of the logic-removal step, consumed by every later step.
#[derive(Debug, Clone)]
pub struct RemovalArtifacts {
    /// Name of the critical signal `cs1`.
    pub critical_signal: String,
    /// The locking/restore unit: fan-in cone of `cs1`, with the protected
    /// primary inputs and key inputs as its primary inputs and `cs1` as its
    /// only output.
    pub unit: Circuit,
    /// The unit-stripped circuit: the locked netlist with the cone of `cs1`
    /// removed and `cs1` exposed as an additional primary input.
    pub unit_stripped: Circuit,
    /// For every protected primary input (by name), the key input name(s)
    /// associated with it. Anti-SAT-style units have two keys per input.
    pub associations: Vec<(String, Vec<String>)>,
}

impl RemovalArtifacts {
    /// Names of the protected primary inputs, in association order.
    pub fn protected_inputs(&self) -> Vec<String> {
        self.associations
            .iter()
            .map(|(ppi, _)| ppi.clone())
            .collect()
    }

    /// Names of the key inputs of the unit, in `keyinput` order.
    pub fn key_inputs(&self) -> Vec<String> {
        self.unit.key_input_names()
    }
}

/// Performs the logic-removal step on a locked netlist.
///
/// # Errors
///
/// Returns [`KrattError::NoKeyInputs`] for an unlocked netlist and
/// [`KrattError::NoCriticalSignal`] when the key inputs do not converge into
/// a single merge point (KRATT's removal-based flow then does not apply).
pub fn remove_locking_unit(locked: &Circuit) -> Result<RemovalArtifacts, KrattError> {
    if locked.key_inputs().is_empty() {
        return Err(KrattError::NoKeyInputs);
    }
    let cs1 = find_critical_signal(locked).ok_or(KrattError::NoCriticalSignal)?;
    let critical_signal = locked.net_name(cs1).to_string();
    let unit = extract_cone(locked, &[cs1], &[])?;
    let unit_stripped = remove_cone(locked, cs1)?;
    let associations = associate_keys_with_inputs(&unit);
    Ok(RemovalArtifacts {
        critical_signal,
        unit,
        unit_stripped,
        associations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{AntiSat, LockingTechnique, SarLock, SecretKey, TtLock};

    #[test]
    fn sarlock_unit_and_usc_are_split_correctly() {
        let original = majority();
        let locked = SarLock::new(3)
            .lock(&original, &SecretKey::from_u64(0b100, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        // The unit contains every key input and every protected input.
        assert_eq!(artifacts.unit.key_inputs().len(), 3);
        assert_eq!(artifacts.unit.data_inputs().len(), 3);
        assert_eq!(artifacts.unit.num_outputs(), 1);
        // The USC exposes cs1 as an input and still has the original output.
        let cs1 = artifacts
            .unit_stripped
            .find_net(&artifacts.critical_signal)
            .unwrap();
        assert!(artifacts.unit_stripped.is_input(cs1));
        assert_eq!(
            artifacts.unit_stripped.num_outputs(),
            original.num_outputs()
        );
        // With cs1 tied to 0 the USC is the original circuit again.
        let recovered = kratt_netlist::transform::set_inputs_constant(
            &artifacts.unit_stripped,
            &[(cs1, false)],
        )
        .unwrap();
        let key_width = recovered.key_inputs().len();
        let recovered =
            kratt_locking::common::apply_key(&recovered, &SecretKey::from_u64(0, key_width))
                .unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &recovered).unwrap());
    }

    #[test]
    fn ttlock_associations_are_one_to_one() {
        let original = majority();
        let locked = TtLock::new(3)
            .lock(&original, &SecretKey::from_u64(0b010, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        assert_eq!(artifacts.associations.len(), 3);
        for (_, keys) in &artifacts.associations {
            assert_eq!(keys.len(), 1);
        }
        assert_eq!(artifacts.protected_inputs(), vec!["x1", "x2", "x3"]);
        assert_eq!(artifacts.key_inputs().len(), 3);
    }

    #[test]
    fn anti_sat_associations_are_one_to_two() {
        let original = majority();
        let locked = AntiSat::new(6)
            .lock(&original, &SecretKey::from_u64(0b110_101, 6))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        for (_, keys) in &artifacts.associations {
            assert_eq!(keys.len(), 2);
        }
    }

    #[test]
    fn unlocked_circuit_is_rejected() {
        assert!(matches!(
            remove_locking_unit(&majority()),
            Err(KrattError::NoKeyInputs)
        ));
    }
}
