//! Classification of the extracted unit: is it a DFLT restore unit?
//!
//! When the QBF step fails, KRATT checks with a SAT formulation whether the
//! unit realises a comparator (or the complement of one) between the
//! protected primary inputs and their associated key inputs — the signature
//! of a DFLT restore unit. The classification decides whether the
//! subcircuit-based paths (circuit modification / structural analysis) are
//! worth running.

use crate::{KrattError, RemovalArtifacts};
use kratt_dataflow::{KeySupport, UnatenessAnalysis};
use kratt_netlist::{Aig, Circuit, GateType, NetId};
use kratt_sat::{Encoder, Lit, Solver, Var};
use std::collections::HashMap;

/// What the locking/restore unit turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitClass {
    /// The unit is exactly `AND_i (ppi_i == key_i)` — a DFLT restore unit.
    Comparator,
    /// The unit is the complement of a comparator.
    ComplementComparator,
    /// Anything else (e.g. a masked SFLT unit whose QBF solve timed out, or a
    /// Gen-Anti-SAT unit).
    Other,
}

impl UnitClass {
    /// Whether the unit looks like the restore unit of a DFLT.
    pub fn is_restore_unit(self) -> bool {
        matches!(
            self,
            UnitClass::Comparator | UnitClass::ComplementComparator
        )
    }
}

/// Classifies the unit by SAT-checking equivalence with a comparator between
/// each protected input and its associated key input.
///
/// Units whose association is not one-to-one (e.g. Anti-SAT's two keys per
/// input) are immediately classified [`UnitClass::Other`].
///
/// # Errors
///
/// Propagates netlist errors from building the reference comparator.
pub fn classify_unit(artifacts: &RemovalArtifacts) -> Result<UnitClass, KrattError> {
    let unit = &artifacts.unit;
    if artifacts.associations.is_empty()
        || artifacts
            .associations
            .iter()
            .any(|(_, keys)| keys.len() != 1)
    {
        return Ok(UnitClass::Other);
    }

    // Dataflow pre-screen, no SAT involved: a comparator depends on — and
    // is binate in — every associated key bit (flipping any bit can flip
    // the match in either direction). A unit that is structurally unate in
    // an associated key, or whose output support misses one, cannot be a
    // comparator or its complement. Structural unateness implies functional
    // unateness and structural support over-approximates functional
    // support, so both early-outs are sound.
    if let Ok(aig) = Aig::from_circuit(unit) {
        if let Some(&olit) = aig.outputs().first() {
            let support = KeySupport::compute(&aig);
            let unate = UnatenessAnalysis::compute(&aig);
            let index_of: HashMap<&str, usize> = support
                .keys()
                .enumerate()
                .map(|(index, (_, name))| (name, index))
                .collect();
            for (_, keys) in &artifacts.associations {
                if let Some(&bit) = index_of.get(keys[0].as_str()) {
                    if !support.depends_on(olit.node(), bit) || unate.of_lit(olit, bit).is_unate() {
                        return Ok(UnitClass::Other);
                    }
                }
            }
        }
    }

    // Reference comparator over the same input names.
    let mut reference = Circuit::new("reference_comparator");
    let mut eq_terms: Vec<NetId> = Vec::with_capacity(artifacts.associations.len());
    for (ppi, keys) in &artifacts.associations {
        let p = reference.add_input(ppi.clone())?;
        let k = reference.add_input(keys[0].clone())?;
        eq_terms.push(reference.add_gate_auto(GateType::Xnor, "eq", &[p, k])?);
    }
    let root = if eq_terms.len() == 1 {
        eq_terms[0]
    } else {
        // Balanced AND tree.
        let mut level = eq_terms;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(reference.add_gate_auto(GateType::And, "and", pair)?);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    };
    reference.mark_output(root);

    if units_equivalent(unit, &reference, false) {
        Ok(UnitClass::Comparator)
    } else if units_equivalent(unit, &reference, true) {
        Ok(UnitClass::ComplementComparator)
    } else {
        Ok(UnitClass::Other)
    }
}

/// SAT check: `unit ≡ reference` (or `unit ≡ NOT reference` when
/// `complemented`), sharing inputs by name; inputs of the unit that the
/// reference does not mention are universally quantified implicitly (the
/// miter must be UNSAT for all of them).
fn units_equivalent(unit: &Circuit, reference: &Circuit, complemented: bool) -> bool {
    let mut solver = Solver::new();
    let encoder = Encoder::new();
    let enc_unit = encoder.encode(&mut solver, unit, &HashMap::new());
    let shared: HashMap<String, Var> = enc_unit.inputs().iter().cloned().collect();
    let enc_ref = encoder.encode(&mut solver, reference, &shared);
    let diff = solver.new_var();
    encoder.encode_xor2(
        &mut solver,
        diff,
        enc_unit.outputs()[0],
        enc_ref.outputs()[0],
    );
    // unit != ref must be unsatisfiable; for the complemented check we ask
    // unit == ref to be unsatisfiable instead.
    let target = if complemented {
        Lit::negative(diff)
    } else {
        Lit::positive(diff)
    };
    solver.add_clause([target]);
    solver.solve().is_unsat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::removal::remove_locking_unit;
    use kratt_benchmarks::small::majority;
    use kratt_locking::{AntiSat, Cac, LockingTechnique, SarLock, SecretKey, TtLock};

    #[test]
    fn ttlock_unit_is_a_comparator() {
        let locked = TtLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b011, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let class = classify_unit(&artifacts).unwrap();
        assert_eq!(class, UnitClass::Comparator);
        assert!(class.is_restore_unit());
    }

    #[test]
    fn cac_unit_is_a_restore_unit() {
        let locked = Cac::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b110, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        // CAC's critical signal is the comparator (or its complement,
        // depending on how the MUX correction was merged).
        assert!(classify_unit(&artifacts).unwrap().is_restore_unit());
    }

    #[test]
    fn sarlock_unit_is_not_a_comparator() {
        let locked = SarLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b100, 3))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        assert_eq!(classify_unit(&artifacts).unwrap(), UnitClass::Other);
    }

    #[test]
    fn unate_unit_short_circuits_to_other() {
        // u = ppi AND key is positive unate in its associated key bit, so
        // the dataflow pre-screen rejects it before any SAT call (an
        // equivalent hand check: an AND is no XNOR comparator).
        let mut unit = Circuit::new("unate_unit");
        let p = unit.add_input("x0").unwrap();
        let k = unit.add_input("keyinput0").unwrap();
        let u = unit.add_gate(GateType::And, "u", &[p, k]).unwrap();
        unit.mark_output(u);
        let artifacts = RemovalArtifacts {
            critical_signal: "u".to_string(),
            unit: unit.clone(),
            unit_stripped: unit,
            associations: vec![("x0".to_string(), vec!["keyinput0".to_string()])],
        };
        assert_eq!(classify_unit(&artifacts).unwrap(), UnitClass::Other);
    }

    #[test]
    fn key_outside_unit_support_short_circuits_to_other() {
        // The unit output ignores its associated key entirely: support
        // pre-screen says Other without building the reference comparator.
        let mut unit = Circuit::new("no_support_unit");
        let p = unit.add_input("x0").unwrap();
        let k = unit.add_input("keyinput0").unwrap();
        let dead = unit.add_gate(GateType::Buf, "dead", &[k]).unwrap();
        let u = unit.add_gate(GateType::Not, "u", &[p]).unwrap();
        unit.mark_output(u);
        unit.mark_output(dead);
        let artifacts = RemovalArtifacts {
            critical_signal: "u".to_string(),
            unit: unit.clone(),
            unit_stripped: unit,
            associations: vec![("x0".to_string(), vec!["keyinput0".to_string()])],
        };
        assert_eq!(classify_unit(&artifacts).unwrap(), UnitClass::Other);
    }

    #[test]
    fn anti_sat_unit_is_other_because_of_double_association() {
        let locked = AntiSat::new(6)
            .lock(&majority(), &SecretKey::from_u64(0, 6))
            .unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        assert_eq!(classify_unit(&artifacts).unwrap(), UnitClass::Other);
    }
}
