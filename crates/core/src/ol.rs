//! Steps 4–5 of the flow: circuit modification and SCOPE (the oracle-less
//! path taken when the QBF formulation does not yield a key).
//!
//! * For SFLTs whose unit is not a plain comparator (e.g. Gen-Anti-SAT), the
//!   protected primary inputs are removed from the locking unit by tying them
//!   to a constant — they are irrelevant to the complementary /
//!   non-complementary functions — and SCOPE analyses the remaining key-only
//!   unit.
//! * For DFLTs, each protected primary input of the locked subcircuit is
//!   replaced by its associated key input, moving the information the FSC
//!   carries about the protected pattern onto the key inputs, and SCOPE
//!   analyses the modified subcircuit.

use crate::{KrattError, RemovalArtifacts};
use kratt_attacks::{Attack, AttackRequest, Budget, KeyGuess, ScopeAttack};
use kratt_netlist::transform::{set_inputs_constant, substitute_input};
use kratt_netlist::{Circuit, NetId};

/// Circuit modification for SFLT units: ties every protected primary input of
/// the unit to logic 0 and returns the simplified, key-only unit.
///
/// # Errors
///
/// Propagates netlist errors from the constant propagation.
pub fn modified_unit(artifacts: &RemovalArtifacts) -> Result<Circuit, KrattError> {
    let unit = &artifacts.unit;
    let assignments: Vec<(NetId, bool)> =
        unit.data_inputs().into_iter().map(|n| (n, false)).collect();
    Ok(set_inputs_constant(unit, &assignments)?)
}

/// Circuit modification for DFLT subcircuits: substitutes every protected
/// primary input by its associated key input.
///
/// # Errors
///
/// Propagates netlist errors from the substitutions.
pub fn modified_subcircuit(
    artifacts: &RemovalArtifacts,
    subcircuit: &Circuit,
) -> Result<Circuit, KrattError> {
    let mut modified = subcircuit.clone();
    for (ppi, keys) in &artifacts.associations {
        if keys.len() != 1 {
            continue;
        }
        let present = modified
            .find_net(ppi)
            .map(|n| modified.is_input(n))
            .unwrap_or(false);
        if present {
            modified = substitute_input(&modified, ppi, &keys[0])?;
        }
    }
    Ok(modified)
}

/// Runs SCOPE on the modified unit (the SFLT oracle-less path).
///
/// # Errors
///
/// Propagates SCOPE/netlist errors; a unit with no key inputs left after the
/// modification produces an empty guess instead of an error.
pub fn attack_unit_with_scope(
    artifacts: &RemovalArtifacts,
    scope: &ScopeAttack,
) -> Result<KeyGuess, KrattError> {
    let modified = modified_unit(artifacts)?;
    if modified.key_inputs().is_empty() {
        return Ok(KeyGuess::new());
    }
    scope_guess(scope, &modified)
}

/// Runs SCOPE on the modified locked subcircuit (the DFLT oracle-less path).
///
/// # Errors
///
/// Propagates SCOPE/netlist errors; a subcircuit with no key inputs after the
/// modification produces an empty guess instead of an error.
pub fn attack_subcircuit_with_scope(
    artifacts: &RemovalArtifacts,
    subcircuit: &Circuit,
    scope: &ScopeAttack,
) -> Result<KeyGuess, KrattError> {
    let modified = modified_subcircuit(artifacts, subcircuit)?;
    if modified.key_inputs().is_empty() {
        return Ok(KeyGuess::new());
    }
    scope_guess(scope, &modified)
}

/// Runs SCOPE through the unified attack API and lifts the outcome back into
/// a per-bit [`KeyGuess`].
fn scope_guess(scope: &ScopeAttack, modified: &Circuit) -> Result<KeyGuess, KrattError> {
    let run =
        scope.execute(&AttackRequest::oracle_less(modified).with_budget(Budget::unlimited()))?;
    Ok(run.outcome.as_guess(&modified.key_input_names()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::extract_locked_subcircuit;
    use crate::removal::remove_locking_unit;
    use kratt_attacks::score_guess;
    use kratt_benchmarks::arith::ripple_carry_adder;
    use kratt_locking::{GenAntiSat, LockingTechnique, SecretKey, TtLock};

    #[test]
    fn modified_unit_drops_protected_inputs() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1101_0110, 8);
        let locked = GenAntiSat::new(8).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let modified = modified_unit(&artifacts).unwrap();
        assert!(modified.data_inputs().is_empty(), "PPIs must be gone");
        assert_eq!(modified.key_inputs().len(), 8, "all key inputs must remain");
    }

    #[test]
    fn modified_subcircuit_replaces_ppis_with_keys() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1001, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        let modified = modified_subcircuit(&artifacts, &subcircuit).unwrap();
        for ppi in artifacts.protected_inputs() {
            assert!(
                modified
                    .find_net(&ppi)
                    .map(|n| !modified.is_input(n))
                    .unwrap_or(true),
                "protected input {ppi} should no longer be a primary input"
            );
        }
        assert_eq!(modified.key_inputs().len(), 4);
    }

    #[test]
    fn dflt_scope_guess_is_partial_but_nonempty() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b0101, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
        let guess =
            attack_subcircuit_with_scope(&artifacts, &subcircuit, &ScopeAttack::new()).unwrap();
        let (cdk, dk) = score_guess(&locked, &guess);
        assert!(dk > 0, "the modified subcircuit should be informative");
        assert!(cdk <= dk);
    }

    #[test]
    fn gen_anti_sat_scope_guess_covers_all_keys() {
        let original = ripple_carry_adder(4).unwrap();
        let secret = SecretKey::from_u64(0b1101_1001, 8);
        let locked = GenAntiSat::new(8).lock(&original, &secret).unwrap();
        let artifacts = remove_locking_unit(&locked.circuit).unwrap();
        let guess = attack_unit_with_scope(&artifacts, &ScopeAttack::new()).unwrap();
        let (_, dk) = score_guess(&locked, &guess);
        assert!(
            dk >= 4,
            "most key bits should be deciphered on the key-only unit, got {dk}"
        );
    }
}
