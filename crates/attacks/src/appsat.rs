//! AppSAT: the approximate SAT-attack variant (Shamsi et al., HOST'17).
//!
//! AppSAT interleaves the standard DIP loop with random-sampling rounds: the
//! current candidate key is simulated against the oracle on random patterns;
//! disagreeing patterns are added as IO constraints, and when the sampled
//! error drops below a threshold the attack stops early and returns the
//! (approximately correct) candidate. On point-function locking this
//! terminates quickly with a key that is wrong on at most a handful of
//! patterns — the "approximate functional recovery" behaviour the paper
//! discusses — while on traditional locking it behaves like the exact attack.

use crate::engine::{Attack, AttackRequest, Budget, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{AttackBudget, AttackRun, OgOutcome, OgReport, StepTiming};
use crate::sat_attack::{og_run, DipEngine, DipSearch, KeyExtraction};
use kratt_locking::SecretKey;
use kratt_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The AppSAT attack.
#[derive(Debug, Clone)]
pub struct AppSatAttack {
    /// Resource budget; an exhausted budget reports `OoT` like the paper.
    pub budget: AttackBudget,
    /// A sampling round runs after every `settle_every` DIP iterations.
    pub settle_every: usize,
    /// Number of random patterns simulated per sampling round.
    pub sample_patterns: usize,
    /// Maximum fraction of sampled patterns allowed to disagree for the
    /// candidate to be accepted as the approximate key.
    pub error_threshold: f64,
    /// RNG seed for the sampling rounds.
    pub seed: u64,
}

impl Default for AppSatAttack {
    fn default() -> Self {
        AppSatAttack {
            budget: AttackBudget::default(),
            settle_every: 4,
            sample_patterns: 64,
            error_threshold: 0.0,
            seed: 0,
        }
    }
}

impl AppSatAttack {
    /// AppSAT with the default parameters.
    pub fn new() -> Self {
        AppSatAttack::default()
    }

    /// AppSAT with an explicit budget and otherwise default parameters.
    pub fn with_budget(budget: AttackBudget) -> Self {
        AppSatAttack {
            budget,
            ..Default::default()
        }
    }

    /// The DIP/sampling loop under an explicit deadline.
    /// [`Attack::execute`] is the public entry point.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
        budget: &Budget,
        deadline: Deadline,
    ) -> Result<OgReport, AttackError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut engine = DipEngine::new(locked, oracle, budget, deadline.clone())?;
        let mut iterations = 0usize;
        let mut last_candidate: Vec<bool>;
        loop {
            if deadline.expired()
                || iterations >= budget.max_iterations
                || budget.oracle_queries_exhausted(engine.oracle_queries())
            {
                return Ok(OgReport {
                    outcome: OgOutcome::OutOfTime,
                    runtime: deadline.elapsed(),
                    iterations,
                    oracle_queries: engine.oracle_queries(),
                });
            }
            match engine.find_dip() {
                DipSearch::Found { dip, candidate_key } => {
                    let outputs = engine.query_oracle(&dip)?;
                    engine.constrain(&dip, &outputs);
                    last_candidate = candidate_key;
                    iterations += 1;
                }
                DipSearch::Exhausted => {
                    let outcome = match engine.extract_key(budget)? {
                        KeyExtraction::Key(key) => OgOutcome::Key(key),
                        KeyExtraction::NoneConsistent => {
                            OgOutcome::Key(SecretKey::from_bits(vec![
                                false;
                                engine.key_names().len()
                            ]))
                        }
                        KeyExtraction::Budget => OgOutcome::OutOfTime,
                    };
                    return Ok(OgReport {
                        outcome,
                        runtime: deadline.elapsed(),
                        iterations,
                        oracle_queries: engine.oracle_queries(),
                    });
                }
                DipSearch::Budget => {
                    return Ok(OgReport {
                        outcome: OgOutcome::OutOfTime,
                        runtime: deadline.elapsed(),
                        iterations,
                        oracle_queries: engine.oracle_queries(),
                    });
                }
            }

            // Sampling / settlement round: the candidate key is checked on
            // all sampled patterns in packed 64-wide sweeps — one
            // bit-parallel pass over the locked netlist and one batched
            // oracle query instead of `sample_patterns` scalar round trips.
            if iterations.is_multiple_of(self.settle_every) && !last_candidate.is_empty() {
                let candidate = last_candidate.clone();
                let patterns: Vec<Vec<bool>> = (0..self.sample_patterns)
                    .map(|_| {
                        (0..engine.num_data_inputs())
                            .map(|_| rng.gen_bool(0.5))
                            .collect()
                    })
                    .collect();
                let locked_rows = engine.simulate_locked_batch(&candidate, &patterns)?;
                let oracle_rows = engine.query_oracle_batch(&patterns)?;
                let mut disagreements = 0usize;
                let mut failing: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
                for ((pattern, locked_out), oracle_out) in
                    patterns.into_iter().zip(locked_rows).zip(oracle_rows)
                {
                    if locked_out != oracle_out {
                        disagreements += 1;
                        failing.push((pattern, oracle_out));
                    }
                }
                let error = disagreements as f64 / self.sample_patterns as f64;
                for (pattern, outputs) in &failing {
                    engine.constrain(pattern, outputs);
                }
                if error <= self.error_threshold {
                    return Ok(OgReport {
                        outcome: OgOutcome::Key(SecretKey::from_bits(candidate)),
                        runtime: deadline.elapsed(),
                        iterations,
                        oracle_queries: engine.oracle_queries(),
                    });
                }
            }
        }
    }
}

impl Attack for AppSatAttack {
    fn name(&self) -> &'static str {
        "appsat"
    }

    fn supports(&self, model: ThreatModel) -> bool {
        model == ThreatModel::OracleGuided
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let oracle = request.require_oracle(self.name())?;
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let report = self.run_with_deadline(request.locked, oracle, &request.budget, deadline)?;
        let steps = vec![StepTiming::new("dip-sampling-loop", report.runtime)];
        Ok(og_run(self.name(), report, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, RandomXorLocking, SarLock, SecretKey};
    use kratt_netlist::{Circuit, GateType, NetId};
    use std::time::Duration;

    /// Runs the DIP/sampling loop directly to keep the [`OgReport`]
    /// assertions; external callers go through [`Attack::execute`].
    fn report_of(
        attack: &AppSatAttack,
        locked: &Circuit,
        oracle: &Oracle,
    ) -> Result<OgReport, AttackError> {
        attack.run_with_deadline(locked, oracle, &attack.budget, attack.budget.start())
    }

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn appsat_recovers_rll_exactly() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1101, 4);
        let locked = RandomXorLocking::new(4, 21)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&AppSatAttack::new(), &locked.circuit, &oracle).unwrap();
        let key = report.outcome.key().expect("RLL must be broken").clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn appsat_returns_an_approximate_key_for_a_point_function() {
        // On SARLock an approximate key is accepted once the sampled error is
        // zero; the returned key may corrupt at most one input pattern.
        let original = adder4();
        let secret = SecretKey::from_u64(0b101011, 6);
        let locked = SarLock::new(6).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&AppSatAttack::new(), &locked.circuit, &oracle).unwrap();
        let key = report
            .outcome
            .key()
            .expect("AppSAT should settle on a key")
            .clone();
        let unlocked = locked.apply_key(&key).unwrap();
        // Count differing patterns: a wrong-but-approximate SARLock key
        // corrupts at most one protected-input pattern, i.e. at most
        // 2^(free inputs) = 2^(9-6) = 8 of the 512 full input patterns.
        let sim_a = kratt_netlist::sim::Simulator::new(&original).unwrap();
        let sim_b = kratt_netlist::sim::Simulator::new(&unlocked).unwrap();
        let differing = (0u64..(1 << 9))
            .filter(|&p| {
                let bits: Vec<bool> = (0..9).map(|i| p >> i & 1 != 0).collect();
                sim_a.run(&bits).unwrap() != sim_b.run(&bits).unwrap()
            })
            .count();
        assert!(
            differing <= 8,
            "approximate key corrupts {differing} patterns"
        );
    }

    #[test]
    fn appsat_respects_its_budget() {
        let original = adder4();
        let secret = SecretKey::from_u64(0x0f0 & 0x1ff, 9);
        let locked = SarLock::new(9).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let attack = AppSatAttack {
            budget: AttackBudget {
                time_limit: Some(Duration::from_millis(1)),
                max_iterations: 1,
                ..AttackBudget::default()
            },
            settle_every: 1000,
            ..Default::default()
        };
        let report = report_of(&attack, &locked.circuit, &oracle).unwrap();
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
    }
}
