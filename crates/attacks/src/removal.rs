//! The removal attack against SFLTs (Yasin et al., TETC'20).
//!
//! The attack identifies the critical signal of the locking unit, strips the
//! unit's logic cone and ties the exposed signal to the constant it takes
//! under the correct key, recovering the original circuit *without* learning
//! the key — the limitation that motivates KRATT's QBF formulation. Against
//! DFLTs the same procedure only recovers the functionality-stripped circuit,
//! which still differs from the original on the protected pattern.

use crate::engine::{Attack, AttackRequest, Budget, CostClass, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{AttackOutcome, AttackRun, StepTiming};
use crate::structure::find_critical_signal;
use kratt_netlist::transform::{remove_cone, set_inputs_constant};
use kratt_netlist::{Circuit, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Result of a removal attack.
#[derive(Debug, Clone)]
pub struct RemovalReport {
    /// The recovered circuit (key inputs removed, critical signal tied off).
    pub recovered: Circuit,
    /// Name of the critical signal that was removed.
    pub critical_signal: String,
    /// The constant the critical signal was tied to.
    pub constant: bool,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// The removal attack. Needs oracle access only to decide which constant the
/// stripped critical signal should be tied to (a handful of queries).
#[derive(Debug, Clone)]
pub struct RemovalAttack {
    /// Number of random patterns used to pick the constant.
    pub patterns: usize,
    /// RNG seed for those patterns.
    pub seed: u64,
}

impl Default for RemovalAttack {
    fn default() -> Self {
        RemovalAttack {
            patterns: 32,
            seed: 0,
        }
    }
}

impl RemovalAttack {
    /// Removal attack with default parameters.
    pub fn new() -> Self {
        RemovalAttack::default()
    }

    /// The attack under an explicit budget: `Ok(None)` means the deadline or
    /// the oracle-query cap was hit before both tie-off constants were
    /// evaluated (checked between the steps, so a single agreement sweep of
    /// `patterns` queries is the enforcement granularity).
    fn run_within_budget(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
        budget: &Budget,
        deadline: Deadline,
    ) -> Result<Option<RemovalReport>, AttackError> {
        let start = Instant::now();
        if locked.key_inputs().is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        let base_queries = oracle.queries();
        let cs1 = find_critical_signal(locked).ok_or(AttackError::NoCriticalSignal)?;
        let cs1_name = locked.net_name(cs1).to_string();
        let stripped = remove_cone(locked, cs1)?;

        // Tie the exposed critical signal and the now-dangling key inputs to
        // constants; pick the critical-signal constant that agrees with the
        // oracle on random patterns.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Circuit, bool, usize)> = None;
        for constant in [false, true] {
            if deadline.expired()
                || budget.oracle_queries_exhausted(oracle.queries().saturating_sub(base_queries))
            {
                return Ok(None);
            }
            let candidate = self.tie_off(&stripped, &cs1_name, constant)?;
            let agreement = self.agreement(&candidate, oracle, &mut rng)?;
            let better = match &best {
                None => true,
                Some((_, _, best_agreement)) => agreement > *best_agreement,
            };
            if better {
                best = Some((candidate, constant, agreement));
            }
        }
        let (recovered, constant, _) = best.expect("two candidates evaluated");
        Ok(Some(RemovalReport {
            recovered,
            critical_signal: cs1_name,
            constant,
            runtime: start.elapsed(),
        }))
    }

    fn tie_off(
        &self,
        stripped: &Circuit,
        cs1_name: &str,
        constant: bool,
    ) -> Result<Circuit, AttackError> {
        let mut assignments: Vec<(NetId, bool)> = Vec::new();
        let cs1 = stripped
            .find_net(cs1_name)
            .ok_or_else(|| AttackError::InterfaceMismatch(cs1_name.to_string()))?;
        assignments.push((cs1, constant));
        for key in stripped.key_inputs() {
            assignments.push((key, false));
        }
        Ok(set_inputs_constant(stripped, &assignments)?)
    }

    fn agreement(
        &self,
        candidate: &Circuit,
        oracle: &Oracle,
        rng: &mut StdRng,
    ) -> Result<usize, AttackError> {
        let sim = kratt_netlist::sim::Simulator::new(candidate)?;
        let names: Vec<String> = candidate
            .inputs()
            .iter()
            .map(|&n| candidate.net_name(n).to_string())
            .collect();
        let mut agreement = 0usize;
        for _ in 0..self.patterns {
            let pattern: Vec<bool> = (0..names.len()).map(|_| rng.gen_bool(0.5)).collect();
            let assignment: Vec<(&str, bool)> = names
                .iter()
                .map(String::as_str)
                .zip(pattern.iter().copied())
                .collect();
            let oracle_out = oracle.query_by_name(&assignment)?;
            let candidate_out = sim.run(&pattern)?;
            if oracle_out == candidate_out {
                agreement += 1;
            }
        }
        Ok(agreement)
    }
}

impl Attack for RemovalAttack {
    fn name(&self) -> &'static str {
        "removal"
    }

    /// Choosing the tie-off constant needs a handful of oracle queries, so
    /// the attack is oracle-guided only.
    fn supports(&self, model: ThreatModel) -> bool {
        model == ThreatModel::OracleGuided
    }

    /// One structural cone strip plus two `patterns`-query agreement sweeps —
    /// no solver in the loop, so the scheduler treats it as interleavable.
    fn cost_class(&self) -> CostClass {
        CostClass::Cheap
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let oracle = request.require_oracle(self.name())?;
        let deadline = request.deadline();
        let base_queries = oracle.queries();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let Some(report) =
            self.run_within_budget(request.locked, oracle, &request.budget, deadline.clone())?
        else {
            let mut run = AttackRun::out_of_budget(self.name(), request.threat_model());
            run.runtime = deadline.elapsed();
            run.oracle_queries = oracle.queries().saturating_sub(base_queries);
            return Ok(run);
        };
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: request.threat_model(),
            // Removal recovers the circuit, never the key — the very
            // limitation the paper's QBF formulation addresses.
            outcome: AttackOutcome::RecoveredCircuit(report.recovered),
            runtime: report.runtime,
            iterations: self.patterns,
            oracle_queries: oracle.queries().saturating_sub(base_queries),
            steps: vec![StepTiming::new(
                format!("strip-{}", report.critical_signal),
                report.runtime,
            )],
            members: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{AntiSat, LockingTechnique, SarLock, SecretKey, TtLock};
    use kratt_netlist::sim::exhaustively_equivalent;
    use kratt_netlist::{GateType, NetId};

    /// Runs the attack unbudgeted to keep the rich [`RemovalReport`]
    /// assertions; external callers go through [`Attack::execute`].
    fn report_of(
        attack: &RemovalAttack,
        locked: &Circuit,
        oracle: &Oracle,
    ) -> Result<RemovalReport, AttackError> {
        let report = attack
            .run_within_budget(locked, oracle, &Budget::unlimited(), Deadline::unlimited())?
            .expect("an unlimited budget never runs out");
        Ok(report)
    }

    fn adder3() -> Circuit {
        let mut c = Circuit::new("adder3");
        let a: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..3)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..3 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn removal_recovers_the_original_from_sarlock() {
        let original = adder3();
        let secret = SecretKey::from_u64(0b01101, 5);
        let locked = SarLock::new(5).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&RemovalAttack::new(), &locked.circuit, &oracle).unwrap();
        assert!(exhaustively_equivalent(&original, &report.recovered).unwrap());
        assert_eq!(report.recovered.key_inputs().len(), 0);
    }

    #[test]
    fn removal_recovers_the_original_from_anti_sat() {
        let original = adder3();
        let secret = SecretKey::from_u64(0b101_110, 6);
        let locked = AntiSat::new(6).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&RemovalAttack::new(), &locked.circuit, &oracle).unwrap();
        assert!(exhaustively_equivalent(&original, &report.recovered).unwrap());
    }

    #[test]
    fn removal_only_recovers_the_fsc_from_a_dflt() {
        // Against TTLock, stripping the restore unit leaves the perturbed
        // circuit: it differs from the original on exactly the protected
        // pattern — the paper's argument for why DFLTs resist removal.
        let original = adder3();
        let secret = SecretKey::from_u64(0b1011, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&RemovalAttack::new(), &locked.circuit, &oracle).unwrap();
        assert!(!exhaustively_equivalent(&original, &report.recovered).unwrap());
        // And the difference is exactly the protected-input pattern: one
        // assignment of the 4 protected inputs, i.e. 2^(7-4) = 8 of the 128
        // full input patterns (the FSC behaviour of the paper's Fig. 5(d)).
        let sim_a = kratt_netlist::sim::Simulator::new(&original).unwrap();
        let sim_b = kratt_netlist::sim::Simulator::new(&report.recovered).unwrap();
        let differing = (0u64..(1 << 7))
            .filter(|&p| {
                let bits: Vec<bool> = (0..7).map(|i| p >> i & 1 != 0).collect();
                sim_a.run(&bits).unwrap() != sim_b.run(&bits).unwrap()
            })
            .count();
        assert_eq!(differing, 8);
    }

    #[test]
    fn unlocked_circuit_is_an_error() {
        let original = adder3();
        let oracle = Oracle::new(original.clone()).unwrap();
        assert!(matches!(
            report_of(&RemovalAttack::new(), &original, &oracle),
            Err(AttackError::NoKeyInputs)
        ));
    }
}
