//! The SCOPE oracle-less attack: synthesis-based constant propagation.
//!
//! SCOPE analyses one key bit at a time: the locked netlist is re-synthesised
//! (here: constant-propagated and pruned) once with the bit tied to 0 and
//! once with it tied to 1, and structural features of the two results — gate
//! count, literal count, logic depth — are compared. If the two assignments
//! are structurally indistinguishable the bit is left undeciphered; if they
//! differ, the attack guesses the value whose circuit retained *more*
//! structure (the wrong value of a hard-wired comparison collapses the
//! corruption logic, which is exactly the asymmetry SCOPE keys on).
//!
//! As in the paper, SCOPE alone makes weak or no guesses on most
//! SAT-resilient techniques; its value inside KRATT comes from running it on
//! the *modified* locking unit / locked subcircuit instead of the full
//! netlist.

use crate::engine::{Attack, AttackRequest, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::report::{AttackOutcome, AttackRun, KeyGuess, OlReport, StepTiming};
use kratt_netlist::analysis::{stats, CircuitStats};
use kratt_netlist::transform::set_inputs_constant;
use kratt_netlist::{Circuit, NetId};

/// Structural feature vector SCOPE extracts per key-bit assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeFeatures {
    /// Number of gates after constant propagation.
    pub gates: usize,
    /// Number of gate input pins (area proxy).
    pub literals: usize,
    /// Logic depth (delay proxy).
    pub depth: usize,
}

impl From<CircuitStats> for ScopeFeatures {
    fn from(s: CircuitStats) -> Self {
        ScopeFeatures {
            gates: s.gates,
            literals: s.literals,
            depth: s.depth,
        }
    }
}

/// The SCOPE attack.
#[derive(Debug, Clone, Default)]
pub struct ScopeAttack {
    /// Minimum gate-count difference between the two assignments for the bit
    /// to be considered deciphered. 0 means "any difference".
    pub margin: usize,
}

impl ScopeAttack {
    /// SCOPE with the default decision margin (any structural difference
    /// produces a guess).
    pub fn new() -> Self {
        ScopeAttack { margin: 0 }
    }

    /// Runs SCOPE on a locked netlist and returns the per-bit guesses.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NoKeyInputs`] if the netlist has no key inputs,
    /// or a netlist error if it cannot be simplified.
    pub fn run(&self, locked: &Circuit) -> Result<OlReport, AttackError> {
        let (report, _) = self.run_with_deadline(locked, Deadline::unlimited(), usize::MAX)?;
        Ok(report)
    }

    /// The per-bit analysis under an explicit deadline and iteration cap
    /// (one iteration = one analysed key bit); also returns the number of
    /// key bits analysed before a limit (or the end of the key) was reached.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        deadline: Deadline,
        max_bits: usize,
    ) -> Result<(OlReport, usize), AttackError> {
        let key_inputs = locked.key_inputs();
        if key_inputs.is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        let mut guess = KeyGuess::new();
        let mut analysed = 0usize;
        for &key in &key_inputs {
            if deadline.expired() || analysed >= max_bits {
                break;
            }
            analysed += 1;
            if let Some(value) = self.analyze_bit(locked, key)? {
                guess.set(locked.net_name(key), value);
            }
        }
        Ok((
            OlReport {
                guess,
                runtime: deadline.elapsed(),
            },
            analysed,
        ))
    }

    /// Analyses a single key bit; returns the guessed value or `None` when
    /// the two assignments are structurally indistinguishable.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit cannot be simplified.
    pub fn analyze_bit(&self, locked: &Circuit, key: NetId) -> Result<Option<bool>, AttackError> {
        let features0 = self.features_with(locked, key, false)?;
        let features1 = self.features_with(locked, key, true)?;
        if features0 == features1 {
            return Ok(None);
        }
        let difference = features0.gates.abs_diff(features1.gates);
        if difference < self.margin {
            return Ok(None);
        }
        // Guess the value that keeps more structure alive; break ties on
        // literal count, then depth.
        let ordering = features1
            .gates
            .cmp(&features0.gates)
            .then(features1.literals.cmp(&features0.literals))
            .then(features1.depth.cmp(&features0.depth));
        match ordering {
            std::cmp::Ordering::Greater => Ok(Some(true)),
            std::cmp::Ordering::Less => Ok(Some(false)),
            std::cmp::Ordering::Equal => Ok(None),
        }
    }

    fn features_with(
        &self,
        locked: &Circuit,
        key: NetId,
        value: bool,
    ) -> Result<ScopeFeatures, AttackError> {
        let simplified = set_inputs_constant(locked, &[(key, value)])?;
        Ok(ScopeFeatures::from(stats(&simplified)?))
    }
}

impl Attack for ScopeAttack {
    fn name(&self) -> &'static str {
        "scope"
    }

    /// SCOPE never touches the oracle, so it accepts requests under either
    /// threat model.
    fn supports(&self, _model: ThreatModel) -> bool {
        true
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let deadline = request.budget.start();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let (report, analysed) =
            self.run_with_deadline(request.locked, deadline, request.budget.max_iterations)?;
        // A deadline hit mid-key means the partial guess is incomplete
        // evidence, not a result: report out-of-budget like the others.
        let outcome = if analysed < request.locked.key_inputs().len() {
            AttackOutcome::OutOfBudget
        } else {
            AttackOutcome::PartialGuess(report.guess)
        };
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: request.threat_model(),
            outcome,
            runtime: report.runtime,
            iterations: analysed,
            oracle_queries: 0,
            steps: vec![StepTiming::new("per-bit-analysis", report.runtime)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::score_guess;
    use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};
    use kratt_netlist::GateType;

    /// A somewhat larger host so the locking unit is not the whole circuit.
    fn host() -> Circuit {
        let mut c = Circuit::new("host");
        let inputs: Vec<NetId> = (0..8)
            .map(|i| c.add_input(format!("g{i}")).unwrap())
            .collect();
        let mut prev = inputs[0];
        for (i, &input) in inputs.iter().enumerate().skip(1) {
            let ty = if i % 2 == 0 {
                GateType::Nand
            } else {
                GateType::Xor
            };
            prev = c.add_gate(ty, format!("h{i}"), &[prev, input]).unwrap();
        }
        let extra = c
            .add_gate(GateType::Nor, "extra", &[inputs[0], inputs[7]])
            .unwrap();
        let out = c.add_gate(GateType::Or, "out", &[prev, extra]).unwrap();
        c.mark_output(out);
        c.mark_output(extra);
        c
    }

    #[test]
    fn scope_recovers_sarlock_keys_from_the_mask_asymmetry() {
        let secret = SecretKey::from_u64(0b10110101, 8);
        let locked = SarLock::new(8).lock(&host(), &secret).unwrap();
        let report = ScopeAttack::new().run(&locked.circuit).unwrap();
        let (cdk, dk) = score_guess(&locked, &report.guess);
        assert_eq!(
            dk, 8,
            "SARLock's hard-wired mask should make every bit decidable"
        );
        assert_eq!(cdk, 8, "every deciphered bit should be correct");
    }

    #[test]
    fn scope_is_only_partially_correct_on_a_dflt() {
        // TTLock's restore unit is a plain comparator: the only asymmetry a
        // per-bit constant propagation sees is the inverter on one of the two
        // assignments, so SCOPE's guesses are biased and only about half of
        // them are correct — the weak-standalone-SCOPE behaviour the paper
        // reports on DFLTs (Table II).
        let secret = SecretKey::from_u64(0b0110_1001, 8);
        let locked = TtLock::new(8).lock(&host(), &secret).unwrap();
        let report = ScopeAttack::new().run(&locked.circuit).unwrap();
        let (cdk, dk) = score_guess(&locked, &report.guess);
        assert!(dk > 0, "the inverter asymmetry should produce guesses");
        assert!(
            cdk < dk,
            "standalone SCOPE must not fully recover a DFLT key"
        );
    }

    #[test]
    fn no_key_inputs_is_an_error() {
        assert!(matches!(
            ScopeAttack::new().run(&host()),
            Err(AttackError::NoKeyInputs)
        ));
    }

    #[test]
    fn margin_suppresses_weak_guesses() {
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = SarLock::new(4).lock(&host(), &secret).unwrap();
        let strict = ScopeAttack { margin: usize::MAX };
        let report = strict.run(&locked.circuit).unwrap();
        assert_eq!(report.guess.deciphered(), 0);
    }
}
