//! The SCOPE oracle-less attack: synthesis-based constant propagation.
//!
//! SCOPE analyses one key bit at a time: the locked netlist is
//! constant-propagated once with the bit tied to 0 and once with it tied to
//! 1, and structural features of the two results — gate count, literal
//! count, logic depth — are compared. If the two assignments are
//! structurally indistinguishable the bit is left undeciphered; if they
//! differ, the attack guesses the value whose circuit retained *more*
//! structure (the wrong value of a hard-wired comparison collapses the
//! corruption logic, which is exactly the asymmetry SCOPE keys on).
//!
//! Two engines compute the per-bit feature vectors:
//!
//! * [`ScopeEngine::Dataflow`] (the default, registered as `"scope"`) runs
//!   two ternary cofactor analyses per bit over a shared
//!   [`ScopePlan`](crate::scope_replay::ScopePlan) and replays the
//!   resynthesis decisions virtually — no circuit is ever built. The
//!   features are identical to the resynthesis engine's by construction
//!   (see [`crate::scope_replay`]), at a fraction of the cost; the speedup
//!   is tracked as the `scope_aig` kernel in the benchmark suite.
//! * [`ScopeEngine::Resynthesis`] (registered as `"scope-resynth"`) is the
//!   legacy path: a full [`set_inputs_constant`] rebuild and a stats pass
//!   per cofactor.
//!
//! As in the paper, SCOPE alone makes weak or no guesses on most
//! SAT-resilient techniques; its value inside KRATT comes from running it on
//! the *modified* locking unit / locked subcircuit instead of the full
//! netlist.

use crate::engine::{Attack, AttackRequest, CostClass, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::report::{AttackOutcome, AttackRun, KeyGuess, OlReport, StepTiming};
use crate::scope_replay::ScopePlan;
use kratt_netlist::analysis::{stats, CircuitStats};
use kratt_netlist::transform::set_inputs_constant;
use kratt_netlist::{Circuit, NetId};

/// Structural feature vector SCOPE extracts per key-bit assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeFeatures {
    /// Number of gates after constant propagation.
    pub gates: usize,
    /// Number of gate input pins (area proxy).
    pub literals: usize,
    /// Logic depth (delay proxy).
    pub depth: usize,
}

impl From<CircuitStats> for ScopeFeatures {
    fn from(s: CircuitStats) -> Self {
        ScopeFeatures {
            gates: s.gates,
            literals: s.literals,
            depth: s.depth,
        }
    }
}

/// Which kernel computes the per-bit feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScopeEngine {
    /// Ternary cofactor analysis plus a virtual resynthesis replay over a
    /// shared plan: same features, no circuit construction.
    #[default]
    Dataflow,
    /// The legacy path: one full constant-propagation rebuild per cofactor.
    Resynthesis,
}

/// The SCOPE attack.
#[derive(Debug, Clone, Default)]
pub struct ScopeAttack {
    /// Minimum gate-count difference between the two assignments for the bit
    /// to be considered deciphered. 0 means "any difference".
    pub margin: usize,
    /// The feature kernel (dataflow replay by default).
    pub engine: ScopeEngine,
}

impl ScopeAttack {
    /// SCOPE with the default decision margin (any structural difference
    /// produces a guess) and the dataflow kernel.
    pub fn new() -> Self {
        ScopeAttack {
            margin: 0,
            engine: ScopeEngine::Dataflow,
        }
    }

    /// SCOPE on the legacy resynthesis kernel (the `scope-resynth`
    /// baseline) — kept for cross-validation and benchmarking.
    pub fn resynthesis() -> Self {
        ScopeAttack {
            margin: 0,
            engine: ScopeEngine::Resynthesis,
        }
    }

    /// The per-bit analysis under an explicit deadline and iteration cap
    /// (one iteration = one analysed key bit); also returns the number of
    /// key bits analysed before a limit (or the end of the key) was reached.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        deadline: Deadline,
        max_bits: usize,
    ) -> Result<(OlReport, usize), AttackError> {
        let key_inputs = locked.key_inputs();
        if key_inputs.is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        // The dataflow kernel shares one plan (one topological sort) across
        // all cofactor runs of the key sweep.
        let plan = match self.engine {
            ScopeEngine::Dataflow => Some(ScopePlan::new(locked)?),
            ScopeEngine::Resynthesis => None,
        };
        let mut guess = KeyGuess::new();
        let mut analysed = 0usize;
        for &key in &key_inputs {
            if deadline.expired() || analysed >= max_bits {
                break;
            }
            analysed += 1;
            let value = match &plan {
                Some(plan) => self.decide(
                    plan.features(&[(key, false)]),
                    plan.features(&[(key, true)]),
                ),
                None => self.analyze_bit(locked, key)?,
            };
            if let Some(value) = value {
                guess.set(locked.net_name(key), value);
            }
        }
        Ok((
            OlReport {
                guess,
                runtime: deadline.elapsed(),
            },
            analysed,
        ))
    }

    /// Analyses a single key bit; returns the guessed value or `None` when
    /// the two assignments are structurally indistinguishable.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit cannot be simplified.
    pub fn analyze_bit(&self, locked: &Circuit, key: NetId) -> Result<Option<bool>, AttackError> {
        let (features0, features1) = match self.engine {
            ScopeEngine::Dataflow => {
                let plan = ScopePlan::new(locked)?;
                (
                    plan.features(&[(key, false)]),
                    plan.features(&[(key, true)]),
                )
            }
            ScopeEngine::Resynthesis => (
                Self::resynthesis_features(locked, key, false)?,
                Self::resynthesis_features(locked, key, true)?,
            ),
        };
        Ok(self.decide(features0, features1))
    }

    /// The guess the margin-aware comparison makes from a cofactor pair.
    fn decide(&self, features0: ScopeFeatures, features1: ScopeFeatures) -> Option<bool> {
        if features0 == features1 {
            return None;
        }
        let difference = features0.gates.abs_diff(features1.gates);
        if difference < self.margin {
            return None;
        }
        // Guess the value that keeps more structure alive; break ties on
        // literal count, then depth.
        let ordering = features1
            .gates
            .cmp(&features0.gates)
            .then(features1.literals.cmp(&features0.literals))
            .then(features1.depth.cmp(&features0.depth));
        match ordering {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The legacy feature extraction: a full constant-propagation rebuild
    /// and a stats pass. Public so the cross-validation suite can compare
    /// it against [`ScopePlan::features`] directly.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit cannot be simplified.
    pub fn resynthesis_features(
        locked: &Circuit,
        key: NetId,
        value: bool,
    ) -> Result<ScopeFeatures, AttackError> {
        let simplified = set_inputs_constant(locked, &[(key, value)])?;
        Ok(ScopeFeatures::from(stats(&simplified)?))
    }
}

impl Attack for ScopeAttack {
    fn name(&self) -> &'static str {
        match self.engine {
            ScopeEngine::Dataflow => "scope",
            ScopeEngine::Resynthesis => "scope-resynth",
        }
    }

    /// SCOPE never touches the oracle, so it accepts requests under either
    /// threat model.
    fn supports(&self, _model: ThreatModel) -> bool {
        true
    }

    /// Simulation-bound per-bit analysis — milliseconds, not solver time —
    /// so the scheduler interleaves it through the injector.
    fn cost_class(&self) -> CostClass {
        CostClass::Cheap
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let (report, analysed) =
            self.run_with_deadline(request.locked, deadline, request.budget.max_iterations)?;
        // A deadline hit mid-key means the partial guess is incomplete
        // evidence, not a result: report out-of-budget like the others.
        let outcome = if analysed < request.locked.key_inputs().len() {
            AttackOutcome::OutOfBudget
        } else {
            AttackOutcome::PartialGuess(report.guess)
        };
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: request.threat_model(),
            outcome,
            runtime: report.runtime,
            iterations: analysed,
            oracle_queries: 0,
            steps: vec![StepTiming::new("per-bit-analysis", report.runtime)],
            members: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Budget;
    use crate::report::score_guess;
    use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};
    use kratt_netlist::GateType;

    /// Drives SCOPE through the unified API (the only entry point) and
    /// unwraps the full-key partial guess an unlimited budget guarantees.
    fn guess_of(attack: &ScopeAttack, locked: &Circuit) -> KeyGuess {
        let run = attack
            .execute(&AttackRequest::oracle_less(locked).with_budget(Budget::unlimited()))
            .unwrap();
        match run.outcome {
            AttackOutcome::PartialGuess(guess) => guess,
            other => panic!("expected a partial guess, got {}", other.kind()),
        }
    }

    /// A somewhat larger host so the locking unit is not the whole circuit.
    fn host() -> Circuit {
        let mut c = Circuit::new("host");
        let inputs: Vec<NetId> = (0..8)
            .map(|i| c.add_input(format!("g{i}")).unwrap())
            .collect();
        let mut prev = inputs[0];
        for (i, &input) in inputs.iter().enumerate().skip(1) {
            let ty = if i % 2 == 0 {
                GateType::Nand
            } else {
                GateType::Xor
            };
            prev = c.add_gate(ty, format!("h{i}"), &[prev, input]).unwrap();
        }
        let extra = c
            .add_gate(GateType::Nor, "extra", &[inputs[0], inputs[7]])
            .unwrap();
        let out = c.add_gate(GateType::Or, "out", &[prev, extra]).unwrap();
        c.mark_output(out);
        c.mark_output(extra);
        c
    }

    #[test]
    fn scope_recovers_sarlock_keys_from_the_mask_asymmetry() {
        let secret = SecretKey::from_u64(0b10110101, 8);
        let locked = SarLock::new(8).lock(&host(), &secret).unwrap();
        let guess = guess_of(&ScopeAttack::new(), &locked.circuit);
        let (cdk, dk) = score_guess(&locked, &guess);
        assert_eq!(
            dk, 8,
            "SARLock's hard-wired mask should make every bit decidable"
        );
        assert_eq!(cdk, 8, "every deciphered bit should be correct");
    }

    #[test]
    fn scope_is_only_partially_correct_on_a_dflt() {
        // TTLock's restore unit is a plain comparator: the only asymmetry a
        // per-bit constant propagation sees is the inverter on one of the two
        // assignments, so SCOPE's guesses are biased and only about half of
        // them are correct — the weak-standalone-SCOPE behaviour the paper
        // reports on DFLTs (Table II).
        let secret = SecretKey::from_u64(0b0110_1001, 8);
        let locked = TtLock::new(8).lock(&host(), &secret).unwrap();
        let guess = guess_of(&ScopeAttack::new(), &locked.circuit);
        let (cdk, dk) = score_guess(&locked, &guess);
        assert!(dk > 0, "the inverter asymmetry should produce guesses");
        assert!(
            cdk < dk,
            "standalone SCOPE must not fully recover a DFLT key"
        );
    }

    #[test]
    fn both_engines_make_identical_guesses() {
        let secret = SecretKey::from_u64(0b1011_0101, 8);
        for locked in [
            SarLock::new(8).lock(&host(), &secret).unwrap(),
            TtLock::new(8).lock(&host(), &secret).unwrap(),
        ] {
            let fast = guess_of(&ScopeAttack::new(), &locked.circuit);
            let legacy = guess_of(&ScopeAttack::resynthesis(), &locked.circuit);
            assert_eq!(
                fast,
                legacy,
                "engines diverged on {}",
                locked.circuit.name()
            );
        }
    }

    #[test]
    fn engine_selects_the_registered_name() {
        assert_eq!(ScopeAttack::new().name(), "scope");
        assert_eq!(ScopeAttack::resynthesis().name(), "scope-resynth");
    }

    #[test]
    fn no_key_inputs_is_an_error() {
        let unlocked = host();
        assert!(matches!(
            ScopeAttack::new().execute(&AttackRequest::oracle_less(&unlocked)),
            Err(AttackError::NoKeyInputs)
        ));
    }

    #[test]
    fn margin_suppresses_weak_guesses() {
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = SarLock::new(4).lock(&host(), &secret).unwrap();
        let strict = ScopeAttack {
            margin: usize::MAX,
            ..ScopeAttack::new()
        };
        assert_eq!(guess_of(&strict, &locked.circuit).deciphered(), 0);
    }
}
