//! Double DIP: the SAT-attack variant that eliminates at least two wrong
//! keys per iteration (Shen & Zhou, GLSVLSI'17).
//!
//! Each iteration finds up to two distinguishing input patterns before the
//! iteration counter advances, so on point-function locking the number of
//! *iterations* halves even though the number of oracle queries stays the
//! same — which is exactly why it still cannot break SAT-resilient locking
//! within the paper's time limit (Table III).
//!
//! Batching note: the two DIPs of a round are found in one solver session
//! (the second excluded from the first only by a blocking clause on its
//! data pattern, not by the first DIP's IO constraint) so both can be
//! queried against the oracle in a single packed sweep. On pathological
//! instances the second DIP of a round may therefore prune less of the key
//! space than the strictly sequential formulation would have — the worst
//! case is one redundant constraint/query per round, and on point-function
//! locking (where every distinct pattern eliminates distinct wrong keys)
//! the two formulations coincide.

use crate::engine::{Attack, AttackRequest, Budget, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{AttackBudget, AttackRun, OgOutcome, OgReport, StepTiming};
use crate::sat_attack::{og_run, BatchEnd, DipEngine, KeyExtraction};
use kratt_locking::SecretKey;
use kratt_netlist::Circuit;

/// The Double DIP attack.
#[derive(Debug, Clone, Default)]
pub struct DoubleDipAttack {
    /// Resource budget; an exhausted budget reports `OoT` like the paper.
    pub budget: AttackBudget,
}

impl DoubleDipAttack {
    /// Double DIP with the default budget.
    pub fn new() -> Self {
        DoubleDipAttack::default()
    }

    /// Double DIP with an explicit budget.
    pub fn with_budget(budget: AttackBudget) -> Self {
        DoubleDipAttack { budget }
    }

    /// The double-DIP loop under an explicit deadline.
    /// [`Attack::execute`] is the public entry point.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
        budget: &Budget,
        deadline: Deadline,
    ) -> Result<OgReport, AttackError> {
        let mut engine = DipEngine::new(locked, oracle, budget, deadline.clone())?;
        let mut iterations = 0usize;
        loop {
            if deadline.expired()
                || iterations >= budget.max_iterations
                || budget.oracle_queries_exhausted(engine.oracle_queries())
            {
                return Ok(OgReport {
                    outcome: OgOutcome::OutOfTime,
                    runtime: deadline.elapsed(),
                    iterations,
                    oracle_queries: engine.oracle_queries(),
                });
            }
            // Find up to two distinct DIPs in one solver session and query
            // the oracle for both in a single packed sweep.
            let batch = engine.find_dips(2);
            if !batch.dips.is_empty() {
                engine.constrain_batch(&batch.dips)?;
                // Only rounds that constrained something count as iterations
                // (the final empty exhaustion probe is bookkeeping, not
                // progress — the same convention as the SAT attack's per-DIP
                // count).
                iterations += 1;
            }
            let exhausted = batch.end == Some(BatchEnd::Exhausted);
            let budget_hit = batch.end == Some(BatchEnd::Budget);
            if exhausted {
                let outcome = match engine.extract_key(budget)? {
                    KeyExtraction::Key(key) => OgOutcome::Key(key),
                    KeyExtraction::NoneConsistent => {
                        OgOutcome::Key(SecretKey::from_bits(vec![false; engine.key_names().len()]))
                    }
                    KeyExtraction::Budget => OgOutcome::OutOfTime,
                };
                return Ok(OgReport {
                    outcome,
                    runtime: deadline.elapsed(),
                    iterations,
                    oracle_queries: engine.oracle_queries(),
                });
            }
            if budget_hit {
                return Ok(OgReport {
                    outcome: OgOutcome::OutOfTime,
                    runtime: deadline.elapsed(),
                    iterations,
                    oracle_queries: engine.oracle_queries(),
                });
            }
        }
    }
}

impl Attack for DoubleDipAttack {
    fn name(&self) -> &'static str {
        "double-dip"
    }

    fn supports(&self, model: ThreatModel) -> bool {
        model == ThreatModel::OracleGuided
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let oracle = request.require_oracle(self.name())?;
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let report = self.run_with_deadline(request.locked, oracle, &request.budget, deadline)?;
        let steps = vec![StepTiming::new("double-dip-loop", report.runtime)];
        Ok(og_run(self.name(), report, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat_attack::SatAttack;
    use kratt_locking::{LockingTechnique, RandomXorLocking, SarLock, SecretKey};
    use kratt_netlist::{Circuit, GateType, NetId};
    use std::time::Duration;

    /// Runs the double-DIP loop directly to keep the [`OgReport`]
    /// assertions; external callers go through [`Attack::execute`].
    fn report_of(
        attack: &DoubleDipAttack,
        locked: &Circuit,
        oracle: &Oracle,
    ) -> Result<OgReport, AttackError> {
        attack.run_with_deadline(locked, oracle, &attack.budget, attack.budget.start())
    }

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn double_dip_recovers_rll_keys() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b0111, 4);
        let locked = RandomXorLocking::new(4, 5)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&DoubleDipAttack::new(), &locked.circuit, &oracle).unwrap();
        let key = report.outcome.key().expect("RLL must be broken").clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn double_dip_uses_no_more_iterations_than_the_sat_attack_on_sarlock() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = SarLock::new(4).lock(&original, &secret).unwrap();
        let oracle_a = Oracle::new(original.clone()).unwrap();
        let oracle_b = Oracle::new(original.clone()).unwrap();
        let sat = SatAttack::new()
            .execute(&AttackRequest::oracle_guided(&locked.circuit, &oracle_a))
            .unwrap();
        let ddip = report_of(&DoubleDipAttack::new(), &locked.circuit, &oracle_b).unwrap();
        assert!(sat.outcome.exact_key().is_some());
        assert!(ddip.outcome.key().is_some());
        assert!(
            ddip.iterations <= sat.iterations,
            "DDIP ({}) should not need more iterations than SAT ({})",
            ddip.iterations,
            sat.iterations
        );
    }

    #[test]
    fn double_dip_times_out_on_larger_point_functions() {
        let original = adder4();
        let secret = SecretKey::from_u64(0x155 & 0x1ff, 9);
        let locked = SarLock::new(9).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let attack = DoubleDipAttack::with_budget(AttackBudget {
            time_limit: Some(Duration::from_secs(2)),
            max_iterations: 4,
            ..AttackBudget::default()
        });
        let report = report_of(&attack, &locked.circuit, &oracle).unwrap();
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
    }
}
