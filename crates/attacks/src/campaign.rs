//! The end-to-end campaign pipeline: scheme specs × benchmark hosts ×
//! registry attacks, driven lock → attack → verify.
//!
//! A [`Campaign`] names its scenarios declaratively — locking schemes as
//! [`SchemeSpec`]s, hosts as circuits with their Table-I key widths, attacks
//! as registry names — and expands them into jobs for the batch
//! [`Harness`]. Locked instances are generated *on the fly* when the first
//! worker reaches a cell, memoised in a content-addressed [`CorpusCache`] so
//! N attacks on one instance lock once, and every claimed key or recovered
//! circuit is **verified** against the planted secret with the bit-parallel
//! equivalence kernel before it is reported. The [`CampaignReport`] carries
//! one verdict-stamped cell per (host, scheme, attack) triple, rendered as an
//! aligned table or JSON.
//!
//! This is what the paper's evaluation *is* — Tables III–V are campaigns —
//! and the `kratt-bench` presets (`table3`, `smoke`) are thin instances of
//! it.
//!
//! The campaign is a *resumable service*, not a one-shot batch function:
//!
//! * An optional [`CampaignJournal`](crate::journal::CampaignJournal)
//!   (installed via [`CampaignBuilder::journal`]) persists every committed
//!   verdict as a fingerprint-keyed JSON line. Re-running against the same
//!   journal replays recorded cells and schedules only the unrecorded ones,
//!   so a grown matrix attacks its new cells only and a crash mid-sweep
//!   resumes from the last committed row.
//! * Cells run through the harness's work-stealing scheduler under one
//!   global deadline ([`CampaignBuilder::global_budget`]); cells the
//!   deadline catches still queued become interrupted error cells that a
//!   resume re-attacks.
//! * [`Campaign::run_observed`] streams each verdict-stamped cell to a
//!   callback the moment it commits — the `--stream` front ends print
//!   JSON-lines from it, terminated by [`CampaignReport::summary_json`].

use crate::engine::{Attack, Budget, Deadline};
use crate::error::AttackError;
use crate::harness::{
    FnCaseSource, Harness, JobTelemetry, MatrixCase, MatrixRow, ScheduleOptions, SchedulerStats,
};
use crate::journal::{cell_fingerprint, instance_fingerprint, CampaignJournal};
use crate::registry::AttackRegistry;
use crate::report::{key_input_names, score_guess, AttackOutcome, JsonScalar};
use kratt_lint::{lint_locked, LintReport};
use kratt_locking::{LockedCircuit, SchemeRegistry, SchemeSpec};
use kratt_netlist::sim::{exhaustively_equivalent, Simulator};
use kratt_netlist::{Circuit, NetlistError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// One host circuit of a campaign: the original design plus the key width a
/// width-less spec defaults to on it (the paper's Table I column).
#[derive(Debug, Clone)]
pub struct CampaignHost {
    /// Display name (`"c2670"`, ...).
    pub name: String,
    /// The original circuit; also the oracle behind oracle-guided attacks.
    pub circuit: Arc<Circuit>,
    /// Key width applied to specs that do not pin `k` themselves.
    pub default_key_bits: usize,
}

impl CampaignHost {
    /// A host with the given default key width.
    pub fn new(name: impl Into<String>, circuit: Circuit, default_key_bits: usize) -> Self {
        CampaignHost {
            name: name.into(),
            circuit: Arc::new(circuit),
            default_key_bits,
        }
    }
}

/// A locked instance of the corpus: the spec that planted it, the host it
/// locks and the full [`LockedCircuit`] (including the planted secret the
/// verification step checks claims against).
#[derive(Debug)]
pub struct LockedInstance {
    /// The resolved spec (key width filled in) the instance was locked from.
    pub spec: SchemeSpec,
    /// Name of the host circuit.
    pub host: String,
    /// The locked netlist plus its ground-truth metadata.
    pub locked: LockedCircuit,
    /// The locked netlist shared for attack jobs.
    pub shared: Arc<Circuit>,
    /// The static-lint report of the locked netlist against its host,
    /// stamped when the instance enters the corpus (before any attack).
    pub lint: LintReport,
}

/// A post-lock transform applied to every instance before it enters the
/// corpus (the campaign presets plug resynthesis in here, mirroring the
/// paper's Cadence Genus step). The tag participates in the corpus content
/// address so differently-prepared instances never collide.
pub type PrepareHook =
    Arc<dyn Fn(LockedCircuit) -> Result<LockedCircuit, AttackError> + Send + Sync>;

/// A typed campaign-configuration error, produced by
/// [`CampaignBuilder::build`], the preset lookup and the journal layer.
///
/// Old call sites that traffic in [`AttackError`] keep working through the
/// `From<CampaignError> for AttackError` shim (kept for one release); new
/// code should match on this type directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The campaign names no locking schemes — the matrix has zero rows.
    EmptySchemes,
    /// The campaign names no host circuits.
    EmptyHosts,
    /// The campaign names no attacks — the matrix has zero columns.
    EmptyAttacks,
    /// One axis names the same member twice — the cells would silently
    /// double and their journal fingerprints would collide.
    DuplicateAxis {
        /// Which axis (`"scheme"`, `"host"` or `"attack"`).
        axis: &'static str,
        /// The duplicated member.
        name: String,
    },
    /// A scheme spec string failed to parse.
    Spec(String),
    /// No campaign preset with the given name exists.
    UnknownPreset(String),
    /// The campaign journal could not be opened or read.
    Journal(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptySchemes => write!(f, "campaign has no locking schemes"),
            CampaignError::EmptyHosts => write!(f, "campaign has no host circuits"),
            CampaignError::EmptyAttacks => write!(f, "campaign has no attacks"),
            CampaignError::DuplicateAxis { axis, name } => {
                write!(f, "campaign {axis} axis names `{name}` more than once")
            }
            CampaignError::Spec(message) => write!(f, "bad scheme spec: {message}"),
            CampaignError::UnknownPreset(name) => {
                write!(
                    f,
                    "no campaign preset named `{name}` (known: table3, smoke)"
                )
            }
            CampaignError::Journal(message) => write!(f, "campaign journal: {message}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The one-release compatibility shim: campaign-configuration errors used to
/// surface as stringly [`AttackError::Other`]; old call sites keep matching.
impl From<CampaignError> for AttackError {
    fn from(e: CampaignError) -> Self {
        AttackError::Other(e.to_string())
    }
}

/// A corpus address: (host-netlist fingerprint, canonical spec, prepare tag).
type CorpusKey = (u64, String, String);
/// A memoised corpus slot (first accessor locks, the rest block then share).
type CorpusSlot = Arc<OnceLock<Result<Arc<LockedInstance>, AttackError>>>;

/// The content-addressed in-memory corpus of locked instances. Keys are
/// (host-netlist fingerprint, canonical spec, prepare tag), so reusing one
/// cache across campaigns — or N attacks hitting one cell — locks each
/// distinct instance exactly once; concurrent first accesses block on the
/// winner instead of duplicating the work.
#[derive(Default)]
pub struct CorpusCache {
    entries: Mutex<HashMap<CorpusKey, CorpusSlot>>,
    locks_performed: AtomicUsize,
}

impl CorpusCache {
    /// An empty cache.
    pub fn new() -> Self {
        CorpusCache::default()
    }

    /// Number of instances actually locked (cache misses) so far.
    pub fn locks_performed(&self) -> usize {
        self.locks_performed.load(Ordering::Relaxed)
    }

    /// Returns the instance for (host, spec), locking it on first access.
    /// `spec` must already be resolved (key width pinned).
    ///
    /// # Errors
    ///
    /// Returns (and caches) [`AttackError::Setup`] when the scheme fails on
    /// the host.
    pub fn get_or_lock(
        &self,
        schemes: &SchemeRegistry,
        host: &CampaignHost,
        spec: &SchemeSpec,
        prepare: Option<&(String, PrepareHook)>,
    ) -> Result<Arc<LockedInstance>, AttackError> {
        let tag = prepare.map(|(tag, _)| tag.clone()).unwrap_or_default();
        let key = (circuit_fingerprint(&host.circuit), spec.to_string(), tag);
        let slot = {
            let mut entries = self.entries.lock().expect("corpus lock never poisoned");
            Arc::clone(entries.entry(key).or_default())
        };
        slot.get_or_init(|| {
            let mut locked = schemes.lock(spec, &host.circuit)?;
            if let Some((_, hook)) = prepare {
                locked = hook(locked)?;
            }
            // Counted only on success: a failed setup is an error cell, not
            // a locked instance.
            self.locks_performed.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::new(locked.circuit.clone());
            let lint = lint_locked(&host.circuit, &locked.circuit);
            Ok(Arc::new(LockedInstance {
                spec: spec.clone(),
                host: host.name.clone(),
                locked,
                shared,
                lint,
            }))
        })
        .clone()
    }
}

/// A stable fingerprint of a circuit's full structure (interface, gates,
/// outputs) — the content half of the corpus cache's address.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut hasher = DefaultHasher::new();
    circuit.name().hash(&mut hasher);
    for &input in circuit.inputs() {
        circuit.net_name(input).hash(&mut hasher);
    }
    for (_, gate) in circuit.gates() {
        gate.ty.hash(&mut hasher);
        circuit.net_name(gate.output).hash(&mut hasher);
        for &input in &gate.inputs {
            circuit.net_name(input).hash(&mut hasher);
        }
    }
    for &output in circuit.outputs() {
        circuit.net_name(output).hash(&mut hasher);
    }
    hasher.finish()
}

/// The verification verdict of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The claimed key (or recovered circuit) provably restores the
    /// original function.
    Verified,
    /// The attack claimed an exact result that does **not** restore the
    /// original function — the bug class the verification step exists for.
    Refuted,
    /// The attack claimed an exact result but the verification step could
    /// not reach a verdict (budget exhausted, unusable key). Counts as
    /// unverified for the CI gate — an inconclusive check is never a
    /// confirmation.
    Unverified,
    /// The attack made no exact claim (partial guess, out of budget);
    /// nothing to verify.
    NotClaimed,
    /// The cell never ran (scenario setup failed or the attack errored).
    Error,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => write!(f, "verified"),
            Verdict::Refuted => write!(f, "REFUTED"),
            Verdict::Unverified => write!(f, "UNVERIFIED"),
            Verdict::NotClaimed => write!(f, "-"),
            Verdict::Error => write!(f, "error"),
        }
    }
}

/// One cell of a campaign: the verdict-stamped result of one attack on one
/// locked instance.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Host circuit name.
    pub host: String,
    /// Resolved scheme spec the instance was locked from.
    pub scheme: String,
    /// Compact lint summary of the locked instance (`clean`, `2W+1I`, ...),
    /// stamped before the attack ran; `-` when the instance never locked.
    pub lint: String,
    /// Registry name of the attack.
    pub attack: String,
    /// Outcome kind (`"exact-key"`, ...), when the attack ran.
    pub outcome: Option<&'static str>,
    /// The independent verification verdict.
    pub verdict: Verdict,
    /// The claimed exact key (width-preserving hex), if one was claimed.
    pub key: Option<String>,
    /// Correctly deciphered key bits, scored against the planted secret
    /// (verified exact keys count fully, per the paper's convention).
    pub cdk: usize,
    /// Deciphered key bits.
    pub dk: usize,
    /// Wall-clock runtime of the attack.
    pub runtime: Duration,
    /// Attack iterations performed.
    pub iterations: usize,
    /// Oracle queries spent.
    pub oracle_queries: u64,
    /// The structured error, when the cell did not produce a run.
    pub error: Option<String>,
    /// Scheduler telemetry of the job that produced the cell: which worker
    /// ran it, how long it waited in queue, whether it was stolen.
    pub telemetry: JobTelemetry,
    /// Whether the cell was replayed from a journal instead of attacked.
    pub replayed: bool,
}

impl CampaignCell {
    /// Renders the cell as one flat JSON-lines record (the `--stream` row
    /// format, identical to the journal's cell records minus the
    /// fingerprint).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        crate::report::json_str(&mut out, "type", "cell");
        out.push(',');
        cell_json_body(&mut out, self);
        out.push('}');
        out
    }
}

/// Serialises a cell's fields as the body of a flat JSON object (no braces):
/// the one shape shared by the report's `cells` array, the `--stream` rows
/// and the journal's cell records.
pub(crate) fn cell_json_body(out: &mut String, cell: &CampaignCell) {
    use crate::report::{json_key, json_str};
    json_str(out, "host", &cell.host);
    out.push(',');
    json_str(out, "scheme", &cell.scheme);
    out.push(',');
    json_str(out, "lint", &cell.lint);
    out.push(',');
    json_str(out, "attack", &cell.attack);
    out.push(',');
    match cell.outcome {
        Some(outcome) => json_str(out, "outcome", outcome),
        None => {
            json_key(out, "outcome");
            out.push_str("null");
        }
    }
    out.push(',');
    json_str(out, "verdict", &cell.verdict.to_string());
    if let Some(key) = &cell.key {
        out.push(',');
        json_str(out, "key", key);
    }
    out.push_str(&format!(
        ",\"cdk\":{},\"dk\":{},\"runtime_secs\":{:.6},\"iterations\":{},\"oracle_queries\":{}",
        cell.cdk,
        cell.dk,
        cell.runtime.as_secs_f64(),
        cell.iterations,
        cell.oracle_queries
    ));
    out.push_str(&format!(
        ",\"worker\":{},\"queue_wait_secs\":{:.6},\"stolen\":{},\"replayed\":{}",
        cell.telemetry.worker,
        cell.telemetry.queue_wait.as_secs_f64(),
        cell.telemetry.stolen,
        cell.replayed
    ));
    if let Some(error) = &cell.error {
        out.push(',');
        json_str(out, "error", error);
    }
}

/// Reconstructs a cell from the parsed key/value pairs of a journal record.
/// Returns `None` when a required field is missing or malformed — the
/// journal skips such records, costing one re-attack.
pub(crate) fn cell_from_pairs(pairs: &[(String, JsonScalar)]) -> Option<CampaignCell> {
    let field = |name: &str| pairs.iter().find(|(key, _)| key == name).map(|(_, v)| v);
    let text = |name: &str| field(name).and_then(JsonScalar::as_str).map(str::to_string);
    let num = |name: &str| field(name).and_then(JsonScalar::as_f64);
    let duration = |name: &str| match num(name) {
        Some(secs) if secs.is_finite() && secs > 0.0 => Duration::from_secs_f64(secs),
        _ => Duration::ZERO,
    };
    Some(CampaignCell {
        host: text("host")?,
        scheme: text("scheme")?,
        lint: text("lint")?,
        attack: text("attack")?,
        outcome: field("outcome")
            .and_then(JsonScalar::as_str)
            .and_then(outcome_tag),
        verdict: verdict_tag(&text("verdict")?)?,
        key: text("key"),
        cdk: num("cdk").unwrap_or(0.0) as usize,
        dk: num("dk").unwrap_or(0.0) as usize,
        runtime: duration("runtime_secs"),
        iterations: num("iterations").unwrap_or(0.0) as usize,
        oracle_queries: num("oracle_queries").unwrap_or(0.0) as u64,
        error: text("error"),
        telemetry: JobTelemetry {
            worker: num("worker").unwrap_or(0.0) as usize,
            queue_wait: duration("queue_wait_secs"),
            stolen: matches!(field("stolen"), Some(JsonScalar::Bool(true))),
        },
        replayed: false,
    })
}

/// Maps a serialized outcome kind back onto the `'static` tag the run
/// types use.
fn outcome_tag(tag: &str) -> Option<&'static str> {
    [
        "exact-key",
        "partial-guess",
        "recovered-circuit",
        "out-of-budget",
    ]
    .into_iter()
    .find(|known| *known == tag)
}

/// Parses the canonical [`Verdict`] display form.
fn verdict_tag(tag: &str) -> Option<Verdict> {
    match tag {
        "verified" => Some(Verdict::Verified),
        "REFUTED" => Some(Verdict::Refuted),
        "UNVERIFIED" => Some(Verdict::Unverified),
        "-" => Some(Verdict::NotClaimed),
        "error" => Some(Verdict::Error),
        _ => None,
    }
}

/// The report of one campaign run: every cell plus corpus statistics.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One cell per (host, scheme, attack) triple, host-major then
    /// scheme-major (the job order of the matrix).
    pub cells: Vec<CampaignCell>,
    /// Attack names, in column order.
    pub attacks: Vec<String>,
    /// Distinct instances actually locked (the corpus cache's miss count —
    /// with A attacks per instance this is `cells / A` when nothing was
    /// cached from earlier campaigns).
    pub locked_instances: usize,
    /// Cells replayed from the journal instead of re-attacked.
    pub replayed: usize,
    /// Work-stealing scheduler statistics of the fresh (non-replayed) part
    /// of the run.
    pub scheduler: SchedulerStats,
}

impl CampaignReport {
    /// Cells actually attacked this run (scheduled minus interrupted).
    pub fn attacked(&self) -> usize {
        self.scheduler.jobs - self.scheduler.interrupted
    }

    /// Cells the global deadline (or a halt) caught before they started.
    pub fn interrupted(&self) -> usize {
        self.scheduler.interrupted
    }

    /// Cells claiming an exact key or recovered circuit.
    pub fn exact_claims(&self) -> impl Iterator<Item = &CampaignCell> {
        self.cells
            .iter()
            .filter(|cell| matches!(cell.outcome, Some("exact-key") | Some("recovered-circuit")))
    }

    /// Number of exact claims the verification step could not confirm. The
    /// campaign-smoke CI gate fails when this is non-zero.
    pub fn unverified_exact_claims(&self) -> usize {
        self.exact_claims()
            .filter(|cell| cell.verdict != Verdict::Verified)
            .count()
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let header = [
            "Host", "Scheme", "Lint", "Attack", "Outcome", "Verdict", "cdk/dk", "Key", "Time (s)",
            "Iters", "Queries",
        ];
        let rows: Vec<[String; 11]> = self
            .cells
            .iter()
            .map(|cell| {
                [
                    cell.host.clone(),
                    cell.scheme.clone(),
                    cell.lint.clone(),
                    cell.attack.clone(),
                    cell.outcome
                        .map(str::to_string)
                        .or_else(|| cell.error.clone())
                        .unwrap_or_else(|| "-".to_string()),
                    cell.verdict.to_string(),
                    format!("{}/{}", cell.cdk, cell.dk),
                    cell.key.clone().unwrap_or_else(|| "-".to_string()),
                    format!("{:.3}", cell.runtime.as_secs_f64()),
                    cell.iterations.to_string(),
                    cell.oracle_queries.to_string(),
                ]
            })
            .collect();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (cell, width) in cells.iter().zip(&widths) {
                out.push_str(&format!("{cell:>width$}  "));
            }
            out.push('\n');
        };
        render_row(&mut out, &header.map(str::to_string));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &rows {
            render_row(&mut out, row);
        }
        out.push_str(&format!(
            "{} cells, {} instances locked, {} unverified exact claims\n",
            self.cells.len(),
            self.locked_instances,
            self.unverified_exact_claims()
        ));
        out.push_str(&format!(
            "{} replayed from journal, {} attacked, {} interrupted; {} steals across {} workers, {:.3}s makespan\n",
            self.replayed,
            self.attacked(),
            self.scheduler.interrupted,
            self.scheduler.steals,
            self.scheduler.workers,
            self.scheduler.makespan.as_secs_f64()
        ));
        out
    }

    /// The one-line JSON summary record that terminates a `--stream` run:
    /// campaign totals plus the scheduler telemetry, no per-cell data.
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        crate::report::json_str(&mut out, "type", "summary");
        out.push_str(&format!(
            ",\"cells\":{},\"locked_instances\":{},\"unverified_exact_claims\":{},\"replayed\":{},\"attacked\":{},\"interrupted\":{},\"steals\":{},\"workers\":{},\"makespan_secs\":{:.6}",
            self.cells.len(),
            self.locked_instances,
            self.unverified_exact_claims(),
            self.replayed,
            self.attacked(),
            self.scheduler.interrupted,
            self.scheduler.steals,
            self.scheduler.workers,
            self.scheduler.makespan.as_secs_f64()
        ));
        out.push('}');
        out
    }

    /// Renders the report as a machine-readable JSON object (hand-rolled:
    /// the workspace is offline and carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.cells.len());
        out.push_str("{\"attacks\":[");
        for (i, attack) in self.attacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(attack);
            out.push('"');
        }
        out.push_str(&format!(
            "],\"locked_instances\":{},\"unverified_exact_claims\":{},\"replayed\":{},\"attacked\":{},\"interrupted\":{},\"steals\":{},\"makespan_secs\":{:.6},\"cells\":[",
            self.locked_instances,
            self.unverified_exact_claims(),
            self.replayed,
            self.attacked(),
            self.scheduler.interrupted,
            self.scheduler.steals,
            self.scheduler.makespan.as_secs_f64()
        ));
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            cell_json_body(&mut out, cell);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A declarative campaign: the cross product of scheme specs, hosts and
/// attacks, plus the one shared budget every cell runs under.
pub struct Campaign {
    /// The locking schemes of the matrix; width-less specs pick up each
    /// host's default key width.
    pub schemes: Vec<SchemeSpec>,
    /// The host circuits.
    pub hosts: Vec<CampaignHost>,
    /// Attack registry names, in column order.
    pub attacks: Vec<String>,
    /// The shared per-cell budget.
    pub budget: Budget,
    /// Worker threads; `None` uses one per CPU.
    pub workers: Option<usize>,
    /// Optional post-lock transform (tag, hook) applied to every instance.
    pub prepare: Option<(String, PrepareHook)>,
    /// Optional journal path: recorded verdicts replay instead of
    /// re-running, fresh verdicts append.
    pub journal: Option<PathBuf>,
    /// Optional wall-clock limit for the whole matrix (the scheduler's
    /// global deadline, on top of the per-cell budget). Cells still queued
    /// at expiry become interrupted error cells a resume re-attacks.
    pub global_time_limit: Option<Duration>,
    /// Halt the scheduler after this many executed cells — deterministic
    /// crash injection for the resume tests and the `--halt-after` flag.
    pub halt_after_cells: Option<usize>,
}

impl Campaign {
    /// A campaign over the given axes with the default budget.
    pub fn new(schemes: Vec<SchemeSpec>, hosts: Vec<CampaignHost>, attacks: Vec<String>) -> Self {
        Campaign {
            schemes,
            hosts,
            attacks,
            budget: Budget::default(),
            workers: None,
            prepare: None,
            journal: None,
            global_time_limit: None,
            halt_after_cells: None,
        }
    }

    /// The validating builder — the preferred way to configure a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// Installs the persistent journal (builder-style, for presets).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Caps the whole matrix's wall clock (builder-style, for presets).
    pub fn with_global_time_limit(mut self, limit: Duration) -> Self {
        self.global_time_limit = Some(limit);
        self
    }

    /// Halts after N executed cells (builder-style, for presets).
    pub fn with_halt_after_cells(mut self, cells: usize) -> Self {
        self.halt_after_cells = Some(cells);
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Installs a post-lock transform (the tag keys the corpus cache).
    pub fn with_prepare(mut self, tag: impl Into<String>, hook: PrepareHook) -> Self {
        self.prepare = Some((tag.into(), hook));
        self
    }

    /// The paper's Table III as a campaign: the four table techniques
    /// (Anti-SAT, SARLock, CAC, TTLock at each host's Table-I key width)
    /// against the SAT, Double DIP, AppSAT and KRATT attacks.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates spec-parse errors defensively.
    pub fn table3(hosts: Vec<CampaignHost>, budget: Budget) -> Result<Self, AttackError> {
        Ok(Campaign::builder()
            .spec_strs(["antisat", "sarlock", "cac", "ttlock"])
            .hosts(hosts)
            .attacks(["sat", "double-dip", "appsat", "kratt"])
            .budget(budget)
            .build()?)
    }

    /// The CI smoke campaign: 2 schemes × 2 attacks, trimmed to the first
    /// two of the given hosts at 16-bit keys so a tight budget still
    /// finishes. The host policy lives *here* so every front end (the
    /// `campaign` binary, `kratt --campaign smoke`, the CI job) runs the
    /// same grid under the same preset name.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates spec-parse errors defensively.
    pub fn smoke(hosts: Vec<CampaignHost>, budget: Budget) -> Result<Self, AttackError> {
        let hosts = hosts.into_iter().take(2).map(|host| CampaignHost {
            default_key_bits: 16,
            ..host
        });
        Ok(Campaign::builder()
            .spec_strs(["sarlock", "ttlock"])
            .hosts(hosts)
            .attacks(["sat", "kratt"])
            .budget(budget)
            .build()?)
    }

    /// Builds a named preset (`"table3"` or `"smoke"`) over the given hosts.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Other`] for an unknown preset name.
    pub fn preset(
        name: &str,
        hosts: Vec<CampaignHost>,
        budget: Budget,
    ) -> Result<Self, AttackError> {
        match name {
            "table3" => Campaign::table3(hosts, budget),
            "smoke" => Campaign::smoke(hosts, budget),
            other => Err(CampaignError::UnknownPreset(other.to_string()).into()),
        }
    }

    /// Number of cells the campaign expands to.
    pub fn num_cells(&self) -> usize {
        self.schemes.len() * self.hosts.len() * self.attacks.len()
    }

    /// Runs the campaign end to end — lock (memoised through `corpus`),
    /// attack (through the batch harness), verify (against each planted
    /// secret) — and returns the verdict-stamped report.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::UnknownAttack`] when an attack name is not in
    /// the registry. Scheme and locking failures are *not* errors here;
    /// they surface as [`Verdict::Error`] cells.
    pub fn run(
        &self,
        attack_registry: &AttackRegistry,
        scheme_registry: &SchemeRegistry,
        corpus: &CorpusCache,
    ) -> Result<CampaignReport, AttackError> {
        self.run_observed(attack_registry, scheme_registry, corpus, &|_| {})
    }

    /// Runs the campaign like [`run`](Campaign::run), additionally invoking
    /// `on_cell` for every committed cell as it commits: journal-replayed
    /// cells first (in matrix order), then fresh cells the moment a worker
    /// finishes scoring them (in completion order, from worker threads —
    /// the callback must be `Sync`). Interrupted cells are *not* streamed;
    /// they only appear in the final report. The `--stream` front ends
    /// print [`CampaignCell::to_json_line`] from this callback and
    /// terminate with [`CampaignReport::summary_json`].
    pub fn run_observed(
        &self,
        attack_registry: &AttackRegistry,
        scheme_registry: &SchemeRegistry,
        corpus: &CorpusCache,
        on_cell: &(dyn Fn(&CampaignCell) + Sync),
    ) -> Result<CampaignReport, AttackError> {
        let attacks: Vec<Box<dyn Attack>> = self
            .attacks
            .iter()
            .map(|name| attack_registry.build(name))
            .collect::<Result<_, _>>()?;

        // One case per (host, scheme) pair, host-major; resolve each spec's
        // key width against its host up front so names, corpus addresses
        // and journal fingerprints are stable.
        let resolved: Vec<(usize, SchemeSpec)> = self
            .hosts
            .iter()
            .enumerate()
            .flat_map(|(host_index, host)| {
                self.schemes
                    .iter()
                    .map(move |spec| (host_index, spec.clone().or_key_bits(host.default_key_bits)))
            })
            .collect();
        let names: Vec<String> = resolved
            .iter()
            .map(|(host_index, spec)| format!("{}/{}", self.hosts[*host_index].name, spec))
            .collect();

        let journal = match &self.journal {
            Some(path) => Some(CampaignJournal::open(path)?),
            None => None,
        };
        let prepare_tag = self
            .prepare
            .as_ref()
            .map(|(tag, _)| tag.as_str())
            .unwrap_or("");
        let case_fps: Vec<u64> = resolved
            .iter()
            .map(|(host_index, spec)| {
                instance_fingerprint(
                    circuit_fingerprint(&self.hosts[*host_index].circuit),
                    &spec.to_string(),
                    prepare_tag,
                )
            })
            .collect();
        let columns = attacks.len();
        let total = resolved.len() * columns;
        let fp_of =
            |job: usize| cell_fingerprint(case_fps[job / columns], &self.attacks[job % columns]);

        // Replay recorded verdicts up front; only the holes get scheduled.
        let mut replayed: Vec<Option<CampaignCell>> = (0..total).map(|_| None).collect();
        if let Some(journal) = &journal {
            for (job, slot) in replayed.iter_mut().enumerate() {
                if let Some(mut cell) = journal.cell(fp_of(job)) {
                    cell.replayed = true;
                    on_cell(&cell);
                    *slot = Some(cell);
                }
            }
        }
        let replayed_count = replayed.iter().flatten().count();

        let source = FnCaseSource::new(names, |index| {
            let (host_index, spec) = &resolved[index];
            let host = &self.hosts[*host_index];
            let instance =
                corpus.get_or_lock(scheme_registry, host, spec, self.prepare.as_ref())?;
            if let Some(journal) = &journal {
                // Trust-by-fingerprint: the journal's verdicts are only
                // valid for the exact locked netlist they were scored
                // against. Deterministic seeded locking makes this check
                // meaningful — same spec, same host, same bits.
                let locked_fp = circuit_fingerprint(&instance.shared);
                match journal.instance_locked_fp(case_fps[index]) {
                    Some(recorded) if recorded != locked_fp => {
                        return Err(AttackError::Setup(format!(
                            "journal {} is stale for {}/{}: the recorded locked-netlist \
                             fingerprint {recorded:016x} no longer matches the netlist \
                             this build locks ({locked_fp:016x}); delete the journal to \
                             re-attack from scratch",
                            journal.path().display(),
                            host.name,
                            spec,
                        )));
                    }
                    Some(_) => {}
                    None => journal.record_instance(case_fps[index], locked_fp),
                }
            }
            Ok(MatrixCase::oracle_guided_shared(
                format!("{}/{}", host.name, spec),
                Arc::clone(&instance.shared),
                Arc::clone(&host.circuit),
            ))
        });

        let fresh: Mutex<Vec<Option<CampaignCell>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let include = |case: usize, attack: usize| replayed[case * columns + attack].is_none();
        let on_row = |job: usize, row: &MatrixRow| {
            let case = job / columns;
            let (host_index, spec) = &resolved[case];
            let host = &self.hosts[*host_index];
            // Memoised — the worker that ran the job already materialised
            // the case, so this never re-locks.
            let instance = corpus
                .get_or_lock(scheme_registry, host, spec, self.prepare.as_ref())
                .ok();
            let cell = score_cell(host, spec, row, instance.as_deref());
            if let Some(journal) = &journal {
                journal.record_cell(fp_of(job), &cell);
            }
            on_cell(&cell);
            fresh.lock().expect("cell collection lock")[job] = Some(cell);
        };
        let options = ScheduleOptions {
            deadline: Deadline::started(self.global_time_limit),
            include: Some(&include),
            on_row: Some(&on_row),
            halt_after: self.halt_after_cells,
        };

        let harness = match self.workers {
            Some(workers) => Harness::with_workers(workers),
            None => Harness::new(),
        };
        let schedule = harness.run_matrix_scheduled(&attacks, &source, &self.budget, &options);

        let fresh = fresh.into_inner().expect("cell collection lock");
        let mut cells = Vec::with_capacity(total);
        for (job, slot) in schedule.rows.into_iter().enumerate() {
            let case = job / columns;
            let (host_index, spec) = &resolved[case];
            if let Some(cell) = replayed[job].take() {
                cells.push(cell);
            } else if let Some(cell) = fresh[job].clone() {
                cells.push(cell);
            } else {
                // Interrupted before a worker picked it up: scored here (not
                // in `on_row`), never journaled, so a resume re-attacks it.
                let row = slot.unwrap_or_else(|| MatrixRow {
                    attack: self.attacks[job % columns].clone(),
                    case: format!("{}/{}", self.hosts[*host_index].name, spec),
                    result: Err(AttackError::Interrupted),
                    telemetry: JobTelemetry::default(),
                });
                cells.push(score_cell(&self.hosts[*host_index], spec, &row, None));
            }
        }
        Ok(CampaignReport {
            cells,
            attacks: self.attacks.clone(),
            locked_instances: corpus.locks_performed(),
            replayed: replayed_count,
            scheduler: schedule.stats,
        })
    }
}

/// The validating builder behind [`Campaign::builder`]: collects the axes
/// and service knobs, then [`build`](CampaignBuilder::build) rejects empty
/// or contradictory configurations with a typed [`CampaignError`].
#[derive(Default)]
pub struct CampaignBuilder {
    schemes: Vec<SchemeSpec>,
    spec_errors: Vec<String>,
    hosts: Vec<CampaignHost>,
    attacks: Vec<String>,
    budget: Option<Budget>,
    workers: Option<usize>,
    prepare: Option<(String, PrepareHook)>,
    journal: Option<PathBuf>,
    global_time_limit: Option<Duration>,
    halt_after_cells: Option<usize>,
}

impl CampaignBuilder {
    /// Adds already-parsed scheme specs.
    pub fn specs(mut self, specs: impl IntoIterator<Item = SchemeSpec>) -> Self {
        self.schemes.extend(specs);
        self
    }

    /// Adds scheme specs from their string forms; parse failures are
    /// collected and surfaced by [`build`](CampaignBuilder::build) as
    /// [`CampaignError::Spec`].
    pub fn spec_strs<'a>(mut self, texts: impl IntoIterator<Item = &'a str>) -> Self {
        for text in texts {
            match text.parse() {
                Ok(spec) => self.schemes.push(spec),
                Err(e) => self.spec_errors.push(format!("`{text}`: {e}")),
            }
        }
        self
    }

    /// Adds host circuits.
    pub fn hosts(mut self, hosts: impl IntoIterator<Item = CampaignHost>) -> Self {
        self.hosts.extend(hosts);
        self
    }

    /// Adds attacks by registry name.
    pub fn attacks<I>(mut self, names: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        self.attacks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Sets the shared per-cell budget (defaults to [`Budget::default`]).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Pins the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Installs a post-lock transform (the tag keys the corpus cache and
    /// the journal fingerprints).
    pub fn prepare(mut self, tag: impl Into<String>, hook: PrepareHook) -> Self {
        self.prepare = Some((tag.into(), hook));
        self
    }

    /// Installs the persistent journal: recorded verdicts replay, fresh
    /// verdicts append.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Caps the whole matrix's wall clock (the scheduler's global
    /// deadline), on top of the per-cell budget.
    pub fn global_budget(mut self, limit: Duration) -> Self {
        self.global_time_limit = Some(limit);
        self
    }

    /// Halts the scheduler after N executed cells (crash injection for the
    /// resume tests).
    pub fn halt_after_cells(mut self, cells: usize) -> Self {
        self.halt_after_cells = Some(cells);
        self
    }

    /// Validates the configuration into a runnable [`Campaign`].
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] when a spec string failed to parse;
    /// `Empty{Schemes,Hosts,Attacks}` when an axis is empty;
    /// [`CampaignError::DuplicateAxis`] when an axis names one member twice
    /// (the cells would double and their journal fingerprints collide).
    pub fn build(self) -> Result<Campaign, CampaignError> {
        if !self.spec_errors.is_empty() {
            return Err(CampaignError::Spec(self.spec_errors.join("; ")));
        }
        if self.schemes.is_empty() {
            return Err(CampaignError::EmptySchemes);
        }
        if self.hosts.is_empty() {
            return Err(CampaignError::EmptyHosts);
        }
        if self.attacks.is_empty() {
            return Err(CampaignError::EmptyAttacks);
        }
        find_duplicate("scheme", self.schemes.iter().map(|s| s.to_string()))?;
        find_duplicate("host", self.hosts.iter().map(|h| h.name.clone()))?;
        find_duplicate("attack", self.attacks.iter().cloned())?;
        Ok(Campaign {
            schemes: self.schemes,
            hosts: self.hosts,
            attacks: self.attacks,
            budget: self.budget.unwrap_or_default(),
            workers: self.workers,
            prepare: self.prepare,
            journal: self.journal,
            global_time_limit: self.global_time_limit,
            halt_after_cells: self.halt_after_cells,
        })
    }
}

/// Rejects a repeated member on one campaign axis.
fn find_duplicate(
    axis: &'static str,
    names: impl Iterator<Item = String>,
) -> Result<(), CampaignError> {
    let mut seen = std::collections::HashSet::new();
    for name in names {
        if !seen.insert(name.clone()) {
            return Err(CampaignError::DuplicateAxis { axis, name });
        }
    }
    Ok(())
}

/// Scores and verifies one matrix row into a campaign cell.
fn score_cell(
    host: &CampaignHost,
    spec: &SchemeSpec,
    row: &MatrixRow,
    instance: Option<&LockedInstance>,
) -> CampaignCell {
    let mut cell = CampaignCell {
        host: host.name.clone(),
        scheme: spec.to_string(),
        lint: instance
            .map(|i| i.lint.summary())
            .unwrap_or_else(|| "-".to_string()),
        attack: row.attack.clone(),
        outcome: None,
        verdict: Verdict::Error,
        key: None,
        cdk: 0,
        dk: 0,
        runtime: Duration::ZERO,
        iterations: 0,
        oracle_queries: 0,
        error: None,
        telemetry: row.telemetry,
        replayed: false,
    };
    let (run, instance) = match (&row.result, instance) {
        (Ok(run), Some(instance)) => (run, instance),
        (Err(error), _) => {
            cell.error = Some(error.to_string());
            return cell;
        }
        (Ok(_), None) => {
            // A run without its instance cannot happen (the instance is what
            // the run attacked), but degrade gracefully rather than panic.
            cell.error = Some("locked instance missing from the corpus".to_string());
            return cell;
        }
    };
    cell.outcome = Some(run.outcome.kind());
    cell.runtime = run.runtime;
    cell.iterations = run.iterations;
    cell.oracle_queries = run.oracle_queries;

    let key_names = key_input_names(&instance.locked.circuit);
    let guess = run.outcome.as_guess(&key_names);
    let (cdk, dk) = score_guess(&instance.locked, &guess);
    cell.cdk = cdk;
    cell.dk = dk;

    cell.verdict = match &run.outcome {
        AttackOutcome::ExactKey(key) => {
            cell.key = Some(key.to_hex());
            match instance.locked.apply_key(key) {
                Ok(unlocked) => match equivalent_to(&host.circuit, &unlocked) {
                    Ok(true) => Verdict::Verified,
                    Ok(false) => Verdict::Refuted,
                    Err(e) => {
                        cell.error = Some(format!("verification inconclusive: {e}"));
                        Verdict::Unverified
                    }
                },
                Err(e) => {
                    // A key of the wrong width provably cannot unlock the
                    // design — that is a refutation, not an inconclusive.
                    cell.error = Some(format!("claimed key is unusable: {e}"));
                    Verdict::Refuted
                }
            }
        }
        AttackOutcome::RecoveredCircuit(recovered) => match equivalent_to(&host.circuit, recovered)
        {
            Ok(true) => Verdict::Verified,
            Ok(false) => Verdict::Refuted,
            Err(e) => {
                cell.error = Some(format!("verification inconclusive: {e}"));
                Verdict::Unverified
            }
        },
        AttackOutcome::PartialGuess(_) | AttackOutcome::OutOfBudget => Verdict::NotClaimed,
    };
    if cell.verdict == Verdict::Verified {
        // The paper's convention: a key proven functionally correct counts
        // fully even when Anti-SAT-style multi-key equivalences make it
        // differ bitwise from the stored secret.
        cell.cdk = cell.dk;
    }
    cell
}

/// Inputs at or below this width are verified exhaustively; larger hosts
/// take the sampled-prefilter + complete SAT check path.
const EXHAUSTIVE_INPUT_LIMIT: usize = 20;

/// Random 64-lane sweeps of the cheap refutation prefilter (4096 patterns).
const SAMPLED_SWEEPS: usize = 64;

/// Wall-clock ceiling of the SAT equivalence backstop.
const SAT_VERIFY_LIMIT: Duration = Duration::from_secs(60);

/// The campaign's equivalence kernel, and it must be *complete*: the preset
/// schemes are point functions whose wrong keys corrupt as little as one
/// pattern in 2^157, which no random sample would ever hit. Small
/// interfaces (≤ [`EXHAUSTIVE_INPUT_LIMIT`] inputs) are compared
/// exhaustively with packed 64-lane sweeps; larger hosts run a seeded
/// random-sweep prefilter (cheap refutation of grossly wrong claims) and
/// then `kratt-synth`'s fraig pipeline for the proof: both circuits share
/// one structurally-hashed AIG (a correctly unlocked candidate hashes most
/// of the host logic onto the original's nodes), candidate-equivalent nodes
/// are merged by incremental SAT, and only surviving output pairs reach a
/// full miter solve.
///
/// # Errors
///
/// Returns an error when the interfaces differ, a circuit cannot be
/// simulated, or the SAT backstop exhausts its budget without a verdict —
/// an error is never a confirmation, so the campaign stamps such cells
/// [`Verdict::Unverified`], not `Verified`.
pub fn equivalent_to(original: &Circuit, candidate: &Circuit) -> Result<bool, NetlistError> {
    if original.num_inputs() != candidate.num_inputs()
        || original.num_outputs() != candidate.num_outputs()
    {
        return Err(NetlistError::Transform(
            "interface widths differ between compared circuits".into(),
        ));
    }
    if original.num_inputs() <= EXHAUSTIVE_INPUT_LIMIT {
        return exhaustively_equivalent(original, candidate);
    }
    let sim_a = Simulator::new(original)?;
    let sim_b = Simulator::new(candidate)?;
    let width = original.num_inputs();
    let mut rng = StdRng::seed_from_u64(0x000C_A411);
    for sweep in 0..SAMPLED_SWEEPS {
        let words: Vec<u64> = match sweep {
            // Anchor the sample with the all-zero and all-one patterns.
            0 => vec![0u64; width],
            1 => vec![!0u64; width],
            _ => (0..width).map(|_| rng.gen::<u64>()).collect(),
        };
        if sim_a.run_words(&words)? != sim_b.run_words(&words)? {
            return Ok(false);
        }
    }
    // The sample found nothing — now prove it.
    match kratt_synth::check_equivalence_with_budget(
        original,
        candidate,
        None,
        Some(SAT_VERIFY_LIMIT),
    )
    .map_err(|e| NetlistError::Transform(format!("SAT equivalence check failed: {e}")))?
    {
        kratt_synth::EquivalenceResult::Equivalent => Ok(true),
        kratt_synth::EquivalenceResult::NotEquivalent(_) => Ok(false),
        kratt_synth::EquivalenceResult::Unknown => Err(NetlistError::Transform(
            "SAT equivalence check exhausted its budget without a verdict".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreatModel;
    use crate::report::AttackRun;
    use kratt_locking::{scheme_registry, LockingTechnique, SarLock, SecretKey};
    use kratt_netlist::GateType;

    fn adder(width: usize, name: &str) -> Circuit {
        let mut c = Circuit::new(name);
        let a: Vec<_> = (0..width)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<_> = (0..width)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..width {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    fn small_campaign() -> Campaign {
        let hosts = vec![
            CampaignHost::new("add4", adder(4, "add4"), 3),
            CampaignHost::new("add5", adder(5, "add5"), 3),
        ];
        let schemes = vec!["sarlock".parse().unwrap(), "ttlock:k=4".parse().unwrap()];
        Campaign::new(schemes, hosts, vec!["sat".to_string(), "scope".to_string()])
    }

    #[test]
    fn campaign_locks_each_instance_once_and_verifies_sat_keys() {
        let campaign = small_campaign().with_workers(4);
        let corpus = CorpusCache::new();
        let report = campaign
            .run(
                &AttackRegistry::with_baselines(),
                &scheme_registry(),
                &corpus,
            )
            .unwrap();
        assert_eq!(report.cells.len(), campaign.num_cells());
        assert_eq!(report.cells.len(), 8);
        // 2 hosts x 2 schemes locked once each despite 2 attacks per cell.
        assert_eq!(report.locked_instances, 4);
        assert_eq!(corpus.locks_performed(), 4);
        // The SAT attack breaks both point functions at these widths, and
        // every exact key it claims must verify against the planted secret.
        let sat_cells: Vec<_> = report
            .cells
            .iter()
            .filter(|cell| cell.attack == "sat")
            .collect();
        assert_eq!(sat_cells.len(), 4);
        for cell in sat_cells {
            assert_eq!(cell.outcome, Some("exact-key"), "{}", cell.scheme);
            assert_eq!(cell.verdict, Verdict::Verified, "{}", cell.scheme);
            assert!(cell.key.as_deref().unwrap().contains("'h"));
            assert_eq!(cell.cdk, cell.dk);
        }
        assert_eq!(report.unverified_exact_claims(), 0);
        // Width-less specs picked up the host default.
        assert!(report.cells.iter().any(|c| c.scheme == "sarlock:k=3"));
        // Every cell carries a pre-attack lint stamp, and registry schemes
        // never produce error-level findings.
        for cell in &report.cells {
            assert_ne!(cell.lint, "-", "{}: missing lint stamp", cell.scheme);
            assert!(!cell.lint.contains('E'), "{}: {}", cell.scheme, cell.lint);
        }
        // SARLock's hardwired mask leaks its secret to ternary propagation,
        // so its cells carry forced-key-bit warnings.
        assert!(report
            .cells
            .iter()
            .filter(|c| c.scheme.starts_with("sarlock"))
            .all(|c| c.lint.contains('W')));
        assert!(report.render().contains("Lint"));
        assert!(report.to_json().contains("\"lint\":"));

        // Re-running against the same corpus locks nothing new.
        let again = campaign
            .run(
                &AttackRegistry::with_baselines(),
                &scheme_registry(),
                &corpus,
            )
            .unwrap();
        assert_eq!(again.locked_instances, 4);
    }

    #[test]
    fn failed_locks_become_error_cells_not_panics() {
        let hosts = vec![CampaignHost::new("tiny", adder(2, "tiny"), 2)];
        let schemes = vec!["ttlock:k=40".parse().unwrap()];
        let campaign = Campaign::new(schemes, hosts, vec!["sat".to_string()]);
        let report = campaign
            .run(
                &AttackRegistry::with_baselines(),
                &scheme_registry(),
                &CorpusCache::new(),
            )
            .unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.verdict, Verdict::Error);
        assert!(cell.outcome.is_none());
        assert!(
            cell.error.as_deref().unwrap().contains("setup failed"),
            "{:?}",
            cell.error
        );
    }

    #[test]
    fn refuted_claims_are_flagged() {
        // Forge a report row claiming a wrong key and check the verifier
        // refuses it.
        let host = CampaignHost::new("add4", adder(4, "add4"), 3);
        let secret = SecretKey::from_u64(0b101, 3);
        let locked = SarLock::new(3).lock(&host.circuit, &secret).unwrap();
        let shared = Arc::new(locked.circuit.clone());
        let lint = lint_locked(&host.circuit, &locked.circuit);
        let instance = LockedInstance {
            spec: "sarlock:k=3".parse().unwrap(),
            host: "add4".to_string(),
            locked,
            shared,
            lint,
        };
        let wrong = SecretKey::from_u64(0b010, 3);
        let mut run = AttackRun::out_of_budget("sat", ThreatModel::OracleGuided);
        run.outcome = AttackOutcome::ExactKey(wrong);
        let row = MatrixRow {
            attack: "sat".to_string(),
            case: "add4/sarlock:k=3".to_string(),
            result: Ok(run),
            telemetry: JobTelemetry::default(),
        };
        let cell = score_cell(&host, &instance.spec, &row, Some(&instance));
        assert_eq!(cell.verdict, Verdict::Refuted);
        assert!(cell.cdk < cell.dk);

        let report = CampaignReport {
            cells: vec![cell],
            attacks: vec!["sat".to_string()],
            locked_instances: 1,
            replayed: 0,
            scheduler: SchedulerStats::default(),
        };
        assert_eq!(report.unverified_exact_claims(), 1);
        assert!(report.render().contains("REFUTED"));
        assert!(report.to_json().contains("\"verdict\":\"REFUTED\""));
    }

    #[test]
    fn equivalence_kernel_is_complete_on_wide_hosts() {
        // 25 inputs: above the exhaustive limit, so the prefilter + SAT
        // backstop path runs.
        let host = adder(12, "wide");
        assert_eq!(host.num_inputs(), 25);
        assert!(equivalent_to(&host, &host.clone()).unwrap());
        let secret = SecretKey::from_u64(0xAB, 8);
        let locked = SarLock::new(8).lock(&host, &secret).unwrap();
        let good = locked.apply_key(&secret).unwrap();
        assert!(equivalent_to(&host, &good).unwrap());
        // The adversarial case for sampling: a SARLock wrong key corrupts
        // exactly ONE pattern out of 2^25 — random sweeps never hit it, the
        // SAT backstop must.
        let wrong = SecretKey::from_u64(0xAB ^ 0x01, 8);
        let bad = locked.apply_key(&wrong).unwrap();
        assert!(
            !equivalent_to(&host, &bad).unwrap(),
            "a one-pattern corruption must be refuted, not sampled past"
        );
        // Gross corruption is still caught by the cheap prefilter.
        let mut corrupted = host.clone();
        let out = corrupted.outputs()[0];
        let renamed = corrupted.fresh_net_name("sum0$bad");
        corrupted.rename_net(out, renamed).unwrap();
        let a0 = corrupted.find_net("a0").unwrap();
        let flipped = corrupted
            .add_gate(GateType::Xnor, "sum0", &[out, a0])
            .unwrap();
        corrupted.replace_output_at(0, flipped);
        assert!(!equivalent_to(&host, &corrupted).unwrap());
        // Interface mismatches are errors, not verdicts.
        assert!(equivalent_to(&host, &adder(4, "small")).is_err());
    }

    #[test]
    fn smoke_preset_host_policy_is_owned_by_the_preset() {
        // Every front end passing the full host list gets the same trimmed
        // grid: first two hosts, 16-bit keys.
        let hosts = vec![
            CampaignHost::new("a", adder(4, "a"), 64),
            CampaignHost::new("b", adder(5, "b"), 128),
            CampaignHost::new("c", adder(6, "c"), 128),
        ];
        let smoke = Campaign::smoke(hosts, Budget::default()).unwrap();
        assert_eq!(smoke.hosts.len(), 2);
        assert!(smoke.hosts.iter().all(|h| h.default_key_bits == 16));
        assert_eq!(smoke.num_cells(), 8);
    }

    #[test]
    fn report_json_and_presets_are_well_formed() {
        let hosts = vec![CampaignHost::new("add4", adder(4, "add4"), 4)];
        let campaign = Campaign::preset("smoke", hosts, Budget::default()).unwrap();
        assert_eq!(campaign.schemes.len(), 2);
        assert_eq!(campaign.attacks, vec!["sat", "kratt"]);
        let table3 = Campaign::table3(
            vec![CampaignHost::new("add4", adder(4, "add4"), 4)],
            Budget::default(),
        )
        .unwrap();
        assert_eq!(table3.schemes.len(), 4);
        assert_eq!(table3.num_cells(), 16);
        assert!(matches!(
            Campaign::preset("nope", Vec::new(), Budget::default()),
            Err(AttackError::Other(_))
        ));
    }

    #[test]
    fn builder_validates_axes_with_typed_errors() {
        let hosts = || vec![CampaignHost::new("add4", adder(4, "add4"), 3)];
        assert!(matches!(
            Campaign::builder().build(),
            Err(CampaignError::EmptySchemes)
        ));
        assert!(matches!(
            Campaign::builder().spec_strs(["sarlock"]).build(),
            Err(CampaignError::EmptyHosts)
        ));
        assert!(matches!(
            Campaign::builder()
                .spec_strs(["sarlock"])
                .hosts(hosts())
                .build(),
            Err(CampaignError::EmptyAttacks)
        ));
        assert!(matches!(
            Campaign::builder()
                .spec_strs(["sarlock", "sarlock:k="])
                .hosts(hosts())
                .attacks(["sat"])
                .build(),
            Err(CampaignError::Spec(_))
        ));
        assert!(matches!(
            Campaign::builder()
                .spec_strs(["sarlock"])
                .hosts(hosts())
                .attacks(["sat", "sat"])
                .build(),
            Err(CampaignError::DuplicateAxis { axis: "attack", .. })
        ));
        let built = Campaign::builder()
            .spec_strs(["sarlock"])
            .hosts(hosts())
            .attacks(["sat"])
            .budget(Budget::zero())
            .workers(2)
            .global_budget(Duration::from_secs(30))
            .halt_after_cells(1)
            .journal("unused.jsonl")
            .build()
            .unwrap();
        assert_eq!(built.num_cells(), 1);
        assert_eq!(built.workers, Some(2));
        assert_eq!(built.global_time_limit, Some(Duration::from_secs(30)));
        assert_eq!(built.halt_after_cells, Some(1));
        assert!(built.journal.is_some());
        // The one-release shim: typed errors still convert for call sites
        // that traffic in `AttackError`.
        let shimmed: AttackError = CampaignError::EmptySchemes.into();
        assert!(matches!(shimmed, AttackError::Other(_)));
    }

    #[test]
    fn journal_replays_recorded_cells_and_attacks_only_new_ones() {
        let path = std::env::temp_dir().join(format!(
            "kratt-campaign-replay-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let campaign = Campaign::builder()
            .spec_strs(["sarlock"])
            .hosts([CampaignHost::new("add4", adder(4, "add4"), 3)])
            .attacks(["sat", "scope"])
            .journal(&path)
            .build()
            .unwrap();
        let first = campaign
            .run(
                &AttackRegistry::with_baselines(),
                &scheme_registry(),
                &CorpusCache::new(),
            )
            .unwrap();
        assert_eq!(first.replayed, 0);
        assert_eq!(first.attacked(), 2);

        // Second run, fresh corpus: every cell replays, nothing locks,
        // nothing is attacked, and the streamed cells say so.
        let corpus = CorpusCache::new();
        let streamed = Mutex::new(Vec::new());
        let second = campaign
            .run_observed(
                &AttackRegistry::with_baselines(),
                &scheme_registry(),
                &corpus,
                &|cell| streamed.lock().unwrap().push(cell.to_json_line()),
            )
            .unwrap();
        assert_eq!(second.replayed, 2);
        assert_eq!(second.attacked(), 0);
        assert_eq!(corpus.locks_performed(), 0);
        assert!(second.cells.iter().all(|cell| cell.replayed));
        let streamed = streamed.into_inner().unwrap();
        assert_eq!(streamed.len(), 2);
        assert!(streamed
            .iter()
            .all(|line| line.contains("\"replayed\":true")));
        assert!(second.summary_json().contains("\"type\":\"summary\""));
        // The replayed verdicts are semantically identical to the originals.
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.attack, b.attack);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.key, b.key);
            assert_eq!((a.cdk, a.dk), (b.cdk, b.dk));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_cache_is_content_addressed() {
        let corpus = CorpusCache::new();
        let registry = scheme_registry();
        let host_a = CampaignHost::new("a", adder(4, "add4"), 3);
        // Same netlist content under a different *host label* but identical
        // circuit: same address, locked once.
        let host_b = CampaignHost::new("b", adder(4, "add4"), 3);
        let spec: SchemeSpec = "sarlock:k=3".parse().unwrap();
        let first = corpus.get_or_lock(&registry, &host_a, &spec, None).unwrap();
        let second = corpus.get_or_lock(&registry, &host_b, &spec, None).unwrap();
        assert_eq!(corpus.locks_performed(), 1);
        assert!(Arc::ptr_eq(&first, &second));
        // A different spec (seed) is a different address.
        let reseeded: SchemeSpec = "sarlock:k=3,seed=5".parse().unwrap();
        corpus
            .get_or_lock(&registry, &host_a, &reseeded, None)
            .unwrap();
        assert_eq!(corpus.locks_performed(), 2);
        // A different circuit is a different address.
        let host_c = CampaignHost::new("c", adder(5, "add5"), 3);
        corpus.get_or_lock(&registry, &host_c, &spec, None).unwrap();
        assert_eq!(corpus.locks_performed(), 3);
    }
}
