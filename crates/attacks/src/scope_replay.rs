//! The dataflow-backed SCOPE kernel: per-key-bit constant-propagation
//! signatures computed from two ternary cofactor runs per bit, without
//! building a single circuit.
//!
//! The legacy SCOPE path calls [`set_inputs_constant`] twice per key bit —
//! a full resynthesis each: topological sort, constant-folded rebuild into
//! a fresh [`Circuit`] (string-keyed net table included), a dangling-logic
//! prune (a second rebuild) and a stats pass. This module reproduces the
//! *feature vector* of that pipeline exactly, by construction:
//!
//! 1. One ternary forward run over the shared [`CircuitAnalysis`] plan
//!    (the topological order is computed once per circuit, not once per
//!    cofactor) pins the key bit and classifies every net as constant or
//!    live. A net folds to a constant in `rebuild_simplified` **iff** its
//!    gate-level ternary value is not `X` — each simplification rule
//!    (`AND` with a false constant input, `OR` with a true one, fully
//!    constant gates, XOR parity) is precisely the ternary transfer of the
//!    gate, so the two classifications coincide inductively.
//! 2. A *virtual replay* then walks the gates in the same order
//!    `rebuild_simplified` does and mirrors every decision that affects
//!    the gate count, literal count or logic depth — which gates are
//!    emitted (including single-input collapses to `NOT`/alias and the
//!    XOR parity flip that decides between them), how output names are
//!    restored (rename vs keeper buffer vs materialised constant) and the
//!    final reachability prune — on integer node records instead of a
//!    real circuit.
//!
//! Name bookkeeping is replayed per *original net* rather than per string:
//! inside the gate loop a simplified gate always receives its original
//! output-net name (net names are unique, so the name cannot have been
//! taken by an earlier emission), and auto-generated `name$N` names are
//! always fresh. The one pathology not modelled is an original output
//! literally named like an auto-generated name (`foo$3`) colliding with a
//! generated one — no netlist in the suite (or produced by
//! [`Circuit::fresh_net_name`]'s collision avoidance) does this.
//!
//! [`set_inputs_constant`]: kratt_netlist::transform::set_inputs_constant
//! [`Circuit::fresh_net_name`]: kratt_netlist::Circuit::fresh_net_name

use crate::scope::ScopeFeatures;
use kratt_dataflow::{CircuitAnalysis, Ternary};
use kratt_netlist::{Circuit, GateType, NetId, NetlistError};

/// A reusable SCOPE analysis plan over one locked circuit: the topological
/// order is shared by all `2 × key_bits` cofactor runs.
pub struct ScopePlan<'c> {
    circuit: &'c Circuit,
    analysis: CircuitAnalysis,
}

/// The virtual image of the simplified circuit: one record per node the
/// rebuild would create (primary inputs, emitted gates, keeper buffers,
/// materialised constants), carrying exactly the fields the feature vector
/// needs.
#[derive(Default)]
struct Virtual {
    /// Logic level (primary inputs 0, gates 1 + max over fanins).
    level: Vec<usize>,
    /// Number of gate input pins (0 for inputs and constants).
    arity: Vec<usize>,
    /// Whether the node is a gate (counts toward the gate/literal totals).
    gate: Vec<bool>,
    /// Fanin node ids, for the reachability prune.
    fanin: Vec<Vec<u32>>,
    /// The original net whose *name* this node carries, if any.
    name_of: Vec<Option<usize>>,
    /// Whether the node is a primary input of the result.
    input: Vec<bool>,
    /// Whether the node has been marked as a result output.
    output: Vec<bool>,
}

impl Virtual {
    fn push(
        &mut self,
        level: usize,
        arity: usize,
        gate: bool,
        fanin: Vec<u32>,
        name_of: Option<usize>,
        input: bool,
    ) -> u32 {
        let id = self.level.len() as u32;
        self.level.push(level);
        self.arity.push(arity);
        self.gate.push(gate);
        self.fanin.push(fanin);
        self.name_of.push(name_of);
        self.input.push(input);
        self.output.push(false);
        id
    }
}

impl<'c> ScopePlan<'c> {
    /// Prepares the shared plan (one topological sort).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit is cyclic.
    pub fn new(circuit: &'c Circuit) -> Result<Self, NetlistError> {
        Ok(ScopePlan {
            circuit,
            analysis: CircuitAnalysis::new(circuit)?,
        })
    }

    /// The SCOPE feature vector of the circuit with the given inputs tied
    /// to constants — equal, field for field, to
    /// `stats(&set_inputs_constant(circuit, pins)?)`.
    pub fn features(&self, pins: &[(NetId, bool)]) -> ScopeFeatures {
        let ternary = self.analysis.ternary(self.circuit, pins);
        self.replay(&ternary, pins)
    }

    /// Replays `rebuild_simplified` + `prune_dangling` + `stats` virtually.
    fn replay(&self, ternary: &[Ternary], pins: &[(NetId, bool)]) -> ScopeFeatures {
        let circuit = self.circuit;
        let n_nets = circuit.num_nets();
        let mut pinned = vec![false; n_nets];
        for &(net, _) in pins {
            pinned[net.index()] = true;
        }
        let mut vn = Virtual::default();
        // How each original net is represented: a virtual node, or `None`
        // for a folded constant (pinned inputs included).
        let mut repr: Vec<Option<u32>> = vec![None; n_nets];
        // Whether the original net's name exists in the virtual result.
        let mut claimed = vec![false; n_nets];

        for &pi in circuit.inputs() {
            if pinned[pi.index()] {
                continue;
            }
            let v = vn.push(0, 0, false, Vec::new(), Some(pi.index()), true);
            repr[pi.index()] = Some(v);
            claimed[pi.index()] = true;
        }

        for &gid in self.analysis.order() {
            let gate = circuit.gate(gid);
            let out = gate.output.index();
            if ternary[out].is_constant() {
                // The rebuild folds this gate away (constant output ⇔
                // constant representation, see the module docs).
                continue;
            }
            let live: Vec<u32> = gate.inputs.iter().filter_map(|n| repr[n.index()]).collect();
            // With a non-constant output, BUF aliases and NOT emits; the
            // other types reduce over their live inputs with the XOR parity
            // flip deciding the single-input collapse direction.
            let effective = match gate.ty {
                GateType::Buf => {
                    repr[out] = Some(live[0]);
                    continue;
                }
                GateType::Not => GateType::Not,
                GateType::Xor | GateType::Xnor => {
                    let ones = gate
                        .inputs
                        .iter()
                        .filter(|n| ternary[n.index()] == Ternary::One)
                        .count();
                    if ones % 2 == 1 {
                        gate.ty.complement()
                    } else {
                        gate.ty
                    }
                }
                other => other,
            };
            if live.len() == 1 && !effective.is_inverting() {
                repr[out] = Some(live[0]);
                continue;
            }
            let level = 1 + live
                .iter()
                .map(|&v| vn.level[v as usize])
                .max()
                .unwrap_or(0);
            let arity = live.len();
            let v = vn.push(level, arity, true, live, Some(out), false);
            claimed[out] = true;
            repr[out] = Some(v);
        }

        // Output finalisation: materialise constants, restore the original
        // output names by rename or keeper buffer — the same decision tree
        // as the rebuild, driven by the per-net `claimed` bookkeeping.
        let mut finalised: Vec<u32> = Vec::with_capacity(circuit.outputs().len());
        for &o in circuit.outputs() {
            let oi = o.index();
            let mapped = match repr[oi] {
                Some(v) => v,
                None => {
                    let named = !claimed[oi];
                    let v = vn.push(1, 0, true, Vec::new(), named.then_some(oi), false);
                    if named {
                        claimed[oi] = true;
                    }
                    v
                }
            };
            let fin = if vn.name_of[mapped as usize] == Some(oi) {
                mapped
            } else if !vn.input[mapped as usize] && !vn.output[mapped as usize] && !claimed[oi] {
                // Rename: the node takes the output's name, releasing the
                // one it carried.
                if let Some(old) = vn.name_of[mapped as usize] {
                    claimed[old] = false;
                }
                vn.name_of[mapped as usize] = Some(oi);
                claimed[oi] = true;
                mapped
            } else {
                // Keeper buffer.
                let named = !claimed[oi];
                let level = vn.level[mapped as usize] + 1;
                let v = vn.push(level, 1, true, vec![mapped], named.then_some(oi), false);
                if named {
                    claimed[oi] = true;
                }
                v
            };
            vn.output[fin as usize] = true;
            finalised.push(fin);
        }

        // The dangling prune: only nodes reaching a finalised output count.
        let mut reachable = vec![false; vn.level.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &f in &finalised {
            if !reachable[f as usize] {
                reachable[f as usize] = true;
                stack.push(f);
            }
        }
        while let Some(v) = stack.pop() {
            for &f in &vn.fanin[v as usize] {
                if !reachable[f as usize] {
                    reachable[f as usize] = true;
                    stack.push(f);
                }
            }
        }

        let mut gates = 0usize;
        let mut literals = 0usize;
        for (v, &alive) in reachable.iter().enumerate() {
            if alive && vn.gate[v] {
                gates += 1;
                literals += vn.arity[v];
            }
        }
        let depth = finalised
            .iter()
            .map(|&f| vn.level[f as usize])
            .max()
            .unwrap_or(0);
        ScopeFeatures {
            gates,
            literals,
            depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::analysis::stats;
    use kratt_netlist::transform::set_inputs_constant;
    use kratt_netlist::GateType;

    /// Replay vs real resynthesis over every single-input cofactor.
    fn assert_replay_matches(circuit: &Circuit) {
        let plan = ScopePlan::new(circuit).unwrap();
        for &pi in circuit.inputs() {
            for value in [false, true] {
                let real = set_inputs_constant(circuit, &[(pi, value)]).unwrap();
                let expected = ScopeFeatures::from(stats(&real).unwrap());
                let got = plan.features(&[(pi, value)]);
                assert_eq!(
                    got,
                    expected,
                    "cofactor {}={} diverged",
                    circuit.net_name(pi),
                    u8::from(value)
                );
            }
        }
    }

    #[test]
    fn replay_matches_resynthesis_on_gate_soup() {
        // Exercises every gate type, parity flips, buffer collapses, output
        // renames and keeper buffers.
        let mut c = Circuit::new("soup");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let x1 = c.add_gate(GateType::Xor, "x1", &[a, k]).unwrap();
        let n1 = c.add_gate(GateType::Nand, "n1", &[x1, b]).unwrap();
        let o1 = c.add_gate(GateType::Xnor, "o1", &[n1, k, b]).unwrap();
        let buf = c.add_gate(GateType::Buf, "buf", &[o1]).unwrap();
        let inv = c.add_gate(GateType::Not, "inv", &[x1]).unwrap();
        let o2 = c.add_gate(GateType::Nor, "o2", &[inv, a, k]).unwrap();
        let o3 = c.add_gate(GateType::Or, "o3", &[buf, o2]).unwrap();
        c.mark_output(o3);
        c.mark_output(buf);
        c.mark_output(inv);
        assert_replay_matches(&c);
    }

    #[test]
    fn replay_matches_resynthesis_on_collapsing_outputs() {
        // An output that collapses to a constant under one cofactor, an
        // output aliased straight to an input, and a duplicated output.
        let mut c = Circuit::new("collapse");
        let a = c.add_input("a").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let g = c.add_gate(GateType::And, "g", &[a, k]).unwrap();
        let h = c.add_gate(GateType::Buf, "h", &[a]).unwrap();
        c.mark_output(g);
        c.mark_output(h);
        c.mark_output(g);
        assert_replay_matches(&c);
    }

    #[test]
    fn replay_matches_resynthesis_on_const_gates() {
        let mut c = Circuit::new("consts");
        let a = c.add_input("a").unwrap();
        let one = c.add_gate(GateType::Const1, "one", &[]).unwrap();
        let o = c.add_gate(GateType::Xor, "o", &[a, one]).unwrap();
        c.mark_output(o);
        c.mark_output(one);
        assert_replay_matches(&c);
    }
}
